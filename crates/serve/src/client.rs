//! Blocking client for the admission service.
//!
//! [`Client`] shares the wire codec with the server, so there is
//! exactly one encoding of every frame in the tree. Two styles of use:
//!
//! * **Call/response** — the typed helpers ([`Client::setup`],
//!   [`Client::release`], …) send one request, flush, and read one
//!   reply.
//! * **Pipelined** — [`Client::send`] queues frames without flushing;
//!   [`Client::flush`] pushes them out; [`Client::recv`] reads replies.
//!   Server sessions dispatch serially, so replies come back in request
//!   order and a FIFO of in-flight requests is all the matching a
//!   caller needs. The open-loop load generator lives on this path.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

use rtcac_signaling::SetupRequest;

use crate::proto::{ErrorCode, Request, Response};
use crate::wire::{read_frame, write_frame, WireError};

/// First retry delay when the server answers `SnapshotRestoring`.
const RESTORE_BACKOFF_START: Duration = Duration::from_millis(25);
/// Per-step backoff cap.
const RESTORE_BACKOFF_MAX: Duration = Duration::from_millis(500);
/// Retry attempts before giving up on a restoring server (the
/// geometric backoff makes this several seconds of patience in total).
const RESTORE_RETRIES: u32 = 40;

/// A blocking connection to an `rtcac serve` process.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to the service at `addr`.
    ///
    /// # Errors
    ///
    /// Any socket-level connect failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // A generous timeout so a wedged server surfaces as an error
        // instead of a hang; normal replies arrive in microseconds.
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Wraps an already-connected stream (tests drive half-raw
    /// sessions this way: frames written on the original stream, typed
    /// replies read through the client).
    ///
    /// # Errors
    ///
    /// Any socket-level clone failure.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Client> {
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Queues one request without flushing (the pipelined path).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the socket write fails.
    pub fn send(&mut self, request: &Request) -> Result<(), WireError> {
        write_frame(&mut self.writer, &request.encode())
    }

    /// Flushes all queued requests to the socket.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the flush fails.
    pub fn flush(&mut self) -> Result<(), WireError> {
        self.writer.flush().map_err(WireError::Io)
    }

    /// Reads the next reply frame (FIFO order w.r.t. sent requests).
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] when the server hung up; any codec error
    /// when the reply is malformed.
    pub fn recv(&mut self) -> Result<Response, WireError> {
        let payload = read_frame(&mut self.reader)?;
        Response::decode(&payload)
    }

    /// Sends one request and reads its reply.
    ///
    /// # Errors
    ///
    /// Socket or codec failures from either direction.
    pub fn call(&mut self, request: &Request) -> Result<Response, WireError> {
        self.send(request)?;
        self.flush()?;
        self.recv()
    }

    /// Asks the server what it is serving.
    ///
    /// A server that is warm-restarting from a snapshot answers every
    /// request with the typed [`ErrorCode::SnapshotRestoring`] error;
    /// this helper backs off geometrically and retries until the
    /// restore finishes, so load generators ride out a restart instead
    /// of misreading it as a refusal.
    ///
    /// # Errors
    ///
    /// Socket or codec failures, or the last `SnapshotRestoring` error
    /// when the server is still restoring after the full retry budget.
    pub fn hello(&mut self) -> Result<Response, WireError> {
        let mut backoff = RESTORE_BACKOFF_START;
        for _ in 0..RESTORE_RETRIES {
            match self.call(&Request::Hello)? {
                Response::Error {
                    code: ErrorCode::SnapshotRestoring,
                    ..
                } => {
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(RESTORE_BACKOFF_MAX);
                }
                reply => return Ok(reply),
            }
        }
        self.call(&Request::Hello)
    }

    /// Requests admission over an explicit route (external link ids).
    ///
    /// # Errors
    ///
    /// Socket or codec failures. An admission *rejection* is a normal
    /// [`Response::Rejected`] reply, not an error.
    pub fn setup(&mut self, links: &[u32], request: SetupRequest) -> Result<Response, WireError> {
        self.call(&Request::Setup {
            links: links.to_vec(),
            request,
        })
    }

    /// Requests multicast admission over an explicit tree.
    ///
    /// # Errors
    ///
    /// Socket or codec failures.
    pub fn setup_mcast(
        &mut self,
        links: &[u32],
        request: SetupRequest,
    ) -> Result<Response, WireError> {
        self.call(&Request::SetupMcast {
            links: links.to_vec(),
            request,
        })
    }

    /// Releases a connection this session admitted.
    ///
    /// # Errors
    ///
    /// Socket or codec failures.
    pub fn release(&mut self, id: u64) -> Result<Response, WireError> {
        self.call(&Request::Release { id })
    }

    /// Looks up the guaranteed delay of an established connection.
    ///
    /// # Errors
    ///
    /// Socket or codec failures.
    pub fn query(&mut self, id: u64) -> Result<Response, WireError> {
        self.call(&Request::Query { id })
    }

    /// Reads the server's service counters.
    ///
    /// # Errors
    ///
    /// Socket or codec failures.
    pub fn stats(&mut self) -> Result<Response, WireError> {
        self.call(&Request::Stats)
    }

    /// Asks the server to drain and shut down.
    ///
    /// # Errors
    ///
    /// Socket or codec failures.
    pub fn drain(&mut self) -> Result<Response, WireError> {
        self.call(&Request::Drain)
    }

    /// Forces the server's flight recorder to write a black box now.
    ///
    /// # Errors
    ///
    /// Socket or codec failures. A server without a flight recorder
    /// answers with a typed [`Response::Error`], not a wire error.
    pub fn dump(&mut self) -> Result<Response, WireError> {
        self.call(&Request::Dump)
    }
}
