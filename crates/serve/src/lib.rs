//! `rtcac-serve` — a resident admission service over a small binary
//! wire protocol.
//!
//! Everything before this crate decided admission *inside one process*:
//! the serial [`rtcac_signaling::Network`], the concurrent
//! [`rtcac_engine::AdmissionEngine`], the batch pools. This crate puts
//! a socket in front of that machinery, because the paper's CAC is a
//! *service* switches call into, not a library linked into every
//! terminal:
//!
//! * [`wire`] — length-prefixed frames (`[u32 len][version][type]
//!   [body]`) with typed decode errors; oversized, truncated, and
//!   unknown-version input is refused *before* allocation, never
//!   panicked on.
//! * [`proto`] — the request/response vocabulary: SETUP, SETUP-MCAST,
//!   RELEASE, QUERY, DRAIN, STATS and their replies.
//! * [`server`] — [`Server`]: a `TcpListener` accept loop with one
//!   session thread per client. Sessions *own* the connections they
//!   admit; when a client dies mid-burst, its session releases every
//!   surviving reservation, so client death can never leak switch
//!   capacity. DRAIN flips the engine into drain mode and the shutdown
//!   path proves cleanliness (orphan audit + guarantee verification)
//!   in its [`DrainSummary`].
//! * [`client`] — a blocking [`Client`] sharing the same codec, with a
//!   pipelined raw path (server sessions dispatch serially, so replies
//!   are FIFO).
//! * [`metrics_http`] — a tiny HTTP exposition endpoint (`/metrics`,
//!   `/metrics.json`, `/healthz`) for Prometheus-style scrapes.
//! * [`load`] — an open-loop multi-threaded generator
//!   ([`run_load`]) measuring setup latency from *scheduled* send
//!   times, immune to coordinated omission.

#![forbid(unsafe_code)]

pub mod client;
pub mod load;
pub mod metrics_http;
pub mod proto;
pub mod server;
pub mod wire;

pub use client::Client;
pub use load::{run_load, run_soak, LoadConfig, LoadReport, SoakObserver, SoakReport, SoakSample};
pub use metrics_http::http_get;
pub use proto::{ErrorCode, Request, Response};
pub use server::{DrainSummary, ServeConfig, ServeError, Server};
pub use wire::{WireError, MAX_PAYLOAD, PROTO_VERSION};
