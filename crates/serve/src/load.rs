//! Open-loop load generator for the admission service.
//!
//! Each worker thread owns one [`Client`] connection and drives a
//! pipelined stream of SETUP and RELEASE frames over randomized
//! terminal-to-terminal routes of the served star-ring (rebuilt locally
//! from the HELLO reply, so route link ids always match the server's).
//!
//! **Open loop**: with `--rate`, every send has a *scheduled* time
//! (`start + k·interval`) and setup latency is measured from that
//! schedule, not from the moment the send finally happened — a slow
//! server therefore shows up as growing latency instead of silently
//! throttling the generator (the coordinated-omission trap). Without a
//! rate the generator runs closed-loop at maximum throughput with a
//! bounded pipeline window.

use std::collections::VecDeque;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
use rtcac_cac::Priority;
use rtcac_net::builders;
use rtcac_obs::Registry;
use rtcac_rational::ratio;
use rtcac_signaling::SetupRequest;
use rtcac_sim::SimRng;

use crate::client::Client;
use crate::proto::{Request, Response};
use crate::wire::WireError;

/// Distinct random routes each worker thread cycles through.
const ROUTES_PER_THREAD: usize = 128;

/// Configuration of [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Service address (`host:port`).
    pub addr: String,
    /// Worker threads, each with its own connection.
    pub threads: usize,
    /// Total frames (setups + releases) to send across all threads.
    pub ops: u64,
    /// In-flight frames per connection before the generator reads a
    /// reply (ignored when `rate` paces the send side).
    pub pipeline: usize,
    /// Target total ops/s across all threads; `None` = closed-loop max.
    pub rate: Option<u64>,
    /// Seed for the route/traffic randomization.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: "127.0.0.1:7047".into(),
            threads: 4,
            ops: 1_000_000,
            pipeline: 32,
            rate: None,
            seed: 7,
        }
    }
}

/// Aggregate result of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Frames sent and answered (setups + releases).
    pub ops: u64,
    /// SETUP frames among them.
    pub setups: u64,
    /// Setups the server admitted (incl. reroutes).
    pub admitted: u64,
    /// Setups the server rejected (capacity/QoS — still a served op).
    pub rejected: u64,
    /// RELEASE frames acknowledged.
    pub released: u64,
    /// Wall-clock for the whole run.
    pub elapsed_ns: u64,
    /// Served frames per second.
    pub ops_per_sec: f64,
    /// Setup latency quantiles (scheduled-send to reply), nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile setup latency.
    pub p90_ns: u64,
    /// 99th percentile setup latency.
    pub p99_ns: u64,
}

impl LoadReport {
    /// Renders the report as line-oriented bench JSON compatible with
    /// `rtcac bench-report` (one round object per line).
    pub fn bench_json(&self, threads: usize, seed: u64) -> String {
        format!(
            "{{\"bench\":\"serve\",\"seed\":{seed},\"ops\":{},\n\
             \"rounds\":[\n\
             {{\"workers\":{threads},\"ops_per_sec\":{:.1},\"p50_ns\":{},\"p99_ns\":{}}}\n\
             ]}}\n",
            self.ops, self.ops_per_sec, self.p50_ns, self.p99_ns
        )
    }
}

/// One periodic scrape of the served engine during a soak run. The
/// rate and quantile figures come from a windowed [`TimeSeries`] built
/// over the scrapes (scrape-to-scrape deltas), so they describe "now",
/// not the since-boot average.
///
/// [`TimeSeries`]: rtcac_obs::TimeSeries
#[derive(Debug, Clone, Copy)]
pub struct SoakSample {
    /// Seconds since the soak started.
    pub at_secs: f64,
    /// `engine_resident_bytes` from the server's exposition endpoint.
    pub resident_bytes: u64,
    /// `alloc_live_bytes` from the same scrape (0 when the server runs
    /// without the counting allocator).
    pub alloc_live_bytes: u64,
    /// Engine setups per second since the previous scrape.
    pub setups_per_sec: f64,
    /// Engine rejections per second since the previous scrape.
    pub rejects_per_sec: f64,
    /// Sliding-window p99 of `engine_reserve_ns` (0 until the window
    /// holds at least one reserve).
    pub reserve_p99_ns: u64,
}

/// Called with each scraped [`SoakSample`] as the soak runs — the CLI
/// prints its periodic one-line status through this.
pub type SoakObserver = Box<dyn Fn(&SoakSample) + Send>;

/// Aggregate result of a soak run: load batches plus the memory-gauge
/// trajectory scraped while they ran.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Load batches completed before the deadline.
    pub batches: u64,
    /// Total frames served across all batches.
    pub ops: u64,
    /// Wall-clock of the whole soak.
    pub elapsed_ns: u64,
    /// Served frames per second over the whole soak.
    pub ops_per_sec: f64,
    /// Worst per-batch p99 setup latency seen.
    pub worst_p99_ns: u64,
    /// The scraped memory trajectory, in time order.
    pub samples: Vec<SoakSample>,
}

impl SoakReport {
    /// Largest `engine_resident_bytes` scraped during the soak.
    pub fn peak_resident_bytes(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| s.resident_bytes)
            .max()
            .unwrap_or(0)
    }
}

/// Soaks a live server: repeats `config`-sized load batches until
/// `duration` elapses while a scraper thread samples the server's
/// `engine_resident_bytes` / `alloc_live_bytes` gauges from
/// `metrics_addr` every few seconds. Each batch holds a steady resident
/// population under setup/release churn (the generator keeps up to 16
/// admitted connections per thread in flight and releases the rest), so
/// the resident-bytes trajectory shows what sustained churn does to the
/// admission state's footprint.
///
/// # Errors
///
/// Same failures as [`run_load`]; a scrape failure is not an error
/// (the sample is skipped — the service, not the scraper, is under
/// test).
pub fn run_soak(
    config: &LoadConfig,
    duration: Duration,
    metrics_addr: &str,
    on_sample: Option<SoakObserver>,
) -> Result<SoakReport, WireError> {
    use std::sync::atomic::{AtomicBool, Ordering};

    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        let addr = metrics_addr.to_owned();
        let started = Instant::now();
        thread::spawn(move || {
            let mut samples = Vec::new();
            // Each scrape becomes one tick of a windowed series: the
            // Prometheus text is parsed back into a snapshot, and the
            // scrape-to-scrape deltas yield live rates and a sliding
            // p99 instead of since-boot averages.
            let mut series = rtcac_obs::TimeSeries::default();
            let mut last_scrape: Option<Instant> = None;
            while !stop.load(Ordering::Relaxed) {
                if let Ok(body) = crate::metrics_http::http_get(&addr, "/metrics") {
                    let now = Instant::now();
                    let elapsed_ms = last_scrape
                        .map(|t| now.duration_since(t).as_millis() as u64)
                        .unwrap_or(0);
                    last_scrape = Some(now);
                    let snap = rtcac_obs::Snapshot::from_prometheus(&body);
                    series.observe(&snap, elapsed_ms);
                    let sample = SoakSample {
                        at_secs: started.elapsed().as_secs_f64(),
                        resident_bytes: series.last_gauge("engine_resident_bytes").unwrap_or(0),
                        alloc_live_bytes: series.last_gauge("alloc_live_bytes").unwrap_or(0),
                        setups_per_sec: series.rate_last("engine_setups_submitted_total"),
                        rejects_per_sec: series.rate_last("engine_setups_rejected_total"),
                        reserve_p99_ns: series.window_quantile("engine_reserve_ns", 0.99),
                    };
                    if let Some(observer) = &on_sample {
                        observer(&sample);
                    }
                    samples.push(sample);
                }
                // Sleep in short slices so stop is honored promptly.
                for _ in 0..20 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    thread::sleep(Duration::from_millis(100));
                }
            }
            samples
        })
    };

    let started = Instant::now();
    let mut batches = 0u64;
    let mut ops = 0u64;
    let mut worst_p99_ns = 0u64;
    let result = loop {
        if started.elapsed() >= duration {
            break Ok(());
        }
        match run_load(config) {
            Ok(report) => {
                batches += 1;
                ops += report.ops;
                worst_p99_ns = worst_p99_ns.max(report.p99_ns);
            }
            Err(e) => break Err(e),
        }
    };
    stop.store(true, Ordering::Relaxed);
    let samples = scraper.join().expect("soak scraper panicked");
    result?;
    let elapsed_ns = started.elapsed().as_nanos() as u64;
    Ok(SoakReport {
        batches,
        ops,
        elapsed_ns,
        ops_per_sec: ops as f64 / (elapsed_ns.max(1) as f64 / 1e9),
        worst_p99_ns,
        samples,
    })
}

/// What one worker thread tallied.
#[derive(Debug, Default, Clone, Copy)]
struct ThreadTally {
    ops: u64,
    setups: u64,
    admitted: u64,
    rejected: u64,
    released: u64,
}

/// An in-flight frame awaiting its FIFO reply.
struct Pending {
    is_setup: bool,
    sched_ns: u64,
}

/// Runs the configured load against a live server and aggregates the
/// per-thread tallies.
///
/// # Errors
///
/// Connection failures, codec failures, or an unexpected reply shape
/// (e.g. the server answered SETUP with something other than
/// ADMITTED / REJECTED / ERROR).
pub fn run_load(config: &LoadConfig) -> Result<LoadReport, WireError> {
    let registry = Arc::new(Registry::new());
    let hist = registry.histogram("serve_setup_ns");
    let threads = config.threads.max(1);
    let per_thread = config.ops / threads as u64;
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let cfg = config.clone();
        let hist = hist.clone();
        let ops = if t == 0 {
            // First thread absorbs the division remainder.
            config.ops - per_thread * (threads as u64 - 1)
        } else {
            per_thread
        };
        handles.push(thread::spawn(move || worker(&cfg, t, ops, start, &hist)));
    }
    let mut tally = ThreadTally::default();
    let mut first_err = None;
    for handle in handles {
        match handle.join().expect("load worker panicked") {
            Ok(t) => {
                tally.ops += t.ops;
                tally.setups += t.setups;
                tally.admitted += t.admitted;
                tally.rejected += t.rejected;
                tally.released += t.released;
            }
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let snap = hist.snapshot();
    Ok(LoadReport {
        ops: tally.ops,
        setups: tally.setups,
        admitted: tally.admitted,
        rejected: tally.rejected,
        released: tally.released,
        elapsed_ns,
        ops_per_sec: tally.ops as f64 / (elapsed_ns.max(1) as f64 / 1e9),
        p50_ns: snap.p50(),
        p90_ns: snap.p90(),
        p99_ns: snap.p99(),
    })
}

/// One generator thread: connect, learn the topology, fire its share of
/// the ops, then release everything it still holds.
fn worker(
    config: &LoadConfig,
    index: usize,
    ops: u64,
    start: Instant,
    hist: &rtcac_obs::Histogram,
) -> Result<ThreadTally, WireError> {
    let mut client = Client::connect(&config.addr).map_err(WireError::Io)?;
    let Response::ServerInfo {
        nodes, terminals, ..
    } = client.hello()?
    else {
        return Err(WireError::BadPayload(
            "HELLO was not answered by SERVER-INFO",
        ));
    };
    let routes = route_pool(
        nodes as usize,
        terminals as usize,
        config.seed ^ index as u64,
    )?;
    let mut rng = SimRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(index as u64),
    );

    // Per-send pacing for the open-loop mode: thread k of T sending at
    // total rate R sends every T/R seconds.
    let interval_ns = config
        .rate
        .map(|r| (config.threads.max(1) as u64 * 1_000_000_000) / r.max(1));

    let mut tally = ThreadTally::default();
    let mut inflight: VecDeque<Pending> = VecDeque::new();
    let mut to_release: Vec<u64> = Vec::new();
    let pipeline = config.pipeline.max(1);
    let mut sent = 0u64;
    while sent < ops || !inflight.is_empty() {
        // Fill the window (or send exactly on schedule when paced).
        while inflight.len() < pipeline && sent < ops {
            let now_ns = start.elapsed().as_nanos() as u64;
            let sched_ns = match interval_ns {
                Some(step) => {
                    let sched = sent * step;
                    if sched > now_ns {
                        // Not due yet: drain a reply if one is owed,
                        // otherwise sleep out the gap.
                        if let Some(p) = inflight.pop_front() {
                            client.flush()?;
                            settle(&mut client, &p, start, hist, &mut tally, &mut to_release)?;
                        } else {
                            thread::sleep(Duration::from_nanos(sched - now_ns));
                        }
                        continue;
                    }
                    sched
                }
                None => now_ns,
            };
            // Roughly alternate setups and releases so occupancy stays
            // bounded and the op mix is the paper's setup/teardown churn.
            let is_setup = if to_release.is_empty() {
                true
            } else if to_release.len() >= 16 {
                false
            } else {
                rng.next_u64() & 1 == 0
            };
            if is_setup {
                let links = &routes[rng.gen_below(routes.len() as u64) as usize];
                client.send(&Request::Setup {
                    links: links.clone(),
                    request: random_request(&mut rng),
                })?;
            } else {
                let id = to_release.swap_remove(rng.gen_below(to_release.len() as u64) as usize);
                client.send(&Request::Release { id })?;
            }
            inflight.push_back(Pending { is_setup, sched_ns });
            sent += 1;
        }
        client.flush()?;
        if let Some(p) = inflight.pop_front() {
            settle(&mut client, &p, start, hist, &mut tally, &mut to_release)?;
        }
    }
    // Cleanup: the run is over; release everything still held so the
    // server's final audit sees a quiescent engine. Not counted as ops.
    for id in to_release.drain(..) {
        let _ = client.release(id)?;
    }
    Ok(tally)
}

/// Receives and books one FIFO reply. Setup latency is recorded
/// against the frame's *scheduled* send time (open-loop semantics).
fn settle(
    client: &mut Client,
    pending: &Pending,
    start: Instant,
    hist: &rtcac_obs::Histogram,
    tally: &mut ThreadTally,
    to_release: &mut Vec<u64>,
) -> Result<(), WireError> {
    let reply = client.recv()?;
    tally.ops += 1;
    if pending.is_setup {
        let now_ns = start.elapsed().as_nanos() as u64;
        hist.record(now_ns.saturating_sub(pending.sched_ns));
        tally.setups += 1;
        match reply {
            Response::Admitted { id, .. } => {
                tally.admitted += 1;
                to_release.push(id);
            }
            Response::Rejected { .. } => tally.rejected += 1,
            Response::Error { .. } => tally.rejected += 1,
            _ => return Err(WireError::BadPayload("SETUP answered by a non-setup reply")),
        }
    } else {
        match reply {
            Response::Released { .. } | Response::Error { .. } => tally.released += 1,
            _ => {
                return Err(WireError::BadPayload(
                    "RELEASE answered by a non-release reply",
                ))
            }
        }
    }
    Ok(())
}

/// Builds a pool of randomized terminal-to-terminal routes (as external
/// link-id lists) over a locally rebuilt copy of the served star-ring.
///
/// The mix is locality-heavy — 7 of 8 routes stay on the source's own
/// ring switch, the rest cross the ring — matching the paper's RTnet
/// usage where terminals mostly talk through their local switch. (It
/// also keeps per-port occupancy, and hence per-admission cost, from
/// being dominated by a few long ring paths.)
fn route_pool(nodes: usize, terminals: usize, seed: u64) -> Result<Vec<Vec<u32>>, WireError> {
    let sr = builders::star_ring(nodes, terminals)
        .map_err(|_| WireError::BadPayload("server topology cannot be rebuilt locally"))?;
    let mut rng = SimRng::seed_from_u64(seed);
    let mut pool = Vec::with_capacity(ROUTES_PER_THREAD);
    while pool.len() < ROUTES_PER_THREAD {
        let src = (
            rng.gen_below(nodes as u64) as usize,
            rng.gen_below(terminals as u64) as usize,
        );
        let dst = if terminals > 1 && rng.gen_below(8) != 0 {
            // Local: another terminal on the same ring switch.
            let j = (src.1 + 1 + rng.gen_below(terminals as u64 - 1) as usize) % terminals;
            (src.0, j)
        } else {
            // Cross-ring: a terminal on a different switch.
            let k = (src.0 + 1 + rng.gen_below(nodes as u64 - 1) as usize) % nodes;
            (k, rng.gen_below(terminals as u64) as usize)
        };
        if src == dst {
            continue;
        }
        let route = sr
            .terminal_route(src, dst)
            .map_err(|_| WireError::BadPayload("terminal route construction failed"))?;
        pool.push(route.links().iter().map(|l| l.index() as u32).collect());
    }
    Ok(pool)
}

/// A small CBR request whose rate varies so the load is not one single
/// cached admission decision over and over.
fn random_request(rng: &mut SimRng) -> SetupRequest {
    let denominator = 64i128 << rng.gen_below(4); // 1/64 .. 1/512 of a link
    let contract = TrafficContract::cbr(
        CbrParams::new(Rate::new(ratio(1, denominator))).expect("load CBR rate is valid"),
    );
    SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(1_000_000))
}
