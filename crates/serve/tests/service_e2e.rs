//! End-to-end service behavior over loopback: ownership enforcement,
//! typed protocol errors, multicast setups, live stats, and a DRAIN
//! arriving in the middle of an active setup burst.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
use rtcac_cac::Priority;
use rtcac_net::builders;
use rtcac_rational::ratio;
use rtcac_serve::proto::{frame_type, reject_code};
use rtcac_serve::wire::write_frame;
use rtcac_serve::{Client, ErrorCode, Request, Response, ServeConfig, Server};
use rtcac_signaling::SetupRequest;

fn small_server(nodes: usize, terminals: usize) -> (Server, builders::StarRing) {
    let server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        nodes,
        terminals,
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let sr = builders::star_ring(nodes, terminals).unwrap();
    (server, sr)
}

fn links_of(sr: &builders::StarRing, src: (usize, usize), dst: (usize, usize)) -> Vec<u32> {
    let route = sr.terminal_route(src, dst).unwrap();
    route.links().iter().map(|l| l.index() as u32).collect()
}

fn setup_request() -> SetupRequest {
    let contract = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 128))).unwrap());
    SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(1_000_000))
}

#[test]
fn sessions_only_release_what_they_own() {
    let (server, sr) = small_server(4, 2);
    let links = links_of(&sr, (0, 0), (0, 1));

    let mut alice = Client::connect(server.addr()).unwrap();
    let mut bob = Client::connect(server.addr()).unwrap();
    let Response::Admitted { id, .. } = alice.setup(&links, setup_request()).unwrap() else {
        panic!("alice's setup should be admitted");
    };
    // Bob cannot release Alice's connection…
    assert!(matches!(
        bob.release(id).unwrap(),
        Response::Error {
            code: ErrorCode::NotOwner,
            ..
        }
    ));
    // …but Alice can, and Bob can see it disappear.
    assert!(matches!(
        alice.release(id).unwrap(),
        Response::Released { .. }
    ));
    assert!(matches!(
        bob.query(id).unwrap(),
        Response::QueryResult { found: false, .. }
    ));
    alice.drain().unwrap();
    drop((alice, bob));
    assert!(server.join().is_clean());
}

#[test]
fn hello_stats_and_multicast_over_the_wire() {
    let (server, sr) = small_server(4, 2);
    let mut client = Client::connect(server.addr()).unwrap();

    let Response::ServerInfo {
        nodes, terminals, ..
    } = client.hello().unwrap()
    else {
        panic!("HELLO must be answered by SERVER-INFO");
    };
    assert_eq!((nodes, terminals), (4, 2));

    // A broadcast tree admitted over the wire takes the engine's
    // multicast path.
    let tree = sr.broadcast_tree(1, 0).unwrap();
    let links: Vec<u32> = tree.links().iter().map(|l| l.index() as u32).collect();
    let Response::Admitted { id, .. } = client.setup_mcast(&links, setup_request()).unwrap() else {
        panic!("broadcast setup should be admitted on an empty ring");
    };

    let Response::StatsReply {
        active,
        admitted,
        draining,
        ..
    } = client.stats().unwrap()
    else {
        panic!("STATS must be answered by STATS-REPLY");
    };
    assert_eq!((active, admitted, draining), (1, 1, false));

    client.release(id).unwrap();
    client.drain().unwrap();
    drop(client);
    assert!(server.join().is_clean());
}

#[test]
fn protocol_errors_are_typed_and_survivable() {
    let (server, sr) = small_server(4, 2);
    let mut client = Client::connect(server.addr()).unwrap();

    // An unknown-version frame: typed error, session survives.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut stream, &[9, frame_type::HELLO]).unwrap();
    stream.flush().unwrap();
    let mut raw = Client::from_stream(stream.try_clone().unwrap()).unwrap();
    assert!(matches!(
        raw.recv().unwrap(),
        Response::Error {
            code: ErrorCode::UnsupportedVersion,
            ..
        }
    ));
    // The same session still answers a well-formed request afterwards.
    write_frame(&mut stream, &Request::Hello.encode()).unwrap();
    stream.flush().unwrap();
    assert!(matches!(raw.recv().unwrap(), Response::ServerInfo { .. }));

    // A route over links that do not exist: BadRoute, not a panic.
    assert!(matches!(
        client.setup(&[40_000, 40_001], setup_request()).unwrap(),
        Response::Error {
            code: ErrorCode::BadRoute,
            ..
        }
    ));
    // Releasing a connection nobody admitted: NotOwner.
    assert!(matches!(
        client.release(424_242).unwrap(),
        Response::Error {
            code: ErrorCode::NotOwner,
            ..
        }
    ));

    let links = links_of(&sr, (0, 0), (0, 1));
    assert!(matches!(
        client.setup(&links, setup_request()).unwrap(),
        Response::Admitted { .. }
    ));
    client.drain().unwrap();
    drop((client, raw, stream));
    assert!(server.join().is_clean());
}

#[test]
fn drain_mid_burst_keeps_invariants_and_refuses_new_setups() {
    let (server, sr) = small_server(8, 2);
    let addr = server.addr();

    // A burst thread churns setup+release until the drain cuts it off.
    let churn_links = links_of(&sr, (2, 0), (2, 1));
    let churner = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let mut drained_rejections = 0u32;
        for _ in 0..10_000 {
            match client.setup(&churn_links, setup_request()) {
                Ok(Response::Admitted { id, .. }) => {
                    // Deliberately leak some admissions (no release) so
                    // drain-time cleanup has real work to do.
                    if id % 3 != 0 {
                        let _ = client.release(id);
                    }
                }
                Ok(Response::Rejected { code, .. }) => {
                    if code == reject_code::DRAINING {
                        drained_rejections += 1;
                        if drained_rejections >= 3 {
                            break; // the drain is in force; stop churning
                        }
                    }
                }
                Ok(_) => {}
                Err(_) => break, // server closed the session mid-burst
            }
        }
        drained_rejections
    });

    // Let the burst get going, then drain mid-flight.
    std::thread::sleep(Duration::from_millis(150));
    let mut admin = Client::connect(addr).unwrap();
    let reply = admin.drain().unwrap();
    assert!(matches!(reply, Response::Draining { .. }));
    // Post-drain setups are refused with the typed Draining rejection.
    let links = links_of(&sr, (1, 0), (1, 1));
    match admin.setup(&links, setup_request()).unwrap() {
        Response::Rejected { code, .. } => assert_eq!(code, reject_code::DRAINING),
        other => panic!("post-drain setup should be rejected: {other:?}"),
    }
    let drained_rejections = churner.join().unwrap();
    drop(admin);

    // The mid-load shutdown must still audit clean: every leaked
    // admission released by session cleanup, no orphans, bounds intact.
    let summary = server.join();
    assert!(summary.is_clean(), "{summary:?}");
    assert_eq!(summary.active, 0, "cleanup must release leaked admissions");
    assert!(
        drained_rejections > 0 || summary.sessions >= 2,
        "the churner should have seen the drain take effect"
    );
}
