//! Warm-restart over the wire: a server with a `--snapshot` path
//! periodically saves its admission state, a second server boots from
//! that file with every pre-cut connection intact, a corrupt file is
//! refused without serving (and without being clobbered), and the
//! client's HELLO rides out the restore window on the typed
//! `SnapshotRestoring` backoff.

use std::fs;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::time::Duration;

use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
use rtcac_cac::Priority;
use rtcac_net::builders;
use rtcac_rational::ratio;
use rtcac_serve::wire::{read_frame, write_frame};
use rtcac_serve::{Client, ErrorCode, Request, Response, ServeConfig, Server};
use rtcac_signaling::SetupRequest;

fn temp_snapshot(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtcac-serve-snap-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn snap_server(path: &Path, every: Option<u64>) -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        nodes: 4,
        terminals: 2,
        workers: 2,
        snapshot_path: Some(path.display().to_string()),
        snapshot_every: every,
        ..ServeConfig::default()
    })
    .unwrap()
}

fn setup_request() -> SetupRequest {
    let contract = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 128))).unwrap());
    SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(1_000_000))
}

fn links_of(sr: &builders::StarRing, src: (usize, usize), dst: (usize, usize)) -> Vec<u32> {
    let route = sr.terminal_route(src, dst).unwrap();
    route.links().iter().map(|l| l.index() as u32).collect()
}

/// The kill-and-restore path, in-process: admit on one server, take
/// its periodic snapshot as the cut, and boot a second server from
/// that file. Every pre-cut connection must come back queryable, id
/// allocation must continue past the restored ids, and the restored
/// server must still drain clean.
#[test]
fn restored_server_serves_pre_cut_connections() {
    let cut = temp_snapshot("cut.bin");
    let boot = temp_snapshot("boot.bin");
    let _ = fs::remove_file(&cut);
    let _ = fs::remove_file(&boot);

    let sr = builders::star_ring(4, 2).unwrap();
    let victim = snap_server(&cut, Some(0)); // save on every poll tick
    let mut client = Client::connect(victim.addr()).unwrap();
    client.hello().unwrap();
    let Response::Admitted { id: first, .. } = client
        .setup(&links_of(&sr, (0, 0), (0, 1)), setup_request())
        .unwrap()
    else {
        panic!("first setup should be admitted");
    };
    let Response::Admitted { id: second, .. } = client
        .setup(&links_of(&sr, (1, 0), (1, 1)), setup_request())
        .unwrap()
    else {
        panic!("second setup should be admitted");
    };

    // Wait for a periodic save that contains both admissions (the
    // first tick can save an empty engine); the session stays open, so
    // nothing is cleanup-released before the cut.
    let mut captured = false;
    for _ in 0..200 {
        if let Ok(doc) = rtcac_snap::load_file(&cut) {
            if doc.state.connections.len() >= 2 {
                captured = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(captured, "periodic save never captured the admissions");
    // Freeze the cut: copy it out from under the victim's ongoing
    // periodic saves, then boot a second server from the frozen file.
    fs::copy(&cut, &boot).unwrap();
    let restored = snap_server(&boot, None);
    let mut survivor = Client::connect(restored.addr()).unwrap();
    // hello() absorbs the SnapshotRestoring window with typed backoff.
    assert!(matches!(
        survivor.hello().unwrap(),
        Response::ServerInfo { nodes: 4, .. }
    ));

    // Both pre-cut connections are established on the restored server.
    for id in [first, second] {
        assert!(matches!(
            survivor.query(id).unwrap(),
            Response::QueryResult { found: true, .. }
        ));
    }
    // Id allocation continues past the restored ids.
    let Response::Admitted { id: third, .. } = survivor
        .setup(&links_of(&sr, (2, 0), (2, 1)), setup_request())
        .unwrap()
    else {
        panic!("post-restore setup should be admitted");
    };
    assert!(third > first.max(second));
    let Response::StatsReply { active, .. } = survivor.stats().unwrap() else {
        panic!("STATS must be answered by STATS-REPLY");
    };
    assert_eq!(active, 3, "two restored + one fresh admission");

    survivor.release(third).unwrap();
    survivor.drain().unwrap();
    drop(survivor);
    let summary = restored.join();
    assert!(summary.is_clean(), "{summary:?}");
    // The restored (session-less) connections survive the drain with
    // their guarantees intact.
    assert_eq!(summary.active, 2);

    client.drain().unwrap();
    drop(client);
    assert!(victim.join().is_clean());
}

/// A corrupt snapshot is refused: the server drains without serving
/// traffic, reports why, and does NOT clobber the refused file with an
/// empty drain-time snapshot.
#[test]
fn corrupt_snapshot_is_refused_and_preserved() {
    let path = temp_snapshot("corrupt.bin");
    let garbage = b"this is not a snapshot".to_vec();
    fs::write(&path, &garbage).unwrap();

    let server = snap_server(&path, None);
    let summary = server.join();
    assert!(!summary.is_clean());
    let reason = summary.restore_failed.expect("restore must be refused");
    assert!(reason.contains("corrupt.bin"), "{reason}");
    // The refused file is preserved for forensics, byte for byte.
    assert_eq!(fs::read(&path).unwrap(), garbage);
}

/// The client-side half of the satellite: a HELLO answered with the
/// typed `SnapshotRestoring` error is retried with backoff until the
/// server comes up, and the eventual SERVER-INFO is returned as if the
/// restore window never happened.
#[test]
fn hello_backs_off_through_snapshot_restoring() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let mock = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut restoring_replies = 0u32;
        loop {
            let payload = read_frame(&mut stream).unwrap();
            let request = Request::decode(&payload).unwrap();
            assert!(matches!(request, Request::Hello));
            let reply = if restoring_replies < 3 {
                restoring_replies += 1;
                Response::Error {
                    code: ErrorCode::SnapshotRestoring,
                    message: "still restoring".into(),
                }
            } else {
                Response::ServerInfo {
                    nodes: 7,
                    terminals: 3,
                    levels: 2,
                    bound: Time::from_integer(64),
                }
            };
            let done = restoring_replies >= 3 && matches!(reply, Response::ServerInfo { .. });
            write_frame(&mut stream, &reply.encode()).unwrap();
            use std::io::Write;
            stream.flush().unwrap();
            if done {
                break;
            }
        }
        restoring_replies
    });

    let mut client = Client::connect(addr).unwrap();
    let Response::ServerInfo { nodes, .. } = client.hello().unwrap() else {
        panic!("hello must resolve to SERVER-INFO once the restore ends");
    };
    assert_eq!(nodes, 7);
    assert_eq!(
        mock.join().unwrap(),
        3,
        "the client retried through 3 restoring replies"
    );
}
