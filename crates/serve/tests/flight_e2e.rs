//! The flight recorder, end to end over loopback: a threshold-0 lock
//! watchdog produces exactly ONE black box (the per-reason once-latch),
//! the DUMP wire op forces more on demand, the dump decodes and renders
//! a timeline, and a clean server writes nothing at all.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
use rtcac_cac::Priority;
use rtcac_net::builders;
use rtcac_obs::FlightDump;
use rtcac_rational::ratio;
use rtcac_serve::{Client, Response, ServeConfig, Server};
use rtcac_signaling::SetupRequest;

fn flight_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtcac-flight-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn flight_server(dir: &Path, watchdog_ns: Option<u64>) -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        nodes: 4,
        terminals: 2,
        workers: 2,
        flight_dir: Some(dir.display().to_string()),
        flight_tick_ms: 20,
        lock_hold_threshold_ns: watchdog_ns,
        ..ServeConfig::default()
    })
    .unwrap()
}

fn setup_request() -> SetupRequest {
    let contract = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 128))).unwrap());
    SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(1_000_000))
}

fn links_of(sr: &builders::StarRing, src: (usize, usize), dst: (usize, usize)) -> Vec<u32> {
    let route = sr.terminal_route(src, dst).unwrap();
    route.links().iter().map(|l| l.index() as u32).collect()
}

#[test]
fn watchdog_anomaly_dumps_exactly_once_and_wire_dump_bypasses_the_latch() {
    let dir = flight_dir("watchdog");
    // Threshold 0: every setup's shard-lock hold exceeds it, so the
    // first setup trips the watchdog anomaly.
    let server = flight_server(&dir, Some(0));
    let sr = builders::star_ring(4, 2).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let links = links_of(&sr, (0, 0), (0, 1));
    let mut ids = Vec::new();
    for _ in 0..8 {
        if let Response::Admitted { id, .. } = client.setup(&links, setup_request()).unwrap() {
            ids.push(id);
        }
        if let Some(&id) = ids.last() {
            client.release(id).unwrap();
            ids.pop();
        }
    }
    let recorder = server.flight_recorder().expect("flight recorder armed");
    let deadline = Instant::now() + Duration::from_secs(5);
    while recorder.dumps_written() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    // Eight watchdog-tripping setups, exactly ONE automatic dump: the
    // per-reason once-latch holds.
    assert_eq!(
        recorder.dumps_written(),
        1,
        "persistent anomaly must produce exactly one black box"
    );
    let auto_path = recorder.last_dump_path().expect("dump path");
    let dump = FlightDump::decode(&fs::read(&auto_path).unwrap()).expect("dump decodes");
    assert_eq!(dump.reason, "lock_hold");
    assert!(!dump.forced);
    let timeline = dump.render_timeline();
    assert!(
        timeline.contains("lock_hold"),
        "timeline names the trigger:\n{timeline}"
    );

    // The DUMP wire op forces another black box despite the latch.
    let Response::Dumped { path, dumps } = client.dump().unwrap() else {
        panic!("DUMP must be answered by DUMPED");
    };
    assert_eq!(dumps, 2);
    let forced = FlightDump::decode(&fs::read(&path).unwrap()).expect("forced dump decodes");
    assert!(forced.forced);
    assert_eq!(forced.reason, "wire");

    client.drain().unwrap();
    drop(client);
    server.join();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn clean_run_writes_no_dumps() {
    let dir = flight_dir("clean");
    // Default watchdog threshold: ordinary loopback setups never come
    // close to it.
    let server = flight_server(&dir, None);
    let sr = builders::star_ring(4, 2).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let links = links_of(&sr, (0, 0), (0, 1));
    for _ in 0..20 {
        if let Response::Admitted { id, .. } = client.setup(&links, setup_request()).unwrap() {
            client.release(id).unwrap();
        }
    }
    // Let a few sampler ticks elapse so the tick triggers get their
    // chance to misfire.
    std::thread::sleep(Duration::from_millis(100));
    let recorder = server.flight_recorder().expect("flight recorder armed");
    assert_eq!(recorder.dumps_written(), 0, "clean run must stay silent");
    assert!(
        !dir.exists() || fs::read_dir(&dir).unwrap().next().is_none(),
        "no dump files on disk"
    );
    client.drain().unwrap();
    drop(client);
    assert!(server.join().is_clean());
    let _ = fs::remove_dir_all(&dir);
}
