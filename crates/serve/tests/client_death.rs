//! Client-death recovery: a client that vanishes mid-SETUP burst must
//! leave the engine exactly as if it had released everything — zero
//! orphaned reservations, no guarantee violations, zero established
//! connections — purely through session cleanup.

use std::time::{Duration, Instant};

use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
use rtcac_cac::Priority;
use rtcac_net::builders;
use rtcac_rational::ratio;
use rtcac_serve::{Client, Request, Response, ServeConfig, Server};
use rtcac_signaling::SetupRequest;

fn setup_request() -> SetupRequest {
    let contract = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 256))).unwrap());
    SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(1_000_000))
}

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    done()
}

#[test]
fn killed_client_leaves_no_orphans_and_intact_guarantees() {
    let server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        nodes: 8,
        terminals: 2,
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let sr = builders::star_ring(8, 2).unwrap();

    // A well-behaved bystander whose guarantee must survive the chaos.
    let mut bystander = Client::connect(server.addr()).unwrap();
    let route = sr.terminal_route((6, 0), (6, 1)).unwrap();
    let links: Vec<u32> = route.links().iter().map(|l| l.index() as u32).collect();
    let Response::Admitted { id: kept_id, .. } = bystander.setup(&links, setup_request()).unwrap()
    else {
        panic!("bystander setup should be admitted");
    };

    // The victim: pipeline a burst of SETUPs over several routes and
    // hang up without reading a single reply.
    let mut victim = Client::connect(server.addr()).unwrap();
    for i in 0..40u64 {
        let node = (i % 4) as usize;
        let route = sr.terminal_route((node, 0), (node, 1)).unwrap();
        let links: Vec<u32> = route.links().iter().map(|l| l.index() as u32).collect();
        victim
            .send(&Request::Setup {
                links,
                request: setup_request(),
            })
            .unwrap();
    }
    victim.flush().unwrap();
    drop(victim); // mid-burst death: replies were never read

    // Session cleanup must tear the victim's admissions down; only the
    // bystander's connection survives.
    let engine = server.engine().clone();
    assert!(
        wait_until(Duration::from_secs(10), || engine.connection_count() == 1),
        "victim's connections were not cleaned up; {} still established",
        engine.connection_count()
    );
    assert_eq!(engine.orphaned_reservations().len(), 0);
    assert!(engine.verify_guarantees().unwrap().is_empty());

    // The bystander never noticed: its connection still answers QUERY.
    assert!(matches!(
        bystander.query(kept_id).unwrap(),
        Response::QueryResult { found: true, .. }
    ));

    // Drain: the shutdown audit re-proves cleanliness and counts the
    // victim's cleanup releases.
    bystander.drain().unwrap();
    drop(bystander);
    let summary = server.join();
    assert!(summary.is_clean(), "{summary:?}");
    assert!(
        summary.cleanup_released >= 1,
        "the victim's admissions must have been released by cleanup: {summary:?}"
    );
}
