//! Codec property tests: seeded round-trips for every frame kind, and
//! a fuzz loop proving the decoder refuses arbitrary bytes with typed
//! errors — never a panic, never an attacker-sized allocation.

use std::io::Cursor;

use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac_cac::Priority;
use rtcac_rational::ratio;
use rtcac_serve::proto::{frame_type, ErrorCode, Request, Response};
use rtcac_serve::wire::{read_frame, write_frame, WireError, MAX_PAYLOAD, PROTO_VERSION};
use rtcac_signaling::SetupRequest;
use rtcac_sim::SimRng;

fn random_time(rng: &mut SimRng) -> Time {
    Time::new(ratio(
        rng.gen_below(1 << 20) as i128,
        1 + rng.gen_below(1 << 10) as i128,
    ))
}

fn random_setup_request(rng: &mut SimRng) -> SetupRequest {
    let contract = if rng.next_u64() & 1 == 0 {
        let den = 1 + rng.gen_below(512) as i128;
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, den))).unwrap())
    } else {
        let pden = 2 + rng.gen_below(64) as i128;
        let sden = pden * (1 + rng.gen_below(16) as i128);
        TrafficContract::vbr(
            VbrParams::new(
                Rate::new(ratio(1, pden)),
                Rate::new(ratio(1, sden)),
                1 + rng.gen_below(64),
            )
            .unwrap(),
        )
    };
    SetupRequest::new(
        contract,
        Priority::new(rng.gen_below(4) as u8),
        random_time(rng),
    )
}

fn random_links(rng: &mut SimRng) -> Vec<u32> {
    (0..1 + rng.gen_below(12))
        .map(|_| rng.gen_below(1 << 16) as u32)
        .collect()
}

fn random_request(rng: &mut SimRng) -> Request {
    match rng.gen_below(7) {
        0 => Request::Hello,
        1 => Request::Setup {
            links: random_links(rng),
            request: random_setup_request(rng),
        },
        2 => Request::SetupMcast {
            links: random_links(rng),
            request: random_setup_request(rng),
        },
        3 => Request::Release { id: rng.next_u64() },
        4 => Request::Query { id: rng.next_u64() },
        5 => Request::Drain,
        _ => Request::Stats,
    }
}

fn random_string(rng: &mut SimRng) -> String {
    let len = rng.gen_below(64) as usize;
    (0..len)
        .map(|_| char::from(b'a' + (rng.gen_below(26) as u8)))
        .collect()
}

fn random_response(rng: &mut SimRng) -> Response {
    match rng.gen_below(8) {
        0 => Response::ServerInfo {
            nodes: rng.gen_below(64) as u32,
            terminals: rng.gen_below(16) as u32,
            levels: 1 + rng.gen_below(4) as u8,
            bound: random_time(rng),
        },
        1 => Response::Admitted {
            id: rng.next_u64(),
            guaranteed_delay: random_time(rng),
            attempts: rng.gen_below(4) as u32,
        },
        2 => Response::Rejected {
            id: rng.next_u64(),
            code: 1 + rng.gen_below(4) as u8,
            detail: random_string(rng),
        },
        3 => Response::Released { id: rng.next_u64() },
        4 => Response::QueryResult {
            found: rng.next_u64() & 1 == 0,
            guaranteed_delay: random_time(rng),
        },
        5 => Response::Draining {
            active: rng.next_u64(),
        },
        6 => Response::StatsReply {
            active: rng.next_u64(),
            admitted: rng.next_u64(),
            rejected: rng.next_u64(),
            released: rng.next_u64(),
            orphans: rng.next_u64(),
            draining: rng.next_u64() & 1 == 0,
        },
        _ => Response::Error {
            code: ErrorCode::from_u8(1 + rng.gen_below(7) as u8).unwrap(),
            message: random_string(rng),
        },
    }
}

#[test]
fn every_request_roundtrips_through_the_codec() {
    let mut rng = SimRng::seed_from_u64(0x5e7f);
    for i in 0..2_000 {
        let request = random_request(&mut rng);
        let payload = request.encode();
        let back = Request::decode(&payload)
            .unwrap_or_else(|e| panic!("iteration {i}: {request:?} failed decode: {e}"));
        assert_eq!(request, back, "iteration {i}");
    }
}

#[test]
fn every_response_roundtrips_through_the_codec() {
    let mut rng = SimRng::seed_from_u64(0xca11);
    for i in 0..2_000 {
        let response = random_response(&mut rng);
        let payload = response.encode();
        let back = Response::decode(&payload)
            .unwrap_or_else(|e| panic!("iteration {i}: {response:?} failed decode: {e}"));
        assert_eq!(response, back, "iteration {i}");
    }
}

#[test]
fn frames_roundtrip_through_the_stream_layer() {
    let mut rng = SimRng::seed_from_u64(0xf00d);
    for _ in 0..200 {
        let request = random_request(&mut rng);
        let mut buf = Vec::new();
        write_frame(&mut buf, &request.encode()).unwrap();
        let payload = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(Request::decode(&payload).unwrap(), request);
    }
}

#[test]
fn fuzzed_payloads_never_panic_and_always_type_their_errors() {
    let mut rng = SimRng::seed_from_u64(0xfa22);
    let mut decoded = 0u32;
    for _ in 0..20_000 {
        let len = rng.gen_below(48) as usize;
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Half the iterations get a valid version byte so the fuzz
        // reaches past the version check into the body decoders.
        if !bytes.is_empty() && rng.next_u64() & 1 == 0 {
            bytes[0] = PROTO_VERSION;
        }
        if Request::decode(&bytes).is_ok() {
            decoded += 1;
        }
        let _ = Response::decode(&bytes);
    }
    // The property under test is "no panic, typed errors only"; a few
    // random buffers forming valid frames is expected and fine.
    assert!(decoded < 20_000, "fuzz must exercise the error paths");
}

#[test]
fn forged_length_prefixes_are_refused_without_allocating() {
    // A frame claiming a 4 GiB payload must be refused by the length
    // check, not by the allocator.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&u32::MAX.to_be_bytes());
    bytes.extend_from_slice(&[PROTO_VERSION, frame_type::HELLO]);
    match read_frame(&mut Cursor::new(&bytes)) {
        Err(WireError::Oversized { len, max }) => {
            assert_eq!(len, u32::MAX as usize);
            assert_eq!(max, MAX_PAYLOAD);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }

    // A SETUP whose link list claims 2^30 entries but carries 4 bytes
    // must be a typed error before any Vec::with_capacity of that size.
    let mut payload = vec![PROTO_VERSION, frame_type::SETUP];
    payload.extend_from_slice(&(1u32 << 30).to_be_bytes());
    payload.extend_from_slice(&[0, 0, 0, 1]);
    assert!(matches!(
        Request::decode(&payload),
        Err(WireError::BadPayload(_))
    ));
}

#[test]
fn truncated_and_alien_frames_are_typed_errors() {
    let mut rng = SimRng::seed_from_u64(0x7e57);
    for _ in 0..500 {
        // Truncate a valid frame at a random point: every cut must be a
        // typed error (or, for cuts past the end, a clean decode).
        let request = random_request(&mut rng);
        let payload = request.encode();
        let cut = rng.gen_below(payload.len() as u64) as usize;
        if cut == payload.len() {
            continue;
        }
        assert!(
            Request::decode(&payload[..cut]).is_err(),
            "truncated {request:?} at {cut} must not decode"
        );
    }
    // Unknown version and unknown frame types are distinct errors.
    assert!(matches!(
        Request::decode(&[99, frame_type::HELLO]),
        Err(WireError::UnsupportedVersion { got: 99 })
    ));
    assert!(matches!(
        Request::decode(&[PROTO_VERSION, 0x44]),
        Err(WireError::UnknownFrame { got: 0x44 })
    ));
}
