//! Scheduled fault plans: which element fails or heals at which step.

use rtcac_net::{LinkId, NodeId, Topology};
use rtcac_sim::SimRng;

/// One health transition of a network element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Marks a link down.
    LinkDown(LinkId),
    /// Marks a link up again.
    LinkUp(LinkId),
    /// Marks a node down.
    NodeDown(NodeId),
    /// Marks a node up again.
    NodeUp(NodeId),
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultEvent::LinkDown(link) => write!(f, "link {link} DOWN"),
            FaultEvent::LinkUp(link) => write!(f, "link {link} UP"),
            FaultEvent::NodeDown(node) => write!(f, "node {node} DOWN"),
            FaultEvent::NodeUp(node) => write!(f, "node {node} UP"),
        }
    }
}

/// An ordered schedule of [`FaultEvent`]s, each pinned to the chaos
/// step at which it fires. Steps are the chaos driver's discrete time;
/// multiple events may share a step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<(u64, FaultEvent)>,
}

/// At most this many elements are concurrently down in a random plan,
/// so the network keeps enough capacity for crankback to have
/// somewhere to go.
pub const MAX_CONCURRENT_DOWN: usize = 2;

impl FaultPlan {
    /// A plan from explicit `(step, event)` pairs; the pairs are
    /// sorted by step (stably, preserving same-step order).
    pub fn new(mut events: Vec<(u64, FaultEvent)>) -> FaultPlan {
        events.sort_by_key(|&(step, _)| step);
        FaultPlan { events }
    }

    /// The scheduled events in firing order.
    pub fn events(&self) -> &[(u64, FaultEvent)] {
        &self.events
    }

    /// A seeded random plan over `steps` chaos steps: each step fires
    /// a fault event with probability `rate_percent`/100. Failures hit
    /// random links (any) and switch nodes (1 in 4 events); once
    /// [`MAX_CONCURRENT_DOWN`] elements are down, or with a coin flip
    /// while anything is down, the event heals a random down element
    /// instead. Equal seeds give equal plans.
    pub fn random(topology: &Topology, seed: u64, steps: u64, rate_percent: u64) -> FaultPlan {
        let mut rng = SimRng::seed_from_u64(seed);
        let links: Vec<LinkId> = topology.links().iter().map(|l| l.id()).collect();
        let switches: Vec<NodeId> = topology.switches().map(|n| n.id()).collect();
        let mut down_links: Vec<LinkId> = Vec::new();
        let mut down_nodes: Vec<NodeId> = Vec::new();
        let mut events = Vec::new();
        for step in 0..steps {
            if rng.gen_below(100) >= rate_percent.min(100) {
                continue;
            }
            let downs = down_links.len() + down_nodes.len();
            let heal = downs >= MAX_CONCURRENT_DOWN || (downs > 0 && rng.gen_below(2) == 1);
            let event = if heal {
                let pick = rng.gen_below(downs as u64) as usize;
                if pick < down_links.len() {
                    FaultEvent::LinkUp(down_links.remove(pick))
                } else {
                    FaultEvent::NodeUp(down_nodes.remove(pick - down_links.len()))
                }
            } else if !switches.is_empty() && rng.gen_below(4) == 0 {
                let node = switches[rng.gen_below(switches.len() as u64) as usize];
                if down_nodes.contains(&node) {
                    continue;
                }
                down_nodes.push(node);
                FaultEvent::NodeDown(node)
            } else if !links.is_empty() {
                let link = links[rng.gen_below(links.len() as u64) as usize];
                if down_links.contains(&link) {
                    continue;
                }
                down_links.push(link);
                FaultEvent::LinkDown(link)
            } else {
                continue;
            };
            events.push((step, event));
        }
        FaultPlan { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_net::builders;

    #[test]
    fn equal_seeds_give_equal_plans() {
        let sr = builders::dual_star_ring(8, 1).unwrap();
        let a = FaultPlan::random(sr.topology(), 7, 100, 30);
        let b = FaultPlan::random(sr.topology(), 7, 100, 30);
        assert_eq!(a, b);
        assert!(!a.events().is_empty(), "a 30% rate over 100 steps fires");
        let c = FaultPlan::random(sr.topology(), 8, 100, 30);
        assert_ne!(a, c, "distinct seeds diverge");
    }

    #[test]
    fn random_plan_caps_concurrent_failures_and_balances_heals() {
        let sr = builders::dual_star_ring(8, 1).unwrap();
        let plan = FaultPlan::random(sr.topology(), 3, 500, 50);
        let mut down: usize = 0;
        for &(_, event) in plan.events() {
            match event {
                FaultEvent::LinkDown(_) | FaultEvent::NodeDown(_) => down += 1,
                FaultEvent::LinkUp(_) | FaultEvent::NodeUp(_) => {
                    down = down.checked_sub(1).expect("heal without failure")
                }
            }
            assert!(down <= MAX_CONCURRENT_DOWN);
        }
    }

    #[test]
    fn explicit_plans_sort_by_step() {
        let sr = builders::dual_star_ring(4, 1).unwrap();
        let link = sr.ring_link(0).unwrap();
        let plan = FaultPlan::new(vec![
            (9, FaultEvent::LinkUp(link)),
            (2, FaultEvent::LinkDown(link)),
        ]);
        assert_eq!(plan.events()[0].0, 2);
        assert_eq!(plan.events()[1].0, 9);
    }
}
