//! The chaos harness: churn an [`AdmissionEngine`] with setups and
//! releases while replaying a [`FaultPlan`], auditing the engine's
//! safety invariants the whole way.

use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
use rtcac_cac::{ConnectionId, Priority};
use rtcac_engine::{AdmissionEngine, EngineError, EngineOutcome, EngineStats};
use rtcac_net::{MulticastTree, NodeId, Topology};
use rtcac_rational::ratio;
use rtcac_signaling::SetupRequest;
use rtcac_sim::SimRng;

use crate::plan::{FaultEvent, FaultPlan};

/// Tuning knobs for one chaos run. The defaults give a run that
/// exercises every recovery path on a star-ring in well under a
/// second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for the traffic stream (setup/release choices). The fault
    /// plan carries its own seed.
    pub seed: u64,
    /// Number of chaos steps to run.
    pub steps: u64,
    /// New setups submitted per step.
    pub setups_per_step: u64,
    /// Percent chance per step of releasing one live connection.
    pub release_percent: u64,
    /// Percent chance per step of submitting one point-to-multipoint
    /// setup (a shortest-path tree from a random root terminal to two
    /// random leaves) through
    /// [`AdmissionEngine::admit_multicast`].
    pub mcast_percent: u64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 1,
            steps: 200,
            setups_per_step: 2,
            release_percent: 30,
            mcast_percent: 20,
        }
    }
}

/// What a chaos run did and what the final audits found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Setups committed on their submitted route.
    pub admitted: u64,
    /// Setups committed on a crankback alternate.
    pub rerouted: u64,
    /// Setups refused (capacity, QoS, or no surviving route).
    pub rejected: u64,
    /// Point-to-multipoint setups committed on their submitted tree.
    pub mcast_admitted: u64,
    /// Point-to-multipoint setups refused (trees have no crankback,
    /// so a dead tree is refused outright).
    pub mcast_rejected: u64,
    /// Connections released by the traffic churn.
    pub released: u64,
    /// Connections force-released by element failures.
    pub torn_down: u64,
    /// Effective link failures replayed from the plan.
    pub link_failures: u64,
    /// Effective link heals replayed from the plan.
    pub link_heals: u64,
    /// Effective node failures replayed from the plan.
    pub node_failures: u64,
    /// Effective node heals replayed from the plan.
    pub node_heals: u64,
    /// Orphaned shard reservations observed right after any fault
    /// event (must stay 0: failover releases at every surviving hop).
    pub orphan_violations: u64,
    /// Orphaned shard reservations at the end of the run (must be 0).
    pub orphans_final: u64,
    /// Guarantee violations found by the final
    /// [`AdmissionEngine::verify_guarantees`] audit (must be 0): every
    /// surviving connection's recomputed Algorithm 4.1 bound still
    /// meets its contracted delay.
    pub guarantee_violations: u64,
    /// Connections still established when the run ended.
    pub live_final: u64,
    /// The engine's terminal counters.
    pub stats: EngineStats,
}

impl ChaosReport {
    /// Whether the run upheld the engine's safety invariants: no
    /// orphaned reservations (during or after), no violated delay
    /// guarantees, and terminal-counter conservation — overall
    /// (`submitted == admitted + rejected + aborted + errored +
    /// rerouted`) and for the multicast subset
    /// (`mcast_submitted == mcast_admitted + mcast_rejected`).
    pub fn invariants_hold(&self) -> bool {
        self.orphan_violations == 0
            && self.orphans_final == 0
            && self.guarantee_violations == 0
            && self.stats.submitted
                == self.stats.admitted
                    + self.stats.rejected
                    + self.stats.aborted
                    + self.stats.errored
                    + self.stats.rerouted
            && self.stats.mcast_submitted == self.stats.mcast_admitted + self.stats.mcast_rejected
    }

    /// A human-readable multi-line summary.
    pub fn summary(&self) -> String {
        format!(
            "chaos: admitted={} rerouted={} rejected={} mcast={}/{} released={} torn_down={}\n\
             faults: link {}/{} down/up, node {}/{} down/up\n\
             audits: orphans(mid)={} orphans(final)={} guarantee_violations={} live={}\n\
             invariants: {}",
            self.admitted,
            self.rerouted,
            self.rejected,
            self.mcast_admitted,
            self.mcast_admitted + self.mcast_rejected,
            self.released,
            self.torn_down,
            self.link_failures,
            self.link_heals,
            self.node_failures,
            self.node_heals,
            self.orphan_violations,
            self.orphans_final,
            self.guarantee_violations,
            self.live_final,
            if self.invariants_hold() {
                "OK"
            } else {
                "VIOLATED"
            }
        )
    }
}

/// One traffic decision made during a chaos run, in submission order.
///
/// The log is the basis of the kill-and-restore proof: a run that is
/// killed at step `k` and continued on a restored engine must produce
/// exactly this sequence from step `k` on — same ids, same outcomes —
/// as a run that was never killed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosDecision {
    /// A unicast setup committed on its submitted route.
    Admitted(ConnectionId),
    /// A unicast setup committed on a crankback alternate.
    Rerouted(ConnectionId),
    /// A unicast setup refused.
    Rejected,
    /// A point-to-multipoint setup committed.
    McastAdmitted(ConnectionId),
    /// A point-to-multipoint setup refused.
    McastRejected,
    /// A live connection released by the churn.
    Released(ConnectionId),
}

/// The mutable state of a chaos run, carried across
/// [`run_chaos_segment`] calls so a run can be paused (e.g. while the
/// engine is killed and restored from a snapshot) and then continued
/// deterministically.
#[derive(Debug, Clone)]
pub struct ChaosState {
    rng: SimRng,
    live: Vec<ConnectionId>,
    cursor: usize,
    step: u64,
    report: ChaosReport,
    decisions: Vec<ChaosDecision>,
}

impl ChaosState {
    /// Fresh state for a run under `config` (positions the traffic RNG
    /// at the configured seed).
    pub fn new(config: &ChaosConfig) -> ChaosState {
        ChaosState {
            rng: SimRng::seed_from_u64(config.seed),
            live: Vec::new(),
            cursor: 0,
            step: 0,
            report: ChaosReport::default(),
            decisions: Vec::new(),
        }
    }

    /// Steps executed so far.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Connections currently established by the churn.
    pub fn live(&self) -> &[ConnectionId] {
        &self.live
    }

    /// Every traffic decision made so far, in submission order.
    pub fn decisions(&self) -> &[ChaosDecision] {
        &self.decisions
    }
}

/// Ordered `(source, destination)` end-system pairs for chaos traffic:
/// each end system paired with its successor and with the end system
/// half-way around, so routes of several lengths are exercised.
pub fn endpoint_pairs(topology: &Topology) -> Vec<(NodeId, NodeId)> {
    let terminals: Vec<NodeId> = topology.end_systems().map(|n| n.id()).collect();
    let n = terminals.len();
    if n < 2 {
        return Vec::new();
    }
    let mut pairs = Vec::new();
    for (i, &from) in terminals.iter().enumerate() {
        pairs.push((from, terminals[(i + 1) % n]));
        pairs.push((from, terminals[(i + n / 2) % n]));
    }
    pairs.retain(|(a, b)| a != b);
    pairs
}

/// Runs one chaos session against `engine`: per step, replays the due
/// [`FaultPlan`] events (auditing for orphaned reservations after
/// each), submits fresh setups between random `endpoints` (plus the
/// occasional point-to-multipoint tree, per
/// [`ChaosConfig::mcast_percent`]), and occasionally releases a live
/// connection. Routes and trees are looked up on the pristine
/// topology, so setups submitted over a failed element exercise the
/// engine's crankback (unicast) or health-gated refusal (trees).
///
/// # Errors
///
/// Returns [`EngineError`] only for API-level failures (a plan or
/// endpoint list not belonging to the engine's topology); rejections
/// and failed routes are counted, not raised.
pub fn run_chaos(
    engine: &AdmissionEngine,
    endpoints: &[(NodeId, NodeId)],
    plan: &FaultPlan,
    config: &ChaosConfig,
) -> Result<ChaosReport, EngineError> {
    let mut state = ChaosState::new(config);
    run_chaos_segment(engine, endpoints, plan, config, &mut state, config.steps)?;
    finish_report(engine, &state)
}

/// Runs `steps` further chaos steps against `engine`, continuing from
/// (and mutating) `state`. Splitting a run into segments with the same
/// total step count is behavior-identical to one whole run — the RNG,
/// live list, plan cursor and decision log all travel in `state` — so a
/// caller can cut a run anywhere, kill and restore the engine, and
/// resume.
///
/// # Errors
///
/// As [`run_chaos`].
pub fn run_chaos_segment(
    engine: &AdmissionEngine,
    endpoints: &[(NodeId, NodeId)],
    plan: &FaultPlan,
    config: &ChaosConfig,
    state: &mut ChaosState,
    steps: u64,
) -> Result<(), EngineError> {
    let rng = &mut state.rng;
    let live = &mut state.live;
    let cursor = &mut state.cursor;
    let report = &mut state.report;
    let decisions = &mut state.decisions;
    let terminals: Vec<NodeId> = engine.topology().end_systems().map(|n| n.id()).collect();
    for step in state.step..state.step + steps {
        // Replay every fault event due at this step. Each replayed
        // event gets its own span tagged with the fault epoch before
        // and after, so admission traces (which carry `fault_epoch`)
        // can be correlated with the fault that bracketed them.
        while *cursor < plan.events().len() && plan.events()[*cursor].0 <= step {
            let (_, event) = plan.events()[*cursor];
            *cursor += 1;
            let mut ctx = engine.tracer().start("chaos.fault");
            if ctx.is_live() {
                ctx.attr("step", step.to_string());
                ctx.attr("fault_epoch", engine.health_epoch().to_string());
            }
            match event {
                FaultEvent::LinkDown(link) => {
                    let impact = engine.fail_link(link)?;
                    report.link_failures += u64::from(impact.is_changed());
                    report.torn_down += impact.torn_down().len() as u64;
                    live.retain(|id| !impact.torn_down().contains(id));
                    ctx.event(
                        "fault",
                        format!("link {link} down: tore down {}", impact.torn_down().len()),
                    );
                }
                FaultEvent::LinkUp(link) => {
                    report.link_heals += u64::from(engine.heal_link(link)?);
                    ctx.event("fault", format!("link {link} up"));
                }
                FaultEvent::NodeDown(node) => {
                    let impact = engine.fail_node(node)?;
                    report.node_failures += u64::from(impact.is_changed());
                    report.torn_down += impact.torn_down().len() as u64;
                    live.retain(|id| !impact.torn_down().contains(id));
                    ctx.event(
                        "fault",
                        format!("node {node} down: tore down {}", impact.torn_down().len()),
                    );
                }
                FaultEvent::NodeUp(node) => {
                    report.node_heals += u64::from(engine.heal_node(node)?);
                    ctx.event("fault", format!("node {node} up"));
                }
            }
            if ctx.is_live() {
                ctx.attr("fault_epoch_after", engine.health_epoch().to_string());
            }
            ctx.finish(false);
            report.orphan_violations += engine.orphaned_reservations().len() as u64;
        }

        // Traffic churn: submit fresh setups over the pristine-route
        // lookup (the engine reroutes around dead elements itself)…
        if !endpoints.is_empty() {
            for _ in 0..config.setups_per_step {
                let (from, to) = endpoints[rng.gen_below(endpoints.len() as u64) as usize];
                let Ok(route) = engine
                    .topology()
                    .shortest_route_avoiding(from, to, &[], &[])
                else {
                    continue;
                };
                // Power-of-two denominators keep the exact-rational
                // aggregates' common denominator bounded no matter how
                // many streams multiplex.
                let denominator = 8i128 << rng.gen_below(4);
                let contract = TrafficContract::cbr(
                    CbrParams::new(Rate::new(ratio(1, denominator)))
                        .expect("chaos CBR rate is valid"),
                );
                let request =
                    SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(1_000_000));
                match engine.admit(&route, request)? {
                    EngineOutcome::Admitted { id, .. } => {
                        report.admitted += 1;
                        live.push(id);
                        decisions.push(ChaosDecision::Admitted(id));
                    }
                    EngineOutcome::Rerouted { id, .. } => {
                        report.rerouted += 1;
                        live.push(id);
                        decisions.push(ChaosDecision::Rerouted(id));
                    }
                    EngineOutcome::Rejected { .. } => {
                        report.rejected += 1;
                        decisions.push(ChaosDecision::Rejected);
                    }
                }
            }
        }

        // …sometimes fan one stream out to a pair of leaves…
        if terminals.len() >= 3 && rng.gen_below(100) < config.mcast_percent {
            let root = terminals[rng.gen_below(terminals.len() as u64) as usize];
            let mut leaves: Vec<NodeId> = Vec::new();
            for _ in 0..2 {
                let leaf = terminals[rng.gen_below(terminals.len() as u64) as usize];
                if leaf != root && !leaves.contains(&leaf) {
                    leaves.push(leaf);
                }
            }
            if let Ok(tree) = MulticastTree::shortest_tree(engine.topology(), root, &leaves) {
                let contract = TrafficContract::cbr(
                    CbrParams::new(Rate::new(ratio(1, 16))).expect("chaos CBR rate is valid"),
                );
                let request =
                    SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(1_000_000));
                match engine.admit_multicast(&tree, request)? {
                    EngineOutcome::Admitted { id, .. } | EngineOutcome::Rerouted { id, .. } => {
                        report.mcast_admitted += 1;
                        live.push(id);
                        decisions.push(ChaosDecision::McastAdmitted(id));
                    }
                    EngineOutcome::Rejected { .. } => {
                        report.mcast_rejected += 1;
                        decisions.push(ChaosDecision::McastRejected);
                    }
                }
            }
        }

        // …and occasionally hang up.
        if !live.is_empty() && rng.gen_below(100) < config.release_percent {
            let id = live.swap_remove(rng.gen_below(live.len() as u64) as usize);
            engine.release(id)?;
            report.released += 1;
            decisions.push(ChaosDecision::Released(id));
        }
    }

    state.step += steps;
    Ok(())
}

/// Runs the end-of-run audits against `engine` (orphaned reservations,
/// [`AdmissionEngine::verify_guarantees`]) and merges them with the
/// counters accumulated in `state` into a final [`ChaosReport`].
///
/// # Errors
///
/// As [`run_chaos`].
pub fn finish_report(
    engine: &AdmissionEngine,
    state: &ChaosState,
) -> Result<ChaosReport, EngineError> {
    let mut report = state.report.clone();
    report.orphans_final = engine.orphaned_reservations().len() as u64;
    report.guarantee_violations = engine.verify_guarantees()?.len() as u64;
    report.live_final = state.live.len() as u64;
    report.stats = engine.stats();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_cac::SwitchConfig;
    use rtcac_net::builders;
    use rtcac_signaling::CdvPolicy;

    #[test]
    fn chaos_smoke_upholds_invariants() {
        let sr = builders::dual_star_ring(6, 1).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
        let engine = AdmissionEngine::new(sr.topology().clone(), config, CdvPolicy::Hard);
        let plan = FaultPlan::random(sr.topology(), 11, 100, 30);
        let pairs = endpoint_pairs(engine.topology());
        assert!(!pairs.is_empty());
        let report = run_chaos(
            &engine,
            &pairs,
            &plan,
            &ChaosConfig {
                seed: 11,
                steps: 100,
                ..ChaosConfig::default()
            },
        )
        .unwrap();
        assert!(
            report.invariants_hold(),
            "invariants violated:\n{}",
            report.summary()
        );
        assert!(report.link_failures + report.node_failures > 0);
        assert!(report.admitted > 0);
        assert!(
            report.mcast_admitted + report.mcast_rejected > 0,
            "the default config must exercise multicast churn:\n{}",
            report.summary()
        );
        assert_eq!(
            report.stats.mcast_submitted,
            report.mcast_admitted + report.mcast_rejected,
        );
    }

    #[test]
    fn endpoint_pairs_cover_distinct_terminals() {
        let sr = builders::dual_star_ring(4, 2).unwrap();
        let pairs = endpoint_pairs(sr.topology());
        assert!(!pairs.is_empty());
        assert!(pairs.iter().all(|(a, b)| a != b));
    }
}
