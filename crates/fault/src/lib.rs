//! `rtcac-fault` — fault injection and failure recovery for the rtcac
//! workspace.
//!
//! The analytic crates prove what happens while the network holds
//! still; this crate shakes it. A [`FaultPlan`] is a seeded,
//! deterministic schedule of link/node failures and repairs; the chaos
//! harness ([`run_chaos`]) replays a plan against a live
//! [`rtcac_engine::AdmissionEngine`] while churning connections
//! through it, auditing after every transition that
//!
//! * no shard holds an **orphaned reservation** (bandwidth reserved
//!   for a connection no registry knows about),
//! * every surviving connection's recomputed Algorithm 4.1 delay bound
//!   still meets its contracted delay, and
//! * the engine's terminal counters conserve
//!   (`submitted == admitted + rejected + aborted + errored +
//!   rerouted`).
//!
//! Determinism is load-bearing: equal seeds give equal plans and equal
//! traffic, so a failing chaos run is replayable from its seed alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod plan;

pub use chaos::{
    endpoint_pairs, finish_report, run_chaos, run_chaos_segment, ChaosConfig, ChaosDecision,
    ChaosReport, ChaosState,
};
pub use plan::{FaultEvent, FaultPlan, MAX_CONCURRENT_DOWN};
