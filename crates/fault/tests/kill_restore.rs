//! Kill-and-restore chaos proof: a chaos run that is killed mid-flight
//! and brought back from its last snapshot must be indistinguishable —
//! decision for decision, counter for counter — from a run that was
//! never killed, and the restored engine must still uphold every
//! contracted delay guarantee.
//!
//! Topology: a 16-node dual star-ring (8 ring switches with redundant
//! chords, one terminal each), so crankback reroutes and multicast
//! trees are all in play when the axe falls.

use rtcac_bitstream::Time;
use rtcac_cac::SwitchConfig;
use rtcac_engine::{AdmissionEngine, EngineStats};
use rtcac_fault::{
    endpoint_pairs, finish_report, run_chaos, run_chaos_segment, ChaosConfig, ChaosReport,
    ChaosState, FaultPlan,
};
use rtcac_net::builders;
use rtcac_signaling::CdvPolicy;
use rtcac_snap::{decode, encode, restore_engine, snapshot_engine};

const STEPS: u64 = 120;
const FAULT_PERCENT: u64 = 25;

fn fresh_engine() -> AdmissionEngine {
    let sr = builders::dual_star_ring(8, 1).unwrap();
    assert_eq!(
        sr.topology().nodes().len(),
        16,
        "the proof runs on 16 nodes"
    );
    let config = SwitchConfig::uniform(2, Time::from_integer(64)).unwrap();
    AdmissionEngine::new(sr.topology().clone(), config, CdvPolicy::Hard)
}

/// Cache counters are the one legitimate difference after a restore
/// (the restored engine starts cold), so parity compares with both
/// zeroed.
fn normalized(mut report: ChaosReport) -> ChaosReport {
    report.stats = EngineStats {
        cache_hits: 0,
        cache_misses: 0,
        ..report.stats
    };
    report
}

/// Runs the same seeded chaos session twice — once uninterrupted, once
/// killed at `cut` steps and restored from a snapshot taken at the cut
/// — and demands identical decisions and an identical normalized
/// report.
fn assert_kill_restore_parity(seed: u64, cut: u64) {
    let config = ChaosConfig {
        seed,
        steps: STEPS,
        ..ChaosConfig::default()
    };

    // The uninterrupted control run.
    let control_engine = fresh_engine();
    let endpoints = endpoint_pairs(control_engine.topology());
    let plan = FaultPlan::random(
        control_engine.topology(),
        seed ^ 0xFA17,
        STEPS,
        FAULT_PERCENT,
    );
    let mut control_state = ChaosState::new(&config);
    run_chaos_segment(
        &control_engine,
        &endpoints,
        &plan,
        &config,
        &mut control_state,
        STEPS,
    )
    .unwrap();
    let control_report = finish_report(&control_engine, &control_state).unwrap();
    assert!(
        control_report.invariants_hold(),
        "control run violated invariants:\n{}",
        control_report.summary()
    );

    // The victim: run to the cut, snapshot, "kill" the engine (drop
    // it), restore a new engine from the snapshot bytes, continue with
    // the carried chaos state.
    let victim = fresh_engine();
    let mut state = ChaosState::new(&config);
    run_chaos_segment(&victim, &endpoints, &plan, &config, &mut state, cut).unwrap();
    let bytes = encode(&snapshot_engine(&victim, "kill-restore-test"));
    drop(victim);

    let doc = decode(&bytes).unwrap();
    let restored = restore_engine(&doc).unwrap();

    // Every pre-cut connection survived the restore with its Algorithm
    // 4.1 bound still within its contracted deadline.
    assert!(
        restored.verify_guarantees().unwrap().is_empty(),
        "restored engine violates pre-cut guarantees (seed {seed}, cut {cut})"
    );
    assert!(restored.orphaned_reservations().is_empty());

    run_chaos_segment(
        &restored,
        &endpoints,
        &plan,
        &config,
        &mut state,
        STEPS - cut,
    )
    .unwrap();
    let report = finish_report(&restored, &state).unwrap();

    assert!(
        report.invariants_hold(),
        "kill-restore run violated invariants (seed {seed}, cut {cut}):\n{}",
        report.summary()
    );
    assert_eq!(
        control_state.decisions(),
        state.decisions(),
        "post-restore decisions diverged from the never-killed run \
         (seed {seed}, cut {cut})"
    );
    assert_eq!(
        normalized(control_report),
        normalized(report),
        "final reports diverged (seed {seed}, cut {cut})"
    );
}

#[test]
fn kill_restore_parity_seed_a() {
    assert_kill_restore_parity(0x51AB_0001, 40);
}

#[test]
fn kill_restore_parity_seed_b() {
    assert_kill_restore_parity(0x51AB_0002, 60);
}

#[test]
fn kill_restore_parity_seed_c() {
    assert_kill_restore_parity(0x51AB_0003, 85);
}

/// Segmenting a run (without any kill) is exactly equivalent to one
/// whole run — the property the kill-restore proof stands on.
#[test]
fn segmented_run_equals_whole_run() {
    let config = ChaosConfig {
        seed: 7,
        steps: STEPS,
        ..ChaosConfig::default()
    };
    let whole_engine = fresh_engine();
    let endpoints = endpoint_pairs(whole_engine.topology());
    let plan = FaultPlan::random(whole_engine.topology(), 7, STEPS, FAULT_PERCENT);
    let whole = run_chaos(&whole_engine, &endpoints, &plan, &config).unwrap();

    let segmented_engine = fresh_engine();
    let mut state = ChaosState::new(&config);
    for _ in 0..4 {
        run_chaos_segment(
            &segmented_engine,
            &endpoints,
            &plan,
            &config,
            &mut state,
            STEPS / 4,
        )
        .unwrap();
    }
    assert_eq!(state.step(), STEPS);
    let segmented = finish_report(&segmented_engine, &state).unwrap();
    assert_eq!(whole, segmented);
}
