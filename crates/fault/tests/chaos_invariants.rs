//! The acceptance invariants of the chaos harness, checked for three
//! seeds on a 16-node star-ring: after a full churn-and-fail session,
//! (a) the orphaned-reservation gauge reads 0, (b) every surviving
//! connection's recomputed Algorithm 4.1 bound meets its contracted
//! delay, (c) the lock-health watchdog recorded every shard-lock hold
//! and saw none cross the long-hold threshold, and (d) the engine's
//! terminal counters conserve.

use std::sync::Arc;

use rtcac_bitstream::Time;
use rtcac_cac::SwitchConfig;
use rtcac_engine::AdmissionEngine;
use rtcac_fault::{endpoint_pairs, run_chaos, ChaosConfig, FaultPlan};
use rtcac_net::builders;
use rtcac_obs::Registry;
use rtcac_signaling::CdvPolicy;

#[test]
fn chaos_invariants_hold_across_seeds() {
    let mut total_rerouted = 0;
    for seed in [1u64, 2, 3] {
        let sr = builders::dual_star_ring(16, 2).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
        let registry = Arc::new(Registry::new());
        let engine = AdmissionEngine::with_registry(
            sr.topology().clone(),
            config,
            CdvPolicy::Hard,
            Arc::clone(&registry),
        );
        let plan = FaultPlan::random(sr.topology(), seed, 200, 25);
        assert!(
            !plan.events().is_empty(),
            "seed {seed}: the plan must schedule failures"
        );
        let pairs = endpoint_pairs(engine.topology());
        let report = run_chaos(
            &engine,
            &pairs,
            &plan,
            &ChaosConfig {
                seed,
                steps: 200,
                ..ChaosConfig::default()
            },
        )
        .unwrap();

        // (a) No orphaned reservations, mid-run or final — and the obs
        // gauge published after the last failure agrees.
        assert_eq!(
            (report.orphan_violations, report.orphans_final),
            (0, 0),
            "seed {seed}: orphaned reservations:\n{}",
            report.summary()
        );
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.gauge("engine_orphaned_reservations").unwrap_or(0),
            0,
            "seed {seed}: the orphaned-reservation gauge must read 0"
        );

        // (b) Every surviving connection's guarantees still hold.
        assert_eq!(
            report.guarantee_violations,
            0,
            "seed {seed}: guarantee violations:\n{}",
            report.summary()
        );
        assert!(engine.verify_guarantees().unwrap().is_empty());

        // (c) The lock-health watchdog stayed quiet: every shard-lock
        // hold was recorded, and none crossed the long-hold threshold
        // even under full churn-and-fail load.
        let holds = snapshot
            .histogram("engine_lock_hold_ns")
            .expect("lock-hold histogram must be registered");
        assert!(
            holds.count > 0,
            "seed {seed}: no lock holds recorded — the watchdog is not wired"
        );
        assert_eq!(
            snapshot.counter("engine_lock_hold_long_total").unwrap_or(0),
            0,
            "seed {seed}: a shard lock was held past the watchdog threshold"
        );

        // (d) Terminal-counter conservation.
        let stats = report.stats;
        assert_eq!(
            stats.submitted,
            stats.admitted + stats.rejected + stats.aborted + stats.errored + stats.rerouted,
            "seed {seed}: counter conservation violated: {stats:?}"
        );

        // The run must actually have exercised the recovery machinery.
        assert!(
            report.link_failures + report.node_failures > 0,
            "seed {seed}: no failures fired"
        );
        assert!(report.admitted > 0, "seed {seed}: no traffic admitted");
        total_rerouted += stats.rerouted;
    }
    assert!(
        total_rerouted > 0,
        "across all seeds, at least one setup must crank back onto an alternate route"
    );
}
