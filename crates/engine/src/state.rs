//! The engine's exportable state: the data model behind snapshot and
//! warm restart.
//!
//! [`EngineState`] is a plain, lock-free value capturing everything an
//! [`AdmissionEngine`](crate::AdmissionEngine) needs to resume serving
//! the same guarantees after a process restart:
//!
//! * one [`SwitchState`] per switch shard — the admitted connection
//!   *legs* plus the table epoch. The `Sia`/`Sif`/`Soa`/`Sof` stream
//!   tables themselves are **not** stored: each leg's arrival stream is
//!   a pure function of its [`ConnectionRequest`] and the switch
//!   quantization grid, and the restore constructor rebuilds the table
//!   aggregates by the same multiplexing the release path already uses
//!   to prove rebuild-equality — so the restored tables are
//!   bit-identical to the originals while the snapshot stays exact
//!   (`(i128, i128)` rationals) and small;
//! * one [`ConnectionState`] per registry entry — the admitted shape
//!   (unicast route or multicast tree, as its link list), queueing
//!   points, priority, contracted delay bound, guaranteed delay and
//!   per-leaf guarantees (CDV accumulation results);
//! * the element-health overlay, drain flag, reroute budget, next
//!   connection id and outcome counters.
//!
//! The per-shard [`SofCache`](rtcac_cac::SofCache) is deliberately
//! absent: it is epoch-tagged memoization, and a cold cache recomputes
//! identical results. Its hit/miss counters are likewise excluded from
//! [`EngineState::counters`] (reported as zero) so that
//! `snapshot → restore → snapshot` is value-identical.

use rtcac_bitstream::Time;
use rtcac_cac::{ConnectionId, ConnectionRequest, Priority, SwitchConfig};
use rtcac_net::{LinkId, NodeId};
use rtcac_signaling::CdvPolicy;

use crate::EngineStats;

/// The full serializable state of one admission engine: a consistent
/// cut taken under every shard lock (ascending `NodeId` order) plus the
/// registry and health locks. See the module docs for what is stored
/// versus derived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineState {
    /// The CDV accumulation policy the state was admitted under. A
    /// restore into an engine with a different policy is refused — the
    /// guarantees would not mean the same thing.
    pub policy: CdvPolicy,
    /// Crankback budget (alternate routes per dead-route setup).
    pub reroute_budget: u64,
    /// The next connection id to allocate. Restored so post-restart
    /// setups continue the id sequence of the interrupted process.
    pub next_id: u64,
    /// Whether the engine was in drain mode at the cut.
    pub draining: bool,
    /// The element-health overlay at the cut.
    pub health: HealthOverlayState,
    /// One entry per switch shard, ascending by node id.
    pub switches: Vec<SwitchState>,
    /// One entry per established connection, ascending by id.
    pub connections: Vec<ConnectionState>,
    /// Outcome counters at the cut (`cache_hits`/`cache_misses` are
    /// reported as zero — see the module docs).
    pub counters: EngineStats,
}

/// One switch shard's restorable state: its configuration, table epoch
/// and admitted connection legs (the generating set of its stream
/// tables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchState {
    /// The switch node this shard manages.
    pub node: NodeId,
    /// The shard's priority configuration (advertised bounds and
    /// quantization grid).
    pub config: SwitchConfig,
    /// The table epoch at the cut, restored verbatim so epoch-derived
    /// invariants (monotonicity across a restart) keep holding.
    pub epoch: u64,
    /// Every admitted `(connection, leg)` pair, ascending by
    /// `(connection id, out-link)` — a multicast connection holds one
    /// leg per branch port.
    pub legs: Vec<(ConnectionId, ConnectionRequest)>,
}

/// One established connection's registry entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionState {
    /// The connection id.
    pub id: ConnectionId,
    /// Whether the shape is a point-to-multipoint tree (`true`) or a
    /// unicast route (`false`).
    pub multicast: bool,
    /// The links the shape occupies, in shape order — enough to rebuild
    /// the [`Route`](rtcac_net::Route) or
    /// [`MulticastTree`](rtcac_net::MulticastTree) against the target
    /// topology (which re-validates connectivity on restore).
    pub links: Vec<LinkId>,
    /// The queueing points `(switch, out-link)` the admission reserved,
    /// in reservation order.
    pub points: Vec<(NodeId, LinkId)>,
    /// The connection's priority level.
    pub priority: Priority,
    /// The contracted end-to-end delay bound.
    pub delay_bound: Time,
    /// The guaranteed end-to-end queueing delay handed out at setup.
    pub guaranteed_delay: Time,
    /// Guaranteed delay per terminal: one entry (the destination) for
    /// unicast, one per leaf for multicast.
    pub per_leaf: Vec<(NodeId, Time)>,
}

/// The element-health overlay at the cut.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthOverlayState {
    /// Links marked down, ascending.
    pub down_links: Vec<LinkId>,
    /// Nodes marked down, ascending.
    pub down_nodes: Vec<NodeId>,
    /// The health-change epoch at the cut.
    pub epoch: u64,
}

impl EngineState {
    /// Total admitted connection legs across all shards.
    pub fn total_legs(&self) -> usize {
        self.switches.iter().map(|s| s.legs.len()).sum()
    }
}
