//! The sharded admission engine and its two-phase setup protocol.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use rtcac_bitstream::Time;
use rtcac_cac::{AdmissionDecision, ConnectionId, ConnectionRequest, Priority, SwitchConfig};
use rtcac_net::{NodeId, Route, Topology};
use rtcac_obs::Registry;
use rtcac_signaling::{CdvPolicy, SetupRejection, SetupRequest, LOCAL_INJECTION};

use crate::metrics::EngineMetrics;
use crate::shard::{Shard, ShardState};
use crate::stats::Counters;
use crate::{EngineError, EngineStats};

/// The outcome of one engine setup: the concurrent analogue of
/// [`rtcac_signaling::SetupOutcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineOutcome {
    /// The connection is committed on every hop of its route.
    Admitted {
        /// The established connection's id.
        id: ConnectionId,
        /// Guaranteed end-to-end queueing delay: the sum of the
        /// advertised per-hop bounds (fixed regardless of load).
        guaranteed_delay: Time,
    },
    /// The setup was refused; any reserved hops were rolled back
    /// before any lock was dropped.
    Rejected {
        /// The id the setup would have used.
        id: ConnectionId,
        /// Why, and how many hops had to be rolled back.
        rejection: SetupRejection,
    },
}

impl EngineOutcome {
    /// Whether the setup was committed.
    pub fn is_admitted(&self) -> bool {
        matches!(self, EngineOutcome::Admitted { .. })
    }
}

/// Registry entry for an established connection.
#[derive(Debug, Clone)]
struct Established {
    nodes: Vec<NodeId>,
    guaranteed_delay: Time,
}

/// A concurrent, sharded connection admission engine.
///
/// Wraps one [`Switch`](rtcac_cac::Switch) per topology switch node in
/// a [`Shard`] (switch + [`SofCache`](rtcac_cac::SofCache) behind one
/// mutex) and serves setups with a deterministic **two-phase
/// protocol**:
///
/// 1. **Reserve** — the worker locks every shard on the route in
///    ascending [`NodeId`] order (a global lock order, so concurrent
///    setups cannot deadlock), then admits hop by hop in *route* order
///    with the CDV accumulated from the advertised upstream bounds —
///    exactly the request stream [`rtcac_signaling::Network::setup`]
///    would build.
/// 2. **Commit / abort** — if every hop admitted, the connection is
///    recorded and all locks released; if any hop refused, the already
///    reserved hops are rolled back *before* any lock is dropped, so
///    no other setup ever observes a half-reserved route.
///
/// Because each setup holds all its shard locks for the full
/// check-and-commit, the concurrent execution is serializable: the
/// committed state always equals *some* serial order of the same
/// setups through [`rtcac_signaling::Network`].
#[derive(Debug)]
pub struct AdmissionEngine {
    topology: Topology,
    policy: CdvPolicy,
    configs: BTreeMap<NodeId, SwitchConfig>,
    shards: BTreeMap<NodeId, Shard>,
    connections: Mutex<BTreeMap<ConnectionId, Established>>,
    next_id: AtomicU64,
    counters: Counters,
    metrics: EngineMetrics,
}

impl AdmissionEngine {
    /// Creates an engine giving every switch node of the topology the
    /// same configuration (the analogue of
    /// [`rtcac_signaling::Network::new`]). Metrics go to the installed
    /// [`rtcac_obs`] global registry, or nowhere (at near-zero cost)
    /// when none is installed; use
    /// [`AdmissionEngine::with_registry`] for an explicit registry.
    pub fn new(topology: Topology, config: SwitchConfig, policy: CdvPolicy) -> AdmissionEngine {
        let metrics = EngineMetrics::from_global(topology.switches().map(|n| n.id()));
        AdmissionEngine::build(topology, config, policy, metrics)
    }

    /// Creates an engine whose metrics land in `registry` regardless of
    /// the global default — the form tests and benches use to observe
    /// in isolation.
    pub fn with_registry(
        topology: Topology,
        config: SwitchConfig,
        policy: CdvPolicy,
        registry: Arc<Registry>,
    ) -> AdmissionEngine {
        let metrics = EngineMetrics::from_registry(registry, topology.switches().map(|n| n.id()));
        AdmissionEngine::build(topology, config, policy, metrics)
    }

    fn build(
        topology: Topology,
        config: SwitchConfig,
        policy: CdvPolicy,
        metrics: EngineMetrics,
    ) -> AdmissionEngine {
        let configs: BTreeMap<NodeId, SwitchConfig> = topology
            .switches()
            .map(|n| (n.id(), config.clone()))
            .collect();
        let shards = configs
            .iter()
            .map(|(&node, cfg)| (node, Shard::new(cfg.clone())))
            .collect();
        AdmissionEngine {
            topology,
            policy,
            configs,
            shards,
            connections: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            counters: Counters::default(),
            metrics,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The CDV accumulation policy in force.
    pub fn policy(&self) -> CdvPolicy {
        self.policy
    }

    /// Replaces the configuration of one switch shard (exclusive
    /// access, so no setups can be in flight). The shard must hold no
    /// established connections.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoSwitchAt`] if the node is not a managed
    /// switch, or [`EngineError::Cac`] if connections are established.
    pub fn configure_switch(
        &mut self,
        node: NodeId,
        config: SwitchConfig,
    ) -> Result<(), EngineError> {
        let shard = self
            .shards
            .get_mut(&node)
            .ok_or(EngineError::NoSwitchAt(node))?;
        if shard.lock().switch.connection_count() != 0 {
            return Err(EngineError::Cac(rtcac_cac::CacError::BadConfig(
                "cannot reconfigure a shard with established connections",
            )));
        }
        *shard = Shard::new(config.clone());
        self.configs.insert(node, config);
        Ok(())
    }

    /// Allocates a fresh connection id (thread-safe, strictly
    /// increasing).
    pub fn allocate_id(&self) -> ConnectionId {
        ConnectionId::new(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Number of established connections.
    pub fn connection_count(&self) -> usize {
        self.lock_registry().len()
    }

    /// The guaranteed end-to-end delay of an established connection.
    pub fn guaranteed_delay(&self, id: ConnectionId) -> Option<Time> {
        self.lock_registry().get(&id).map(|e| e.guaranteed_delay)
    }

    /// Number of established connection legs at one switch shard.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoSwitchAt`] for non-switch nodes.
    pub fn shard_connection_count(&self, node: NodeId) -> Result<usize, EngineError> {
        Ok(self.shard(node)?.lock().switch.connection_count())
    }

    /// The table epoch of one switch shard (see
    /// [`rtcac_cac::Switch::epoch`]).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoSwitchAt`] for non-switch nodes.
    pub fn shard_epoch(&self, node: NodeId) -> Result<u64, EngineError> {
        Ok(self.shard(node)?.lock().switch.epoch())
    }

    /// The memoized computed delay bound at one shard port — the
    /// Algorithm 4.1 result for the committed state, served from the
    /// shard's [`SofCache`](rtcac_cac::SofCache) when the epoch matches.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoSwitchAt`] for non-switch nodes, plus
    /// the conditions of [`rtcac_cac::Switch::computed_bound`].
    pub fn computed_bound(
        &self,
        node: NodeId,
        out_link: rtcac_net::LinkId,
        priority: Priority,
    ) -> Result<Time, EngineError> {
        let mut state = self.shard(node)?.lock();
        let before = (state.cache.hits(), state.cache.misses());
        let ShardState { switch, cache } = &mut *state;
        let result = switch
            .computed_bound_cached(out_link, priority, cache)
            .map_err(EngineError::from);
        if self.metrics.live {
            self.metrics.cache_hits.add(state.cache.hits() - before.0);
            self.metrics
                .cache_misses
                .add(state.cache.misses() - before.1);
        }
        result
    }

    /// Attempts to establish a connection along `route`, allocating a
    /// fresh id. See [`AdmissionEngine::admit_with_id`].
    ///
    /// # Errors
    ///
    /// As [`AdmissionEngine::admit_with_id`].
    pub fn admit(
        &self,
        route: &Route,
        request: SetupRequest,
    ) -> Result<EngineOutcome, EngineError> {
        self.admit_with_id(self.allocate_id(), route, request)
    }

    /// Attempts to establish a connection along `route` under an
    /// explicit id, using the two-phase reserve/commit protocol.
    ///
    /// # Errors
    ///
    /// Returns an error only for API misuse (invalid route, unmanaged
    /// node, unknown priority, duplicate id); a connection that simply
    /// does not fit yields [`EngineOutcome::Rejected`].
    pub fn admit_with_id(
        &self,
        id: ConnectionId,
        route: &Route,
        request: SetupRequest,
    ) -> Result<EngineOutcome, EngineError> {
        Counters::bump(&self.counters.submitted);
        self.metrics.submitted.inc();
        let result = self.admit_inner(id, route, request);
        if result.is_err() {
            Counters::bump(&self.counters.errored);
            self.metrics.errored.inc();
        }
        result
    }

    fn admit_inner(
        &self,
        id: ConnectionId,
        route: &Route,
        request: SetupRequest,
    ) -> Result<EngineOutcome, EngineError> {
        let points = route.queueing_points(&self.topology)?;

        // QoS feasibility gate and per-hop CDV — computed lock-free
        // from the static per-node configurations: the advertised
        // bounds never change while setups are in flight.
        let mut per_hop = Vec::with_capacity(points.len());
        for &(node, _) in &points {
            let config = self
                .configs
                .get(&node)
                .ok_or(EngineError::NoSwitchAt(node))?;
            per_hop.push(config.bound(request.priority())?);
        }
        let achievable: Time = per_hop.iter().copied().sum();
        if request.delay_bound() < achievable {
            Counters::bump(&self.counters.rejected);
            self.metrics.rejected.inc();
            self.metrics.reject_qos.inc();
            return Ok(EngineOutcome::Rejected {
                id,
                rejection: SetupRejection::QosUnsatisfiable {
                    requested: request.delay_bound(),
                    achievable,
                },
            });
        }

        let mut hop_requests = Vec::with_capacity(points.len());
        let mut upstream: Vec<Time> = Vec::with_capacity(points.len());
        for (hop, &(node, out_link)) in points.iter().enumerate() {
            let cdv = self.policy.accumulate(&upstream)?;
            let in_link = route
                .incoming_link(&self.topology, node)?
                .unwrap_or(LOCAL_INJECTION);
            hop_requests.push((
                node,
                ConnectionRequest::new(
                    request.contract(),
                    cdv,
                    in_link,
                    out_link,
                    request.priority(),
                ),
            ));
            upstream.push(per_hop[hop]);
        }

        if self.lock_registry().contains_key(&id) {
            return Err(EngineError::DuplicateConnection(id));
        }

        // Phase 1 (reserve): take every shard lock on the route in
        // ascending NodeId order — the global order that makes
        // concurrent setups deadlock-free — then admit hop by hop in
        // route order under the precomputed CDV.
        let reserve_start = self.metrics.start();
        let mut guards = self.lock_route_shards(points.iter().map(|&(n, _)| n))?;
        let cache_before = self.metrics.live.then(|| Self::cache_totals(&guards));
        let mut reserved: Vec<NodeId> = Vec::new();
        for &(node, conn_request) in &hop_requests {
            let state = guards.get_mut(&node).expect("route shard locked");
            let ShardState { switch, cache } = &mut **state;
            match switch.admit_cached(id, conn_request, cache)? {
                AdmissionDecision::Admitted(_) => reserved.push(node),
                AdmissionDecision::Rejected(reason) => {
                    self.metrics
                        .record_since(reserve_start, &self.metrics.reserve_ns);
                    // Phase 2 (abort): roll back every reserved hop
                    // before any lock is dropped.
                    let rollback_start = self.metrics.start();
                    let hops_rolled_back = reserved.len();
                    let mut rolled: Vec<NodeId> = Vec::new();
                    for &up in reserved.iter().rev() {
                        if rolled.contains(&up) {
                            continue; // multi-leg: one release frees all
                        }
                        guards
                            .get_mut(&up)
                            .expect("reserved shard locked")
                            .switch
                            .release(id)?;
                        rolled.push(up);
                    }
                    self.record_cache_deltas(cache_before, &guards);
                    if hops_rolled_back > 0 {
                        Counters::bump(&self.counters.aborted);
                        self.metrics.aborted.inc();
                        self.metrics
                            .record_since(rollback_start, &self.metrics.rollback_ns);
                        self.metrics.record_abort_event(format!(
                            "conn {id} refused at node {node}: rolled back {hops_rolled_back} hop(s)"
                        ));
                    } else {
                        Counters::bump(&self.counters.rejected);
                        self.metrics.rejected.inc();
                    }
                    self.metrics.reject_switch.inc();
                    return Ok(EngineOutcome::Rejected {
                        id,
                        rejection: SetupRejection::Switch {
                            at: node,
                            reason,
                            hops_rolled_back,
                        },
                    });
                }
            }
        }
        self.metrics
            .record_since(reserve_start, &self.metrics.reserve_ns);
        self.record_cache_deltas(cache_before, &guards);

        // Phase 2 (commit): record the connection while the shard locks
        // are still held, so a concurrent release cannot interleave.
        let commit_start = self.metrics.start();
        self.lock_registry().insert(
            id,
            Established {
                nodes: points.iter().map(|&(n, _)| n).collect(),
                guaranteed_delay: achievable,
            },
        );
        Counters::bump(&self.counters.admitted);
        self.metrics.admitted.inc();
        self.metrics
            .record_since(commit_start, &self.metrics.commit_ns);
        Ok(EngineOutcome::Admitted {
            id,
            guaranteed_delay: achievable,
        })
    }

    /// Summed (hits, misses) across a set of locked shards.
    fn cache_totals(guards: &BTreeMap<NodeId, MutexGuard<'_, ShardState>>) -> (u64, u64) {
        guards.values().fold((0, 0), |(h, m), state| {
            (h + state.cache.hits(), m + state.cache.misses())
        })
    }

    /// Adds the hit/miss growth since `before` to the obs counters.
    fn record_cache_deltas(
        &self,
        before: Option<(u64, u64)>,
        guards: &BTreeMap<NodeId, MutexGuard<'_, ShardState>>,
    ) {
        if let Some((h0, m0)) = before {
            let (h1, m1) = Self::cache_totals(guards);
            self.metrics.cache_hits.add(h1 - h0);
            self.metrics.cache_misses.add(m1 - m0);
        }
    }

    /// Tears down an established connection, releasing every shard
    /// reservation on its route.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownConnection`] if the id is not
    /// established.
    pub fn release(&self, id: ConnectionId) -> Result<(), EngineError> {
        let entry = self
            .lock_registry()
            .remove(&id)
            .ok_or(EngineError::UnknownConnection(id))?;
        let mut guards = self.lock_route_shards(entry.nodes.iter().copied())?;
        for (_, state) in guards.iter_mut() {
            state.switch.release(id)?;
        }
        Counters::bump(&self.counters.released);
        self.metrics.released.inc();
        Ok(())
    }

    /// A consistent snapshot of the engine counters plus the summed
    /// per-shard cache statistics.
    pub fn stats(&self) -> EngineStats {
        let (mut hits, mut misses) = (0, 0);
        for shard in self.shards.values() {
            let state = shard.lock();
            hits += state.cache.hits();
            misses += state.cache.misses();
        }
        EngineStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            admitted: self.counters.admitted.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            aborted: self.counters.aborted.load(Ordering::Relaxed),
            errored: self.counters.errored.load(Ordering::Relaxed),
            released: self.counters.released.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
        }
    }

    fn shard(&self, node: NodeId) -> Result<&Shard, EngineError> {
        self.shards.get(&node).ok_or(EngineError::NoSwitchAt(node))
    }

    /// Locks the shards of the given route nodes in ascending `NodeId`
    /// order (duplicates collapse), returning the guards keyed by node.
    /// With live metrics, the wait for each shard lock is recorded in
    /// that shard's `engine_shard_lock_wait_ns` histogram.
    fn lock_route_shards(
        &self,
        nodes: impl Iterator<Item = NodeId>,
    ) -> Result<BTreeMap<NodeId, MutexGuard<'_, ShardState>>, EngineError> {
        let unique: std::collections::BTreeSet<NodeId> = nodes.collect();
        let mut guards = BTreeMap::new();
        for node in unique {
            let shard = self.shard(node)?;
            let wait_start = self.metrics.start();
            let guard = shard.lock();
            if let (Some(start), Some(histogram)) =
                (wait_start, self.metrics.lock_wait_ns.get(&node))
            {
                histogram.record_duration(start.elapsed());
            }
            guards.insert(node, guard);
        }
        Ok(guards)
    }

    /// Poisons one shard's mutex by panicking a thread that holds it —
    /// test-only, to exercise worker-panic reporting in the pool.
    #[cfg(test)]
    pub(crate) fn poison_shard(&self, node: NodeId) {
        let shard = self.shard(node).expect("poison target is a switch shard");
        std::thread::scope(|s| {
            let poisoner = s.spawn(|| {
                let _guard = shard.lock();
                panic!("poisoning shard for a pool panic test");
            });
            assert!(poisoner.join().is_err());
        });
    }

    fn lock_registry(&self) -> MutexGuard<'_, BTreeMap<ConnectionId, Established>> {
        self.connections.lock().expect("registry mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_bitstream::{CbrParams, Rate, TrafficContract};
    use rtcac_net::builders;
    use rtcac_rational::ratio;
    use rtcac_signaling::{Network, SetupOutcome};

    fn cbr(num: i128, den: i128) -> TrafficContract {
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(num, den))).unwrap())
    }

    fn line_engine(switches: usize, bound: i128) -> (AdmissionEngine, Route) {
        let (topology, src, sw, dst) = builders::line(switches).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(bound)).unwrap();
        let route = Route::from_nodes(
            &topology,
            std::iter::once(src)
                .chain(sw.iter().copied())
                .chain(std::iter::once(dst)),
        )
        .unwrap();
        (
            AdmissionEngine::new(topology, config, CdvPolicy::Hard),
            route,
        )
    }

    #[test]
    fn admit_and_release_roundtrip() {
        let (engine, route) = line_engine(3, 32);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(200));
        let id = match engine.admit(&route, req).unwrap() {
            EngineOutcome::Admitted {
                id,
                guaranteed_delay,
            } => {
                assert_eq!(guaranteed_delay, Time::from_integer(96));
                id
            }
            other => panic!("expected admission, got {other:?}"),
        };
        assert_eq!(engine.connection_count(), 1);
        assert_eq!(engine.guaranteed_delay(id), Some(Time::from_integer(96)));
        for (node, _) in route.queueing_points(engine.topology()).unwrap() {
            assert_eq!(engine.shard_connection_count(node).unwrap(), 1);
        }
        engine.release(id).unwrap();
        assert_eq!(engine.connection_count(), 0);
        for (node, _) in route.queueing_points(engine.topology()).unwrap() {
            assert_eq!(engine.shard_connection_count(node).unwrap(), 0);
        }
        let stats = engine.stats();
        assert_eq!((stats.admitted, stats.released), (1, 1));
    }

    #[test]
    fn qos_gate_rejects_impossible_bounds() {
        let (engine, route) = line_engine(3, 32);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(50));
        match engine.admit(&route, req).unwrap() {
            EngineOutcome::Rejected {
                rejection:
                    SetupRejection::QosUnsatisfiable {
                        requested,
                        achievable,
                    },
                ..
            } => {
                assert_eq!(requested, Time::from_integer(50));
                assert_eq!(achievable, Time::from_integer(96));
            }
            other => panic!("expected qos rejection, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!((stats.rejected, stats.aborted), (1, 0));
    }

    #[test]
    fn mid_route_rejection_rolls_back_and_counts_abort() {
        // Pre-load the destination switch's terminal downlink with
        // local traffic, then push a two-hop setup into it: hop 1 (the
        // source ring node, whose links are free) reserves, hop 2
        // refuses on the saturated downlink, and the reservation must
        // be rolled back and counted as an abort — disjoint from plain
        // rejections.
        let sr = builders::star_ring(4, 2).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
        let engine = AdmissionEngine::new(sr.topology().clone(), config, CdvPolicy::Hard);
        for _ in 0..2 {
            let local = sr.terminal_route((1, 1), (1, 0)).unwrap();
            let req = SetupRequest::new(cbr(2, 5), Priority::HIGHEST, Time::from_integer(500));
            assert!(engine.admit(&local, req).unwrap().is_admitted());
        }
        let cross = sr.terminal_route((0, 0), (1, 0)).unwrap();
        let req = SetupRequest::new(cbr(2, 5), Priority::HIGHEST, Time::from_integer(500));
        match engine.admit(&cross, req).unwrap() {
            EngineOutcome::Rejected {
                rejection:
                    SetupRejection::Switch {
                        at,
                        hops_rolled_back,
                        ..
                    },
                ..
            } => {
                assert_eq!(at, sr.ring_nodes()[1]);
                assert_eq!(hops_rolled_back, 1, "hop 1 was reserved and rolled back");
            }
            other => panic!("expected a mid-route switch rejection, got {other:?}"),
        }
        // Every shard holds exactly the committed connections — no
        // half-reserved leftovers on the rolled-back ring node.
        for (node, _) in cross.queueing_points(engine.topology()).unwrap() {
            let expected = usize::from(node == sr.ring_nodes()[1]) * 2;
            assert_eq!(engine.shard_connection_count(node).unwrap(), expected);
        }
        let stats = engine.stats();
        assert_eq!((stats.admitted, stats.aborted, stats.rejected), (2, 1, 0));
        assert_eq!(
            stats.admitted + stats.rejected + stats.aborted,
            stats.submitted,
            "every submitted setup must land in exactly one outcome"
        );
    }

    #[test]
    fn explicit_registry_records_phase_timings_and_cache_traffic() {
        let (topology, src, sw, dst) = builders::line(3).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(32)).unwrap();
        let route = Route::from_nodes(
            &topology,
            std::iter::once(src)
                .chain(sw.iter().copied())
                .chain(std::iter::once(dst)),
        )
        .unwrap();
        let registry = std::sync::Arc::new(rtcac_obs::Registry::new());
        let engine = AdmissionEngine::with_registry(
            topology,
            config,
            CdvPolicy::Hard,
            std::sync::Arc::clone(&registry),
        );
        for _ in 0..4 {
            let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(200));
            engine.admit(&route, req).unwrap();
        }
        let snap = registry.snapshot();
        let submitted = snap.counter("engine_setups_submitted_total").unwrap();
        assert_eq!(submitted, 4);
        assert_eq!(
            submitted,
            snap.counter("engine_setups_admitted_total").unwrap_or(0)
                + snap.counter("engine_setups_rejected_total").unwrap_or(0)
                + snap.counter("engine_setups_aborted_total").unwrap_or(0)
        );
        let reserve = snap.histogram("engine_reserve_ns").unwrap();
        assert_eq!(reserve.count, 4);
        assert!(reserve.max > 0, "reserving must take measurable time");
        let admitted = snap.counter("engine_setups_admitted_total").unwrap();
        assert_eq!(snap.histogram("engine_commit_ns").unwrap().count, admitted);
        // Every shard on the route was locked once per setup.
        let lock_waits: u64 = snap
            .histograms_named("engine_shard_lock_wait_ns")
            .map(|(_, h)| h.count)
            .sum();
        assert_eq!(lock_waits, 4 * 3);
        // The shard caches were exercised, and the obs deltas agree
        // with the engine's own totals.
        let stats = engine.stats();
        assert_eq!(
            snap.counter("engine_sof_cache_hits_total").unwrap_or(0),
            stats.cache_hits
        );
        assert_eq!(
            snap.counter("engine_sof_cache_misses_total").unwrap_or(0),
            stats.cache_misses
        );
        assert!(stats.cache_hits + stats.cache_misses > 0);
    }

    #[test]
    fn serial_parity_with_signaling_network() {
        let (topology, src, sw, dst) = builders::line(3).unwrap();
        let config = SwitchConfig::uniform(2, Time::from_integer(64)).unwrap();
        let route = Route::from_nodes(
            &topology,
            std::iter::once(src)
                .chain(sw.iter().copied())
                .chain(std::iter::once(dst)),
        )
        .unwrap();
        let engine = AdmissionEngine::new(topology.clone(), config.clone(), CdvPolicy::SoftSqrt);
        let mut net = Network::new(topology, config, CdvPolicy::SoftSqrt);
        // Drive identical request sequences through both; the outcomes
        // must agree pairwise.
        for k in 1..=8 {
            let req = SetupRequest::new(
                cbr(1, 4 + i128::from(k % 3)),
                Priority::new(u8::from(k % 2 == 0)),
                Time::from_integer(500),
            );
            let via_engine = engine.admit(&route, req).unwrap();
            let via_net = net.setup(&route, req).unwrap();
            match (&via_engine, &via_net) {
                (EngineOutcome::Admitted { .. }, SetupOutcome::Connected(_)) => {}
                (EngineOutcome::Rejected { rejection: a, .. }, SetupOutcome::Rejected(b)) => {
                    assert_eq!(a, b)
                }
                (a, b) => panic!("engine said {a:?}, network said {b:?}"),
            }
        }
        assert_eq!(engine.connection_count(), net.connections().count());
    }

    #[test]
    fn duplicate_id_is_an_error() {
        let (engine, route) = line_engine(1, 64);
        let req = SetupRequest::new(cbr(1, 16), Priority::HIGHEST, Time::from_integer(500));
        let id = engine.allocate_id();
        assert!(engine.admit_with_id(id, &route, req).unwrap().is_admitted());
        assert_eq!(
            engine.admit_with_id(id, &route, req),
            Err(EngineError::DuplicateConnection(id))
        );
        assert_eq!(
            engine.release(ConnectionId::new(999)),
            Err(EngineError::UnknownConnection(ConnectionId::new(999)))
        );
    }

    #[test]
    fn unchanged_tables_serve_cached_bounds() {
        let (engine, route) = line_engine(2, 256);
        let req = SetupRequest::new(cbr(1, 64), Priority::HIGHEST, Time::from_integer(2_000));
        assert!(engine.admit(&route, req).unwrap().is_admitted());
        // Same epoch, same key: the second lookup must be a hit.
        let (node, out_link) = route.queueing_points(engine.topology()).unwrap()[0];
        let first = engine
            .computed_bound(node, out_link, Priority::HIGHEST)
            .unwrap();
        let hits_before = engine.stats().cache_hits;
        let second = engine
            .computed_bound(node, out_link, Priority::HIGHEST)
            .unwrap();
        assert_eq!(first, second);
        assert!(
            engine.stats().cache_hits > hits_before,
            "repeat lookup at an unchanged epoch must hit: {:?}",
            engine.stats()
        );
    }

    #[test]
    fn epoch_advances_on_commit_and_release() {
        let (engine, route) = line_engine(1, 64);
        let node = route.queueing_points(engine.topology()).unwrap()[0].0;
        let before = engine.shard_epoch(node).unwrap();
        let req = SetupRequest::new(cbr(1, 16), Priority::HIGHEST, Time::from_integer(500));
        let id = match engine.admit(&route, req).unwrap() {
            EngineOutcome::Admitted { id, .. } => id,
            other => panic!("expected admission, got {other:?}"),
        };
        let mid = engine.shard_epoch(node).unwrap();
        assert!(mid > before);
        engine.release(id).unwrap();
        assert!(engine.shard_epoch(node).unwrap() > mid);
    }
}
