//! The sharded admission engine and its two-phase setup protocol.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use rtcac_bitstream::Time;
use rtcac_cac::{
    AdmissionDecision, AdmissionReport, AdmissionVerdict, ConnectionId, ConnectionRequest,
    HopDriver, HopVerdict, PlannedHop, Priority, ReservationPlan, ReserveOutcome, RoutePlan,
    SofCache, Switch, SwitchConfig,
};
use rtcac_net::{LinkId, MulticastTree, NodeId, Route, Topology};
use rtcac_obs::{Registry, TraceCtx, Tracer};
use rtcac_signaling::{CdvPolicy, SetupRejection, SetupRequest};

use crate::metrics::EngineMetrics;
use crate::shard::{Shard, ShardState};
use crate::state::{ConnectionState, EngineState, HealthOverlayState, SwitchState};
use crate::stats::Counters;
use crate::{EngineError, EngineStats};

/// The outcome of one engine setup: the concurrent analogue of
/// [`rtcac_signaling::SetupOutcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineOutcome {
    /// The connection is committed on every hop of its route.
    Admitted {
        /// The established connection's id.
        id: ConnectionId,
        /// Guaranteed end-to-end queueing delay: the sum of the
        /// advertised per-hop bounds (fixed regardless of load).
        guaranteed_delay: Time,
    },
    /// The setup was refused; any reserved hops were rolled back
    /// before any lock was dropped.
    Rejected {
        /// The id the setup would have used.
        id: ConnectionId,
        /// Why, and how many hops had to be rolled back.
        rejection: SetupRejection,
    },
    /// The submitted route was (or went) dead, and the connection was
    /// committed on an alternate route instead — the engine's crankback.
    Rerouted {
        /// The established connection's id.
        id: ConnectionId,
        /// Guaranteed end-to-end queueing delay on the alternate route.
        guaranteed_delay: Time,
        /// The route the connection actually follows.
        route: Route,
        /// How many alternate routes were tried before this one stuck.
        attempts: usize,
    },
}

impl EngineOutcome {
    /// Whether the setup was committed on its *submitted* route.
    pub fn is_admitted(&self) -> bool {
        matches!(self, EngineOutcome::Admitted { .. })
    }

    /// Whether the connection is established — on the submitted route
    /// or a crankback alternate.
    pub fn is_established(&self) -> bool {
        matches!(
            self,
            EngineOutcome::Admitted { .. } | EngineOutcome::Rerouted { .. }
        )
    }
}

/// Default lock-health watchdog threshold: a single setup's full-route
/// shard-lock hold is normally microseconds, so a 100 ms hold signals
/// pathology (a stuck commit, runaway pricing under the locks) rather
/// than load. Override per engine with
/// [`AdmissionEngine::set_lock_hold_threshold_ns`].
pub const DEFAULT_LOCK_HOLD_THRESHOLD_NS: u64 = 100_000_000;

/// Registry entry for an established connection (unicast or tree).
#[derive(Debug, Clone)]
struct Established {
    shape: EstablishedShape,
    points: Vec<(NodeId, LinkId)>,
    priority: Priority,
    delay_bound: Time,
    guaranteed_delay: Time,
    /// Guaranteed end-to-end delay per terminal: one entry (the
    /// destination) for unicast, one per leaf for multicast.
    per_leaf: Vec<(NodeId, Time)>,
}

/// The transport an established connection runs over.
#[derive(Debug, Clone)]
enum EstablishedShape {
    Unicast(Route),
    Multicast(MulticastTree),
}

impl EstablishedShape {
    /// The links the connection occupies.
    fn links(&self) -> &[LinkId] {
        match self {
            EstablishedShape::Unicast(route) => route.links(),
            EstablishedShape::Multicast(tree) => tree.links(),
        }
    }
}

/// Engine-side element health: the pristine [`Topology`] stays the
/// immutable route graph, and failures live in this interior-mutable
/// overlay so `&self` admission paths can observe them. The epoch
/// counts health *changes*; a reserve phase records it before touching
/// shards and re-validates under the registry lock before commit, which
/// is what makes a failure between reserve and commit detectable.
#[derive(Debug, Default)]
struct HealthState {
    down_links: BTreeSet<LinkId>,
    down_nodes: BTreeSet<NodeId>,
    epoch: u64,
}

impl HealthState {
    fn all_up(&self) -> bool {
        self.down_links.is_empty() && self.down_nodes.is_empty()
    }
}

/// What an engine [`fail_link`](AdmissionEngine::fail_link) /
/// [`fail_node`](AdmissionEngine::fail_node) call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureImpact {
    changed: bool,
    torn_down: Vec<ConnectionId>,
}

impl FailureImpact {
    fn unchanged() -> FailureImpact {
        FailureImpact {
            changed: false,
            torn_down: Vec::new(),
        }
    }

    /// Whether the element actually changed health.
    pub fn is_changed(&self) -> bool {
        self.changed
    }

    /// The connections force-released because their route crossed the
    /// failed element.
    pub fn torn_down(&self) -> &[ConnectionId] {
        &self.torn_down
    }
}

/// One violated guarantee found by
/// [`AdmissionEngine::verify_guarantees`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuaranteeViolation {
    /// The connection whose guarantee no longer holds.
    pub id: ConnectionId,
    /// The switch where the recomputed bound exceeds the advertised
    /// one, or `None` when the end-to-end sum exceeds the contracted
    /// delay bound.
    pub at: Option<NodeId>,
    /// The recomputed worst-case delay.
    pub computed: Time,
    /// The limit it must stay within.
    pub limit: Time,
}

/// Internal result of one admission attempt on one concrete route.
enum AttemptResult {
    Committed { guaranteed_delay: Time },
    Refused { rejection: SetupRejection },
    RouteDead { link: LinkId },
}

/// A concurrent, sharded connection admission engine.
///
/// Wraps one [`Switch`](rtcac_cac::Switch) per topology switch node in
/// a [`Shard`] (switch + [`SofCache`](rtcac_cac::SofCache) behind one
/// mutex) and serves setups with a deterministic **two-phase
/// protocol**:
///
/// 1. **Reserve** — the worker locks every shard on the route in
///    ascending [`NodeId`] order (a global lock order, so concurrent
///    setups cannot deadlock), then admits hop by hop in *route* order
///    with the CDV accumulated from the advertised upstream bounds —
///    exactly the request stream [`rtcac_signaling::Network::setup`]
///    would build.
/// 2. **Commit / abort** — if every hop admitted, the connection is
///    recorded and all locks released; if any hop refused, the already
///    reserved hops are rolled back *before* any lock is dropped, so
///    no other setup ever observes a half-reserved route.
///
/// Because each setup holds all its shard locks for the full
/// check-and-commit, the concurrent execution is serializable: the
/// committed state always equals *some* serial order of the same
/// setups through [`rtcac_signaling::Network`].
/// The anomaly-hook signature: `(reason, detail)`. See
/// [`AdmissionEngine::set_anomaly_hook`].
pub type AnomalyHook = std::sync::Arc<dyn Fn(&'static str, String) + Send + Sync>;

/// Mutex-guarded hook slot with an opaque `Debug` (closures have
/// none).
#[derive(Default)]
struct AnomalyHookCell(Mutex<Option<AnomalyHook>>);

impl std::fmt::Debug for AnomalyHookCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let installed = self.0.lock().map(|hook| hook.is_some()).unwrap_or_default();
        f.debug_tuple("AnomalyHookCell").field(&installed).finish()
    }
}

#[derive(Debug)]
pub struct AdmissionEngine {
    topology: Topology,
    policy: CdvPolicy,
    configs: BTreeMap<NodeId, SwitchConfig>,
    shards: BTreeMap<NodeId, Shard>,
    connections: Mutex<BTreeMap<ConnectionId, Established>>,
    health: Mutex<HealthState>,
    draining: AtomicBool,
    reroute_budget: AtomicU64,
    next_id: AtomicU64,
    counters: Counters,
    metrics: EngineMetrics,
    tracer: Tracer,
    capture_reports: AtomicBool,
    reports: Mutex<BTreeMap<ConnectionId, AdmissionReport>>,
    /// Per-link CDV inflation applied at pricing time (impairment
    /// overlay): a degraded link adds jitter to every plan crossing it.
    /// Not part of the exported snapshot state — impairments are an
    /// environment property, re-applied by whoever drives them.
    cdv_inflation: Mutex<BTreeMap<LinkId, Time>>,
    /// Lock-health watchdog threshold in nanoseconds: shard-lock holds
    /// longer than this bump `engine_lock_hold_long_total`.
    lock_hold_threshold_ns: AtomicU64,
    /// Anomaly hook (flight recorder): called with `(reason, detail)`
    /// on watchdog/audit findings. Behind a mutex consulted only on
    /// those rare paths — never on the admission hot path.
    anomaly_hook: AnomalyHookCell,
    /// Test-only trap: a link to mark down after the reserve phase of
    /// the next setup, before the commit-time health re-check — lets
    /// tests inject a failure into the reserve→commit window
    /// deterministically.
    #[cfg(test)]
    pub(crate) test_fail_after_reserve: Mutex<Option<LinkId>>,
}

impl AdmissionEngine {
    /// Creates an engine giving every switch node of the topology the
    /// same configuration (the analogue of
    /// [`rtcac_signaling::Network::new`]). Metrics go to the installed
    /// [`rtcac_obs`] global registry, or nowhere (at near-zero cost)
    /// when none is installed; use
    /// [`AdmissionEngine::with_registry`] for an explicit registry.
    pub fn new(topology: Topology, config: SwitchConfig, policy: CdvPolicy) -> AdmissionEngine {
        let metrics = EngineMetrics::from_global(topology.switches().map(|n| n.id()));
        AdmissionEngine::build(topology, config, policy, metrics)
    }

    /// Creates an engine whose metrics land in `registry` regardless of
    /// the global default — the form tests and benches use to observe
    /// in isolation.
    pub fn with_registry(
        topology: Topology,
        config: SwitchConfig,
        policy: CdvPolicy,
        registry: Arc<Registry>,
    ) -> AdmissionEngine {
        let metrics = EngineMetrics::from_registry(registry, topology.switches().map(|n| n.id()));
        AdmissionEngine::build(topology, config, policy, metrics)
    }

    fn build(
        topology: Topology,
        config: SwitchConfig,
        policy: CdvPolicy,
        metrics: EngineMetrics,
    ) -> AdmissionEngine {
        let configs: BTreeMap<NodeId, SwitchConfig> = topology
            .switches()
            .map(|n| (n.id(), config.clone()))
            .collect();
        let shards = configs
            .iter()
            .map(|(&node, cfg)| (node, Shard::new(cfg.clone())))
            .collect();
        AdmissionEngine {
            topology,
            policy,
            configs,
            shards,
            connections: Mutex::new(BTreeMap::new()),
            health: Mutex::new(HealthState::default()),
            draining: AtomicBool::new(false),
            reroute_budget: AtomicU64::new(2),
            next_id: AtomicU64::new(1),
            counters: Counters::default(),
            metrics,
            tracer: Tracer::noop(),
            capture_reports: AtomicBool::new(false),
            reports: Mutex::new(BTreeMap::new()),
            cdv_inflation: Mutex::new(BTreeMap::new()),
            lock_hold_threshold_ns: AtomicU64::new(DEFAULT_LOCK_HOLD_THRESHOLD_NS),
            anomaly_hook: AnomalyHookCell::default(),
            #[cfg(test)]
            test_fail_after_reserve: Mutex::new(None),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Installs a [`Tracer`]: subsequent setups emit causal spans
    /// (queue wait, attempts, price/reserve/commit, per-hop events)
    /// into its ring. The default noop tracer costs one branch per
    /// instrumentation site. Exclusive access, so no setups are in
    /// flight while the subscriber changes.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer (noop unless
    /// [`AdmissionEngine::set_tracer`] ran).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Turns decision-provenance capture on or off. While on, every
    /// setup that reaches pricing stores its [`AdmissionReport`]
    /// keyed by connection id (rejections included; a crankback's
    /// final attempt wins). Off by default — under sustained load the
    /// map would grow without bound.
    pub fn set_capture_reports(&self, capture: bool) {
        self.capture_reports.store(capture, Ordering::Relaxed);
    }

    /// The captured decision provenance of a setup, when
    /// [`AdmissionEngine::set_capture_reports`] was on while it ran.
    pub fn admission_report(&self, id: ConnectionId) -> Option<AdmissionReport> {
        let reports = match self.reports.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        reports.get(&id).cloned()
    }

    /// Opens an admission trace tagged with the connection id and the
    /// current fault epoch (free on a noop tracer). The pool calls
    /// this at submission so the trace also covers the queue wait.
    /// Unsampled contexts skip the tags — a rejection re-attaches them
    /// in [`publish_report`](Self::publish_report) — so the sampled-out
    /// hot path never formats strings or touches the health lock.
    pub fn start_trace(&self, name: &'static str, id: ConnectionId) -> TraceCtx {
        let mut ctx = self.tracer.start(name);
        if ctx.is_sampled() {
            ctx.attr("conn", id.to_string());
            ctx.attr("fault_epoch", self.health_epoch().to_string());
        }
        ctx
    }

    /// Whether an outcome should force its trace into the ring (the
    /// always-sample-on-reject rule).
    pub fn outcome_rejects(outcome: &Result<EngineOutcome, EngineError>) -> bool {
        !matches!(
            outcome,
            Ok(EngineOutcome::Admitted { .. } | EngineOutcome::Rerouted { .. })
        )
    }

    /// Publishes a finished attempt's provenance: rejection summaries
    /// go to the trace as `reject.provenance` events, and the full
    /// report is stored when capture is on.
    fn publish_report(&self, id: ConnectionId, report: AdmissionReport, ctx: &mut TraceCtx) {
        if ctx.can_flush() && !report.is_admitted() {
            if !ctx.is_sampled() {
                // The trace skipped its tags at start (sampled-out hot
                // path) but the rejection is about to force a flush.
                ctx.attr("conn", id.to_string());
                ctx.attr("fault_epoch", self.health_epoch().to_string());
            }
            ctx.event("reject.provenance", report.summary());
        }
        if self.capture_reports.load(Ordering::Relaxed) {
            let mut reports = match self.reports.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            reports.insert(id, report);
        }
    }

    /// The CDV accumulation policy in force.
    pub fn policy(&self) -> CdvPolicy {
        self.policy
    }

    /// Sets the CDV inflation of one link: `extra` cell times of jitter
    /// that a degraded (but still up) link adds to every plan priced
    /// across it, tightening subsequent admission decisions — the
    /// engine-side analogue of
    /// [`rtcac_signaling::Network::set_link_cdv_inflation`].
    /// `Time::ZERO` restores the link. Established connections are
    /// unaffected: inflation changes pricing, not reservations, so the
    /// guarantee audit stays valid across degrade/restore edges.
    ///
    /// Inflation is an environment property, not admission state — it
    /// is deliberately absent from [`AdmissionEngine::export_state`],
    /// and must be re-applied after a warm restart by whoever drives
    /// the impairment schedule.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Net`] for a foreign link id, or
    /// [`EngineError::Cac`] for a negative inflation.
    pub fn set_link_cdv_inflation(&self, link: LinkId, extra: Time) -> Result<(), EngineError> {
        self.topology.link(link)?;
        if extra < Time::ZERO {
            return Err(EngineError::Cac(rtcac_cac::CacError::BadConfig(
                "CDV inflation must be non-negative",
            )));
        }
        let mut inflation = self.lock_cdv_inflation();
        if extra == Time::ZERO {
            inflation.remove(&link);
        } else {
            inflation.insert(link, extra);
        }
        Ok(())
    }

    /// The CDV inflation currently applied to a link (zero by default).
    pub fn link_cdv_inflation(&self, link: LinkId) -> Time {
        self.lock_cdv_inflation()
            .get(&link)
            .copied()
            .unwrap_or(Time::ZERO)
    }

    /// Sets the lock-health watchdog threshold: shard-lock holds longer
    /// than `ns` nanoseconds bump `engine_lock_hold_long_total` (every
    /// hold is recorded in the `engine_lock_hold_ns` histogram
    /// regardless). Defaults to [`DEFAULT_LOCK_HOLD_THRESHOLD_NS`].
    pub fn set_lock_hold_threshold_ns(&self, ns: u64) {
        self.lock_hold_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Installs the anomaly hook, called with `(reason, detail)` when
    /// the lock-hold watchdog trips, the orphan audit finds leaked
    /// reservations, or the guarantee audit finds violations. The
    /// flight recorder is the intended listener; the hook must not call
    /// back into the engine.
    pub fn set_anomaly_hook(&self, hook: AnomalyHook) {
        *self.anomaly_hook.0.lock().expect("anomaly hook poisoned") = Some(hook);
    }

    /// Fires the anomaly hook, if installed. Clones the hook out of
    /// the mutex first so a slow listener never extends the lock.
    fn fire_anomaly(&self, reason: &'static str, detail: String) {
        let hook = self
            .anomaly_hook
            .0
            .lock()
            .expect("anomaly hook poisoned")
            .clone();
        if let Some(hook) = hook {
            hook(reason, detail);
        }
    }

    /// The lock-health watchdog threshold in nanoseconds.
    pub fn lock_hold_threshold_ns(&self) -> u64 {
        self.lock_hold_threshold_ns.load(Ordering::Relaxed)
    }

    /// Replaces the configuration of one switch shard (exclusive
    /// access, so no setups can be in flight). The shard must hold no
    /// established connections.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoSwitchAt`] if the node is not a managed
    /// switch, or [`EngineError::Cac`] if connections are established.
    pub fn configure_switch(
        &mut self,
        node: NodeId,
        config: SwitchConfig,
    ) -> Result<(), EngineError> {
        let shard = self
            .shards
            .get_mut(&node)
            .ok_or(EngineError::NoSwitchAt(node))?;
        if shard.lock().switch.connection_count() != 0 {
            return Err(EngineError::Cac(rtcac_cac::CacError::BadConfig(
                "cannot reconfigure a shard with established connections",
            )));
        }
        *shard = Shard::new(config.clone());
        self.configs.insert(node, config);
        Ok(())
    }

    /// Allocates a fresh connection id (thread-safe, strictly
    /// increasing).
    pub fn allocate_id(&self) -> ConnectionId {
        ConnectionId::new(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Number of established connections.
    pub fn connection_count(&self) -> usize {
        self.lock_registry().len()
    }

    /// The guaranteed end-to-end delay of an established connection.
    pub fn guaranteed_delay(&self, id: ConnectionId) -> Option<Time> {
        self.lock_registry().get(&id).map(|e| e.guaranteed_delay)
    }

    /// Number of established connection legs at one switch shard.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoSwitchAt`] for non-switch nodes.
    pub fn shard_connection_count(&self, node: NodeId) -> Result<usize, EngineError> {
        Ok(self.shard(node)?.lock().switch.connection_count())
    }

    /// The table epoch of one switch shard (see
    /// [`rtcac_cac::Switch::epoch`]).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoSwitchAt`] for non-switch nodes.
    pub fn shard_epoch(&self, node: NodeId) -> Result<u64, EngineError> {
        Ok(self.shard(node)?.lock().switch.epoch())
    }

    /// The memoized computed delay bound at one shard port — the
    /// Algorithm 4.1 result for the committed state, served from the
    /// shard's [`SofCache`](rtcac_cac::SofCache) when the epoch matches.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoSwitchAt`] for non-switch nodes, plus
    /// the conditions of [`rtcac_cac::Switch::computed_bound`].
    pub fn computed_bound(
        &self,
        node: NodeId,
        out_link: rtcac_net::LinkId,
        priority: Priority,
    ) -> Result<Time, EngineError> {
        let mut state = self.shard(node)?.lock();
        let before = (state.cache.hits(), state.cache.misses());
        let ShardState { switch, cache } = &mut *state;
        let result = switch
            .computed_bound_cached(out_link, priority, cache)
            .map_err(EngineError::from);
        if self.metrics.live {
            self.metrics.cache_hits.add(state.cache.hits() - before.0);
            self.metrics
                .cache_misses
                .add(state.cache.misses() - before.1);
        }
        result
    }

    /// Attempts to establish a connection along `route`, allocating a
    /// fresh id. See [`AdmissionEngine::admit_with_id`].
    ///
    /// # Errors
    ///
    /// As [`AdmissionEngine::admit_with_id`].
    pub fn admit(
        &self,
        route: &Route,
        request: SetupRequest,
    ) -> Result<EngineOutcome, EngineError> {
        self.admit_with_id(self.allocate_id(), route, request)
    }

    /// Attempts to establish a connection along `route` under an
    /// explicit id, using the two-phase reserve/commit protocol.
    ///
    /// # Errors
    ///
    /// Returns an error only for API misuse (invalid route, unmanaged
    /// node, unknown priority, duplicate id); a connection that simply
    /// does not fit yields [`EngineOutcome::Rejected`].
    pub fn admit_with_id(
        &self,
        id: ConnectionId,
        route: &Route,
        request: SetupRequest,
    ) -> Result<EngineOutcome, EngineError> {
        let mut ctx = self.start_trace("engine.admit", id);
        let result = self.admit_with_ctx(id, route, request, &mut ctx);
        ctx.finish(Self::outcome_rejects(&result));
        result
    }

    /// [`AdmissionEngine::admit_with_id`] under a caller-owned trace
    /// context (the worker pool opens the trace at submission, so the
    /// span tree covers the queue wait too). The caller finishes the
    /// context.
    ///
    /// # Errors
    ///
    /// As [`AdmissionEngine::admit_with_id`].
    pub fn admit_with_ctx(
        &self,
        id: ConnectionId,
        route: &Route,
        request: SetupRequest,
        ctx: &mut TraceCtx,
    ) -> Result<EngineOutcome, EngineError> {
        Counters::bump(&self.counters.submitted);
        self.metrics.submitted.inc();
        let result = self.admit_routed(id, route, request, ctx);
        if result.is_err() {
            Counters::bump(&self.counters.errored);
            self.metrics.errored.inc();
        }
        result
    }

    /// Attempts to establish a point-to-multipoint connection over
    /// `tree`, allocating a fresh id. See
    /// [`AdmissionEngine::admit_multicast_with_id`].
    ///
    /// # Errors
    ///
    /// As [`AdmissionEngine::admit_multicast_with_id`].
    pub fn admit_multicast(
        &self,
        tree: &MulticastTree,
        request: SetupRequest,
    ) -> Result<EngineOutcome, EngineError> {
        self.admit_multicast_with_id(self.allocate_id(), tree, request)
    }

    /// Attempts to establish a point-to-multipoint connection over
    /// `tree` under an explicit id, through the same two-phase
    /// reserve/commit protocol as unicast setup: every tree leg is
    /// admitted under the shard locks (taken in ascending [`NodeId`]
    /// order), a refusal anywhere rolls the reserved legs back with
    /// full epoch rewind before any lock is dropped, and the commit
    /// re-validates tree health under the registry lock. A dead tree
    /// is refused outright — there is no crankback for trees, because
    /// the engine has no alternate-tree search.
    ///
    /// # Errors
    ///
    /// Returns an error only for API misuse (foreign tree, unmanaged
    /// node, unknown priority, duplicate id); an infeasible connection
    /// yields [`EngineOutcome::Rejected`].
    pub fn admit_multicast_with_id(
        &self,
        id: ConnectionId,
        tree: &MulticastTree,
        request: SetupRequest,
    ) -> Result<EngineOutcome, EngineError> {
        Counters::bump(&self.counters.submitted);
        Counters::bump(&self.counters.mcast_submitted);
        self.metrics.submitted.inc();
        self.metrics.mcast_submitted.inc();
        let mut ctx = self.start_trace("engine.admit_multicast", id);
        let result = self.admit_tree(id, tree, request, &mut ctx);
        ctx.finish(Self::outcome_rejects(&result));
        if result.is_err() {
            Counters::bump(&self.counters.errored);
            self.metrics.errored.inc();
        }
        result
    }

    /// Terminal-counter bookkeeping for one tree setup: every
    /// submitted tree lands in exactly one outcome bucket, mirroring
    /// [`admit_routed`](Self::admit_routed) minus the crankback loop.
    fn admit_tree(
        &self,
        id: ConnectionId,
        tree: &MulticastTree,
        request: SetupRequest,
        ctx: &mut TraceCtx,
    ) -> Result<EngineOutcome, EngineError> {
        if self.draining.load(Ordering::Relaxed) {
            Counters::bump(&self.counters.rejected);
            Counters::bump(&self.counters.mcast_rejected);
            self.metrics.rejected.inc();
            self.metrics.mcast_rejected.inc();
            self.metrics.reject_draining.inc();
            self.metrics.exemplar_draining.record_from(ctx);
            return Ok(EngineOutcome::Rejected {
                id,
                rejection: SetupRejection::Draining,
            });
        }
        let plan = RoutePlan::from_tree(&self.topology, tree)?;
        let shape = EstablishedShape::Multicast(tree.clone());
        match self.attempt_plan(id, &plan, request, &shape, ctx)? {
            AttemptResult::Committed { guaranteed_delay } => {
                Counters::bump(&self.counters.admitted);
                Counters::bump(&self.counters.mcast_admitted);
                self.metrics.admitted.inc();
                self.metrics.mcast_admitted.inc();
                Ok(EngineOutcome::Admitted {
                    id,
                    guaranteed_delay,
                })
            }
            AttemptResult::Refused { rejection } => {
                let aborted = matches!(
                    &rejection,
                    SetupRejection::Switch { hops_rolled_back, .. } if *hops_rolled_back > 0
                );
                if aborted {
                    Counters::bump(&self.counters.aborted);
                    self.metrics.aborted.inc();
                } else {
                    Counters::bump(&self.counters.rejected);
                    self.metrics.rejected.inc();
                }
                Counters::bump(&self.counters.mcast_rejected);
                self.metrics.mcast_rejected.inc();
                Ok(EngineOutcome::Rejected { id, rejection })
            }
            AttemptResult::RouteDead { link } => {
                Counters::bump(&self.counters.rejected);
                Counters::bump(&self.counters.mcast_rejected);
                self.metrics.rejected.inc();
                self.metrics.mcast_rejected.inc();
                self.metrics.reject_route_down.inc();
                self.metrics.exemplar_route_down.record_from(ctx);
                Ok(EngineOutcome::Rejected {
                    id,
                    rejection: SetupRejection::RouteDown { link },
                })
            }
        }
    }

    /// The guaranteed end-to-end delay bound per terminal of an
    /// established connection: one entry (the destination) for
    /// unicast, one per leaf — sorted by node — for multicast.
    pub fn per_leaf_bounds(&self, id: ConnectionId) -> Option<Vec<(NodeId, Time)>> {
        self.lock_registry().get(&id).map(|e| e.per_leaf.clone())
    }

    /// The engine's crankback loop: drives [`admit_attempt`] over the
    /// submitted route, and when that route is (or goes) dead, searches
    /// an alternate around the dead elements — up to the reroute
    /// budget. Terminal-counter bookkeeping happens here, so every
    /// submitted setup lands in exactly one bucket.
    ///
    /// [`admit_attempt`]: AdmissionEngine::admit_attempt
    fn admit_routed(
        &self,
        id: ConnectionId,
        route: &Route,
        request: SetupRequest,
        ctx: &mut TraceCtx,
    ) -> Result<EngineOutcome, EngineError> {
        if self.draining.load(Ordering::Relaxed) {
            Counters::bump(&self.counters.rejected);
            self.metrics.rejected.inc();
            self.metrics.reject_draining.inc();
            self.metrics.exemplar_draining.record_from(ctx);
            return Ok(EngineOutcome::Rejected {
                id,
                rejection: SetupRejection::Draining,
            });
        }
        let budget = self.reroute_budget.load(Ordering::Relaxed) as usize;
        let mut attempts: usize = 0;
        let mut excluded: Vec<LinkId> = Vec::new();
        let mut reroute_start = None;
        let mut current = route.clone();
        loop {
            let attempt_span = ctx.begin("attempt");
            if ctx.can_flush() && attempts > 0 {
                ctx.attr("reroute_attempt", attempts.to_string());
            }
            let attempt = self.admit_attempt(id, &current, request, ctx);
            ctx.end(attempt_span);
            match attempt? {
                AttemptResult::Committed { guaranteed_delay } => {
                    return Ok(if attempts == 0 {
                        Counters::bump(&self.counters.admitted);
                        self.metrics.admitted.inc();
                        EngineOutcome::Admitted {
                            id,
                            guaranteed_delay,
                        }
                    } else {
                        Counters::bump(&self.counters.rerouted);
                        self.metrics.rerouted.inc();
                        self.metrics
                            .record_since(reroute_start, &self.metrics.reroute_ns);
                        EngineOutcome::Rerouted {
                            id,
                            guaranteed_delay,
                            route: current,
                            attempts,
                        }
                    });
                }
                AttemptResult::Refused { rejection } => {
                    let aborted = matches!(
                        &rejection,
                        SetupRejection::Switch { hops_rolled_back, .. } if *hops_rolled_back > 0
                    );
                    if aborted {
                        Counters::bump(&self.counters.aborted);
                        self.metrics.aborted.inc();
                    } else {
                        Counters::bump(&self.counters.rejected);
                        self.metrics.rejected.inc();
                    }
                    return Ok(EngineOutcome::Rejected { id, rejection });
                }
                AttemptResult::RouteDead { link } => {
                    if !excluded.contains(&link) {
                        excluded.push(link);
                    }
                    let alternate = if attempts < budget {
                        self.alternate_route(route, &excluded)
                    } else {
                        None
                    };
                    match alternate {
                        Some(alt) => {
                            attempts += 1;
                            if reroute_start.is_none() {
                                reroute_start = self.metrics.start();
                            }
                            current = alt;
                        }
                        None => {
                            Counters::bump(&self.counters.rejected);
                            self.metrics.rejected.inc();
                            self.metrics.reject_route_down.inc();
                            self.metrics.exemplar_route_down.record_from(ctx);
                            return Ok(EngineOutcome::Rejected {
                                id,
                                rejection: SetupRejection::RouteDown { link },
                            });
                        }
                    }
                }
            }
        }
    }

    /// A healthy alternate route between `route`'s endpoints avoiding
    /// every down element plus `excluded`, or `None` when no such
    /// route exists.
    fn alternate_route(&self, route: &Route, excluded: &[LinkId]) -> Option<Route> {
        let from = route.source(&self.topology).ok()?;
        let to = route.destination(&self.topology).ok()?;
        let (avoid_links, avoid_nodes) = {
            let health = self.lock_health();
            let mut links: Vec<LinkId> = health.down_links.iter().copied().collect();
            links.extend(excluded.iter().copied());
            let nodes: Vec<NodeId> = health.down_nodes.iter().copied().collect();
            (links, nodes)
        };
        self.topology
            .shortest_route_avoiding(from, to, &avoid_links, &avoid_nodes)
            .ok()
    }

    /// The first of `links` that is unusable under the health overlay
    /// (the link itself or one of its endpoints is down).
    fn overlay_dead_link(
        &self,
        links: &[LinkId],
        health: &HealthState,
    ) -> Result<Option<LinkId>, EngineError> {
        if health.all_up() {
            return Ok(None);
        }
        for &id in links {
            if health.down_links.contains(&id) {
                return Ok(Some(id));
            }
            let link = self.topology.link(id)?;
            if health.down_nodes.contains(&link.from()) || health.down_nodes.contains(&link.to()) {
                return Ok(Some(id));
            }
        }
        Ok(None)
    }

    /// One two-phase reserve/commit attempt on one concrete route.
    fn admit_attempt(
        &self,
        id: ConnectionId,
        route: &Route,
        request: SetupRequest,
        ctx: &mut TraceCtx,
    ) -> Result<AttemptResult, EngineError> {
        let plan = RoutePlan::from_route(&self.topology, route)?;
        let shape = EstablishedShape::Unicast(route.clone());
        self.attempt_plan(id, &plan, request, &shape, ctx)
    }

    /// One two-phase reserve/commit attempt of a shaped plan — the
    /// concurrent driver for the shared admission core, used for both
    /// unicast routes and multicast trees. `shape` is the transport
    /// recorded in the registry on commit.
    fn attempt_plan(
        &self,
        id: ConnectionId,
        plan: &RoutePlan,
        request: SetupRequest,
        shape: &EstablishedShape,
        ctx: &mut TraceCtx,
    ) -> Result<AttemptResult, EngineError> {
        // Health gate — a cheap refusal before any shard lock when the
        // transport is already known dead.
        {
            let health = self.lock_health();
            if let Some(link) = self.overlay_dead_link(shape.links(), &health)? {
                ctx.event("reject.provenance", format!("route down at link {link}"));
                return Ok(AttemptResult::RouteDead { link });
            }
        }

        // QoS feasibility gate and per-hop CDV — priced lock-free by
        // the core from the static per-node configurations: the
        // advertised bounds never change while setups are in flight.
        let price_span = ctx.begin("price");
        let priced = {
            let inflation = self.lock_cdv_inflation();
            ReservationPlan::price_inflated(
                plan,
                self.policy,
                request.contract(),
                request.priority(),
                |node| {
                    self.configs
                        .get(&node)
                        .ok_or(EngineError::NoSwitchAt(node))?
                        .bound(request.priority())
                        .map_err(EngineError::from)
                },
                |link| inflation.get(&link).copied().unwrap_or(Time::ZERO),
            )?
        };
        ctx.end(price_span);
        // Provenance rows are assembled during the walk only when
        // someone is guaranteed to see them: a sampled trace, or a
        // caller that switched report capture on. A live-but-unsampled
        // trace pays nothing here — if the setup ends in a rejection
        // (which forces the trace to flush), the rare reject path
        // below reconstructs the ledger post-hoc.
        let want_report = self.capture_reports.load(Ordering::Relaxed) || ctx.is_sampled();
        let mut rows = if want_report {
            priced.report_rows()
        } else {
            Vec::new()
        };
        let achievable = priced.achievable();
        if request.delay_bound() < achievable {
            self.metrics.reject_qos.inc();
            self.metrics.exemplar_qos.record_from(ctx);
            if want_report || ctx.can_flush() {
                // Refused before the walk: every row is NotEvaluated,
                // so the skeleton is the exact ledger either way.
                let rows = if want_report {
                    rows
                } else {
                    priced.report_rows()
                };
                self.publish_report(
                    id,
                    AdmissionReport::new(
                        rows,
                        AdmissionVerdict::RejectedQos {
                            requested: request.delay_bound(),
                            achievable,
                        },
                    ),
                    ctx,
                );
            }
            return Ok(AttemptResult::Refused {
                rejection: SetupRejection::QosUnsatisfiable {
                    requested: request.delay_bound(),
                    achievable,
                },
            });
        }

        if self.lock_registry().contains_key(&id) {
            return Err(EngineError::DuplicateConnection(id));
        }

        // Phase 1 (reserve): take every shard lock on the plan in
        // ascending NodeId order — the global order that makes
        // concurrent setups deadlock-free — then drive the core's
        // reserve walk leg by leg in plan order. A refusal rolls every
        // reserved leg back (phase 2, abort) before any lock drops.
        let reserve_span = ctx.begin("reserve");
        let reserve_start = self.metrics.start();
        let mut guards = self.lock_route_shards(plan.hops().iter().map(|h| h.node))?;
        let pre_epochs: BTreeMap<NodeId, u64> = guards
            .iter()
            .map(|(&node, state)| (node, state.switch.epoch()))
            .collect();
        let cache_before = self.metrics.live.then(|| Self::cache_totals(&guards));
        let mut driver = ShardDriver {
            id,
            guards: &mut guards,
            pre_epochs: &pre_epochs,
            metrics: &self.metrics,
            reserve_start,
            rollback_start: None,
        };
        let outcome = if want_report {
            let trace_hops = ctx.is_sampled();
            let mut hop_events: Vec<String> = Vec::new();
            let outcome = priced.reserve_observed(&mut driver, |index, hop, decision| {
                rows[index].record_decision(decision);
                if trace_hops {
                    hop_events.push(format!(
                        "node {} out {} cdv {}: {}",
                        hop.node, hop.out_link, hop.cdv, rows[index].verdict
                    ));
                }
            })?;
            for detail in hop_events {
                ctx.event("hop", detail);
            }
            outcome
        } else {
            priced.reserve(&mut driver)?
        };
        let (reserve_pending, rollback_start) = (driver.reserve_start, driver.rollback_start);
        self.record_cache_deltas(cache_before, &guards);
        match outcome {
            ReserveOutcome::Reserved => {
                ctx.end(reserve_span);
                self.metrics
                    .record_since(reserve_pending, &self.metrics.reserve_ns);
            }
            ReserveOutcome::Refused {
                at,
                index,
                reason,
                legs_rolled_back,
                ..
            } => {
                ctx.end(reserve_span);
                if legs_rolled_back > 0 {
                    self.metrics
                        .record_since(rollback_start, &self.metrics.rollback_ns);
                    self.metrics.record_abort_event(format!(
                        "conn {id} refused at node {at}: rolled back {legs_rolled_back} hop(s)"
                    ));
                }
                self.metrics.reject_switch.inc();
                self.metrics.exemplar_switch.record_from(ctx);
                if want_report || ctx.can_flush() {
                    let rows = if want_report {
                        rows
                    } else {
                        // The sampled-out walk ran without an observer;
                        // rebuild the ledger for the forced reject
                        // flush. Upstream verdicts are known (they
                        // admitted), only their computed bounds were
                        // not retained; the refusing hop's reason —
                        // including its computed bound — is.
                        let mut rows = priced.report_rows();
                        for row in rows.iter_mut().take(index) {
                            row.verdict = HopVerdict::Admitted;
                        }
                        rows[index].record_decision(&AdmissionDecision::Rejected(reason));
                        rows
                    };
                    self.publish_report(
                        id,
                        AdmissionReport::new(rows, AdmissionVerdict::RejectedHop { at, index }),
                        ctx,
                    );
                }
                return Ok(AttemptResult::Refused {
                    rejection: SetupRejection::Switch {
                        at,
                        reason,
                        hops_rolled_back: legs_rolled_back,
                    },
                });
            }
        }

        // Test trap: fail a link inside the reserve→commit window.
        #[cfg(test)]
        {
            let trap = self
                .test_fail_after_reserve
                .lock()
                .expect("trap mutex poisoned")
                .take();
            if let Some(link) = trap {
                let mut health = self.lock_health();
                if health.down_links.insert(link) {
                    health.epoch += 1;
                }
            }
        }

        // Phase 2 (commit): record the connection while the shard locks
        // are still held, so a concurrent release cannot interleave.
        //
        // The registry lock serializes this block against `fail_link` /
        // `fail_node`, which mark health and snapshot the affected
        // connections under the same lock — so a failure racing a setup
        // is seen by exactly one side: either the health re-check here
        // observes it (and the reserve is rolled back), or the failure
        // path sees the committed registry entry (and tears it down).
        let commit_span = ctx.begin("commit");
        let commit_start = self.metrics.start();
        {
            let mut registry = self.lock_registry();
            let dead = {
                let health = self.lock_health();
                self.overlay_dead_link(shape.links(), &health)?
            };
            if let Some(link) = dead {
                drop(registry);
                let rollback_start = self.metrics.start();
                let reserved: Vec<NodeId> = plan.hops().iter().map(|h| h.node).collect();
                Self::rollback(&mut guards, &pre_epochs, &reserved, id)?;
                self.metrics
                    .record_since(rollback_start, &self.metrics.rollback_ns);
                self.metrics.record_abort_event(format!(
                    "conn {id}: link {link} failed between reserve and commit; rolled back {} hop(s)",
                    reserved.len()
                ));
                ctx.end(commit_span);
                ctx.event(
                    "commit.abort",
                    format!("link {link} failed between reserve and commit"),
                );
                return Ok(AttemptResult::RouteDead { link });
            }
            registry.insert(
                id,
                Established {
                    shape: shape.clone(),
                    points: plan.hops().iter().map(|h| (h.node, h.out_link)).collect(),
                    priority: request.priority(),
                    delay_bound: request.delay_bound(),
                    guaranteed_delay: achievable,
                    per_leaf: priced.terminals().to_vec(),
                },
            );
        }
        self.metrics
            .record_since(commit_start, &self.metrics.commit_ns);
        ctx.end(commit_span);
        if want_report {
            self.publish_report(
                id,
                AdmissionReport::new(
                    rows,
                    AdmissionVerdict::Admitted {
                        guaranteed_delay: achievable,
                    },
                ),
                ctx,
            );
        }
        Ok(AttemptResult::Committed {
            guaranteed_delay: achievable,
        })
    }

    /// Rolls back every reserved hop and rewinds each touched shard's
    /// table epoch (with matching cache invalidation), so the shards
    /// end bit-identical to their pre-reserve state.
    fn rollback(
        guards: &mut BTreeMap<NodeId, MutexGuard<'_, ShardState>>,
        pre_epochs: &BTreeMap<NodeId, u64>,
        reserved: &[NodeId],
        id: ConnectionId,
    ) -> Result<(), EngineError> {
        let mut rolled: Vec<NodeId> = Vec::new();
        for &up in reserved.iter().rev() {
            if rolled.contains(&up) {
                continue; // multi-leg: one release frees all
            }
            guards
                .get_mut(&up)
                .expect("reserved shard locked")
                .switch
                .release(id)?;
            rolled.push(up);
        }
        for up in rolled {
            let pre = pre_epochs[&up];
            let state = guards.get_mut(&up).expect("reserved shard locked");
            let ShardState { switch, cache } = &mut **state;
            switch.rewind_epoch(pre);
            cache.invalidate_newer(pre);
        }
        Ok(())
    }

    /// Summed (hits, misses) across a set of locked shards.
    fn cache_totals(guards: &BTreeMap<NodeId, MutexGuard<'_, ShardState>>) -> (u64, u64) {
        guards.values().fold((0, 0), |(h, m), state| {
            (h + state.cache.hits(), m + state.cache.misses())
        })
    }

    /// Adds the hit/miss growth since `before` to the obs counters.
    fn record_cache_deltas(
        &self,
        before: Option<(u64, u64)>,
        guards: &BTreeMap<NodeId, MutexGuard<'_, ShardState>>,
    ) {
        if let Some((h0, m0)) = before {
            let (h1, m1) = Self::cache_totals(guards);
            self.metrics.cache_hits.add(h1 - h0);
            self.metrics.cache_misses.add(m1 - m0);
        }
    }

    /// Tears down an established connection, releasing every shard
    /// reservation on its route.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownConnection`] if the id is not
    /// established.
    pub fn release(&self, id: ConnectionId) -> Result<(), EngineError> {
        let entry = self
            .lock_registry()
            .remove(&id)
            .ok_or(EngineError::UnknownConnection(id))?;
        let mut guards = self.lock_route_shards(entry.points.iter().map(|&(n, _)| n))?;
        for (_, state) in guards.iter_mut() {
            state.switch.release(id)?;
        }
        Counters::bump(&self.counters.released);
        self.metrics.released.inc();
        Ok(())
    }

    /// Marks a link down in the engine's health overlay and
    /// force-releases every established connection whose route crosses
    /// it. New setups over the link are refused (or rerouted around it)
    /// and reserve/commit windows in flight observe the failure.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Net`] for a foreign link id.
    pub fn fail_link(&self, link: LinkId) -> Result<FailureImpact, EngineError> {
        self.topology.link(link)?;
        let affected: Vec<ConnectionId> = {
            let registry = self.lock_registry();
            let mut health = self.lock_health();
            if !health.down_links.insert(link) {
                return Ok(FailureImpact::unchanged());
            }
            health.epoch += 1;
            drop(health);
            registry
                .iter()
                .filter(|(_, e)| e.shape.links().contains(&link))
                .map(|(&id, _)| id)
                .collect()
        };
        self.metrics.link_failures.inc();
        self.fail_over(affected)
    }

    /// Marks a link up again in the health overlay. Returns whether
    /// the state changed (healing a healthy link is a no-op).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Net`] for a foreign link id.
    pub fn heal_link(&self, link: LinkId) -> Result<bool, EngineError> {
        self.topology.link(link)?;
        let changed = {
            let mut health = self.lock_health();
            let changed = health.down_links.remove(&link);
            if changed {
                health.epoch += 1;
            }
            changed
        };
        if changed {
            self.metrics.link_heals.inc();
        }
        Ok(changed)
    }

    /// Marks a node down in the health overlay and force-releases
    /// every established connection whose route visits it (as endpoint
    /// or transit).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Net`] for a foreign node id.
    pub fn fail_node(&self, node: NodeId) -> Result<FailureImpact, EngineError> {
        self.topology.node(node)?;
        let affected: Vec<ConnectionId> = {
            let registry = self.lock_registry();
            let mut health = self.lock_health();
            if !health.down_nodes.insert(node) {
                return Ok(FailureImpact::unchanged());
            }
            health.epoch += 1;
            drop(health);
            let mut ids = Vec::new();
            for (&id, entry) in registry.iter() {
                if links_visit(&self.topology, entry.shape.links(), node)? {
                    ids.push(id);
                }
            }
            ids
        };
        self.metrics.node_failures.inc();
        self.fail_over(affected)
    }

    /// Marks a node up again in the health overlay. Returns whether
    /// the state changed.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Net`] for a foreign node id.
    pub fn heal_node(&self, node: NodeId) -> Result<bool, EngineError> {
        self.topology.node(node)?;
        let changed = {
            let mut health = self.lock_health();
            let changed = health.down_nodes.remove(&node);
            if changed {
                health.epoch += 1;
            }
            changed
        };
        if changed {
            self.metrics.node_heals.inc();
        }
        Ok(changed)
    }

    /// Tears down every connection in `affected` and publishes the
    /// post-failure orphan audit.
    fn fail_over(&self, affected: Vec<ConnectionId>) -> Result<FailureImpact, EngineError> {
        let mut torn_down = Vec::new();
        for id in affected {
            if self.release_failover(id)? {
                torn_down.push(id);
            }
        }
        self.publish_orphans();
        Ok(FailureImpact {
            changed: true,
            torn_down,
        })
    }

    /// Force-releases a connection because an element on its route
    /// failed. Returns `false` when the connection is already gone (a
    /// benign race with a caller-initiated release).
    fn release_failover(&self, id: ConnectionId) -> Result<bool, EngineError> {
        let Some(entry) = self.lock_registry().remove(&id) else {
            return Ok(false);
        };
        let mut guards = self.lock_route_shards(entry.points.iter().map(|&(n, _)| n))?;
        for (_, state) in guards.iter_mut() {
            state.switch.release(id)?;
        }
        Counters::bump(&self.counters.failed_over);
        self.metrics.failed_over.inc();
        Ok(true)
    }

    /// The health-change epoch: bumps on every effective fail or heal.
    pub fn health_epoch(&self) -> u64 {
        self.lock_health().epoch
    }

    /// Whether a link is currently usable under the health overlay
    /// (itself up, both endpoints up).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Net`] for a foreign link id.
    pub fn link_usable(&self, link: LinkId) -> Result<bool, EngineError> {
        let l = self.topology.link(link)?;
        let health = self.lock_health();
        Ok(!health.down_links.contains(&link)
            && !health.down_nodes.contains(&l.from())
            && !health.down_nodes.contains(&l.to()))
    }

    /// Puts the engine in (or out of) drain mode: while draining,
    /// every new setup is refused with [`SetupRejection::Draining`];
    /// releases and failure handling still run.
    pub fn set_draining(&self, draining: bool) {
        self.draining.store(draining, Ordering::Relaxed);
    }

    /// Whether drain mode is on.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Sets how many alternate routes a setup may try after its route
    /// is found dead (default 2; 0 disables the engine crankback).
    pub fn set_reroute_budget(&self, budget: u64) {
        self.reroute_budget.store(budget, Ordering::Relaxed);
    }

    /// Every `(shard, connection)` reservation with no owning registry
    /// entry. Non-empty means a rollback or failover leaked bandwidth;
    /// the chaos harness asserts this stays empty.
    pub fn orphaned_reservations(&self) -> Vec<(NodeId, ConnectionId)> {
        let mut held: Vec<(NodeId, ConnectionId)> = Vec::new();
        for (&node, shard) in &self.shards {
            let state = shard.lock();
            let ids: BTreeSet<ConnectionId> =
                state.switch.connections().map(|(id, _)| id).collect();
            held.extend(ids.into_iter().map(|id| (node, id)));
        }
        let registry = self.lock_registry();
        held.retain(|(_, id)| !registry.contains_key(id));
        held
    }

    /// Runs the orphaned-reservation audit, publishes the count to
    /// the `engine_orphaned_reservations` gauge, and returns it (zero
    /// when the no-leak invariant holds).
    pub fn publish_orphan_audit(&self) -> usize {
        let orphans = self.orphaned_reservations().len();
        if self.metrics.live {
            self.metrics.orphaned.set(orphans as u64);
        }
        if orphans > 0 {
            self.fire_anomaly("orphans", format!("{orphans} orphaned reservation(s)"));
        }
        orphans
    }

    /// Publishes the orphaned-reservation count to the obs gauge.
    fn publish_orphans(&self) {
        self.publish_orphan_audit();
    }

    /// Recomputes every established connection's Algorithm 4.1 bounds
    /// and checks them against the guarantees handed out at setup:
    /// each queueing point's computed bound must stay within the
    /// advertised per-hop bound, and the guaranteed end-to-end delay
    /// must stay within the contracted delay bound. Returns the
    /// violations found (empty when every guarantee holds).
    ///
    /// # Errors
    ///
    /// Returns the conditions of [`AdmissionEngine::computed_bound`].
    pub fn verify_guarantees(&self) -> Result<Vec<GuaranteeViolation>, EngineError> {
        let snapshot: Vec<(ConnectionId, Established)> = self
            .lock_registry()
            .iter()
            .map(|(&id, entry)| (id, entry.clone()))
            .collect();
        let mut violations = Vec::new();
        for (id, entry) in snapshot {
            for &(node, out_link) in &entry.points {
                let advertised = self
                    .configs
                    .get(&node)
                    .ok_or(EngineError::NoSwitchAt(node))?
                    .bound(entry.priority)?;
                let computed = self.computed_bound(node, out_link, entry.priority)?;
                if computed > advertised {
                    violations.push(GuaranteeViolation {
                        id,
                        at: Some(node),
                        computed,
                        limit: advertised,
                    });
                }
            }
            if entry.guaranteed_delay > entry.delay_bound {
                violations.push(GuaranteeViolation {
                    id,
                    at: None,
                    computed: entry.guaranteed_delay,
                    limit: entry.delay_bound,
                });
            }
        }
        if let Some(v) = violations.first() {
            self.fire_anomaly(
                "guarantee_audit",
                format!(
                    "{} violation(s); first: connection {} computed {} > limit {}",
                    violations.len(),
                    v.id,
                    v.computed,
                    v.limit
                ),
            );
        }
        Ok(violations)
    }

    /// A consistent snapshot of the engine counters plus the summed
    /// per-shard cache statistics.
    pub fn stats(&self) -> EngineStats {
        let (mut hits, mut misses) = (0, 0);
        for shard in self.shards.values() {
            let state = shard.lock();
            hits += state.cache.hits();
            misses += state.cache.misses();
        }
        EngineStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            admitted: self.counters.admitted.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            aborted: self.counters.aborted.load(Ordering::Relaxed),
            errored: self.counters.errored.load(Ordering::Relaxed),
            rerouted: self.counters.rerouted.load(Ordering::Relaxed),
            released: self.counters.released.load(Ordering::Relaxed),
            failed_over: self.counters.failed_over.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            mcast_submitted: self.counters.mcast_submitted.load(Ordering::Relaxed),
            mcast_admitted: self.counters.mcast_admitted.load(Ordering::Relaxed),
            mcast_rejected: self.counters.mcast_rejected.load(Ordering::Relaxed),
        }
    }

    /// Exports a consistent cut of the full engine state for
    /// snapshotting: per-shard connection legs and epochs, the
    /// connection registry, health overlay, drain flag, id allocator
    /// and outcome counters (see [`EngineState`] for what is stored
    /// versus derived).
    ///
    /// The cut is taken with **every** shard locked in ascending
    /// [`NodeId`] order, then the registry and health locks — the same
    /// nesting order the commit path uses — so no in-flight setup can
    /// be observed half-committed.
    pub fn export_state(&self) -> EngineState {
        let guards: Vec<(NodeId, MutexGuard<'_, ShardState>)> = self
            .shards
            .iter()
            .map(|(&node, shard)| (node, shard.lock()))
            .collect();
        let registry = self.lock_registry();
        let health = self.lock_health();
        let switches = guards
            .iter()
            .map(|(node, state)| SwitchState {
                node: *node,
                config: self.configs[node].clone(),
                epoch: state.switch.epoch(),
                legs: state.switch.connections().collect(),
            })
            .collect();
        let connections = registry
            .iter()
            .map(|(&id, entry)| ConnectionState {
                id,
                multicast: matches!(entry.shape, EstablishedShape::Multicast(_)),
                links: entry.shape.links().to_vec(),
                points: entry.points.clone(),
                priority: entry.priority,
                delay_bound: entry.delay_bound,
                guaranteed_delay: entry.guaranteed_delay,
                per_leaf: entry.per_leaf.clone(),
            })
            .collect();
        EngineState {
            policy: self.policy,
            reroute_budget: self.reroute_budget.load(Ordering::Relaxed),
            next_id: self.next_id.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::Relaxed),
            health: HealthOverlayState {
                down_links: health.down_links.iter().copied().collect(),
                down_nodes: health.down_nodes.iter().copied().collect(),
                epoch: health.epoch,
            },
            switches,
            connections,
            counters: EngineStats {
                submitted: self.counters.submitted.load(Ordering::Relaxed),
                admitted: self.counters.admitted.load(Ordering::Relaxed),
                rejected: self.counters.rejected.load(Ordering::Relaxed),
                aborted: self.counters.aborted.load(Ordering::Relaxed),
                errored: self.counters.errored.load(Ordering::Relaxed),
                rerouted: self.counters.rerouted.load(Ordering::Relaxed),
                released: self.counters.released.load(Ordering::Relaxed),
                failed_over: self.counters.failed_over.load(Ordering::Relaxed),
                cache_hits: 0,
                cache_misses: 0,
                mcast_submitted: self.counters.mcast_submitted.load(Ordering::Relaxed),
                mcast_admitted: self.counters.mcast_admitted.load(Ordering::Relaxed),
                mcast_rejected: self.counters.mcast_rejected.load(Ordering::Relaxed),
            },
        }
    }

    /// Approximate resident heap bytes of the engine's admission state:
    /// the sum of every shard switch's
    /// [`resident_bytes`](rtcac_cac::Switch::resident_bytes). Each
    /// shard is locked briefly in ascending order (not all at once —
    /// the figure is a gauge, not a consistent cut), so scraping it
    /// from a metrics endpoint does not stall admissions.
    pub fn resident_bytes(&self) -> usize {
        self.shards
            .values()
            .map(|shard| shard.lock().switch.resident_bytes())
            .sum()
    }

    /// Rebuilds an engine from an exported state — the warm-restart
    /// constructor. Metrics go to the installed global registry like
    /// [`AdmissionEngine::new`].
    ///
    /// Every part is re-validated against `topology` (shapes re-walk
    /// their link chains, legs re-derive their arrival streams), and
    /// the rebuilt engine must pass the orphaned-reservation audit and
    /// [`AdmissionEngine::verify_guarantees`] before it is returned — a
    /// snapshot that fails is refused whole, never half-loaded.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::RestoreRefused`] for any inconsistency
    /// between the state and the topology, or when the post-rebuild
    /// audit fails.
    pub fn from_state(
        topology: Topology,
        state: &EngineState,
    ) -> Result<AdmissionEngine, EngineError> {
        let metrics = EngineMetrics::from_global(topology.switches().map(|n| n.id()));
        AdmissionEngine::build_from_state(topology, state, metrics)
    }

    /// [`AdmissionEngine::from_state`] with an explicit metrics
    /// registry (the form the resident service and tests use).
    ///
    /// # Errors
    ///
    /// As [`AdmissionEngine::from_state`].
    pub fn from_state_with_registry(
        topology: Topology,
        state: &EngineState,
        registry: Arc<Registry>,
    ) -> Result<AdmissionEngine, EngineError> {
        let metrics = EngineMetrics::from_registry(registry, topology.switches().map(|n| n.id()));
        AdmissionEngine::build_from_state(topology, state, metrics)
    }

    fn build_from_state(
        topology: Topology,
        state: &EngineState,
        metrics: EngineMetrics,
    ) -> Result<AdmissionEngine, EngineError> {
        let (configs, switches, established) = AdmissionEngine::rebuild_parts(&topology, state)?;
        let shards = switches
            .into_iter()
            .map(|(node, switch)| (node, Shard::from_switch(switch)))
            .collect();
        let engine = AdmissionEngine {
            topology,
            policy: state.policy,
            configs,
            shards,
            connections: Mutex::new(established),
            health: Mutex::new(HealthState {
                down_links: state.health.down_links.iter().copied().collect(),
                down_nodes: state.health.down_nodes.iter().copied().collect(),
                epoch: state.health.epoch,
            }),
            draining: AtomicBool::new(state.draining),
            reroute_budget: AtomicU64::new(state.reroute_budget),
            next_id: AtomicU64::new(state.next_id),
            counters: Counters::default(),
            metrics,
            tracer: Tracer::noop(),
            capture_reports: AtomicBool::new(false),
            reports: Mutex::new(BTreeMap::new()),
            cdv_inflation: Mutex::new(BTreeMap::new()),
            lock_hold_threshold_ns: AtomicU64::new(DEFAULT_LOCK_HOLD_THRESHOLD_NS),
            anomaly_hook: AnomalyHookCell::default(),
            #[cfg(test)]
            test_fail_after_reserve: Mutex::new(None),
        };
        engine.load_counters(&state.counters);
        engine.audit_restored()?;
        Ok(engine)
    }

    /// Adopts an exported state into this already-running engine — the
    /// in-place warm restart the resident service uses, so the engine
    /// handle shared with its worker pool stays valid.
    ///
    /// The state is fully rebuilt and audited on a throwaway engine
    /// *before* anything is applied, so a failing snapshot leaves this
    /// engine untouched. The topology, switch configurations and CDV
    /// policy must match the snapshot exactly. The swap itself happens
    /// under every shard lock (ascending order) plus the registry and
    /// health locks — the same consistent-cut discipline as
    /// [`AdmissionEngine::export_state`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::RestoreRefused`] for any mismatch or
    /// audit failure; the engine keeps serving its pre-call state.
    pub fn adopt_state(&self, state: &EngineState) -> Result<(), EngineError> {
        if state.policy != self.policy {
            return Err(EngineError::RestoreRefused(format!(
                "CDV policy mismatch: engine runs {:?}, snapshot was taken under {:?}",
                self.policy, state.policy
            )));
        }
        let (configs, mut switches, established) =
            AdmissionEngine::rebuild_parts(&self.topology, state)?;
        if configs != self.configs {
            return Err(EngineError::RestoreRefused(
                "switch configuration mismatch between engine and snapshot".into(),
            ));
        }
        // Dry-run the full rebuild + audit on a throwaway engine first:
        // a snapshot that fails verify_guarantees or the orphan audit
        // must be refused before any of it becomes visible here.
        AdmissionEngine::build_from_state(self.topology.clone(), state, EngineMetrics::default())?;
        {
            let mut guards: Vec<(NodeId, MutexGuard<'_, ShardState>)> = self
                .shards
                .iter()
                .map(|(&node, shard)| (node, shard.lock()))
                .collect();
            let mut registry = self.lock_registry();
            let mut health = self.lock_health();
            for (node, guard) in guards.iter_mut() {
                **guard = ShardState {
                    switch: switches.remove(node).expect("validated switch set"),
                    cache: SofCache::new(),
                };
            }
            *registry = established;
            *health = HealthState {
                down_links: state.health.down_links.iter().copied().collect(),
                down_nodes: state.health.down_nodes.iter().copied().collect(),
                epoch: state.health.epoch,
            };
        }
        self.draining.store(state.draining, Ordering::Relaxed);
        self.reroute_budget
            .store(state.reroute_budget, Ordering::Relaxed);
        self.next_id.store(state.next_id, Ordering::Relaxed);
        self.load_counters(&state.counters);
        self.publish_orphan_audit();
        Ok(())
    }

    /// Rebuilds the restorable parts of an engine from an exported
    /// state, validating everything against `topology` without touching
    /// any engine.
    #[allow(clippy::type_complexity)]
    fn rebuild_parts(
        topology: &Topology,
        state: &EngineState,
    ) -> Result<
        (
            BTreeMap<NodeId, SwitchConfig>,
            BTreeMap<NodeId, Switch>,
            BTreeMap<ConnectionId, Established>,
        ),
        EngineError,
    > {
        let refuse = EngineError::RestoreRefused;
        let expected: BTreeSet<NodeId> = topology.switches().map(|n| n.id()).collect();
        let got: BTreeSet<NodeId> = state.switches.iter().map(|s| s.node).collect();
        if state.switches.len() != got.len() {
            return Err(refuse("duplicate switch section in state".into()));
        }
        if expected != got {
            return Err(refuse(format!(
                "switch set mismatch: topology has {} switch(es), state has {}",
                expected.len(),
                got.len()
            )));
        }
        for &link in &state.health.down_links {
            topology
                .link(link)
                .map_err(|e| refuse(format!("health overlay references a foreign link: {e}")))?;
        }
        for &node in &state.health.down_nodes {
            topology
                .node(node)
                .map_err(|e| refuse(format!("health overlay references a foreign node: {e}")))?;
        }
        let mut configs = BTreeMap::new();
        let mut switches = BTreeMap::new();
        for shard in &state.switches {
            let switch = Switch::restore(
                shard.config.clone(),
                shard.epoch,
                shard.legs.iter().copied(),
            )
            .map_err(|e| refuse(format!("cannot rebuild switch at {}: {e}", shard.node)))?;
            configs.insert(shard.node, shard.config.clone());
            switches.insert(shard.node, switch);
        }
        let mut established: BTreeMap<ConnectionId, Established> = BTreeMap::new();
        for conn in &state.connections {
            let links = conn.links.iter().copied();
            let shape =
                if conn.multicast {
                    EstablishedShape::Multicast(MulticastTree::new(topology, links).map_err(
                        |e| refuse(format!("connection {}: invalid tree: {e}", conn.id)),
                    )?)
                } else {
                    EstablishedShape::Unicast(Route::new(topology, links).map_err(|e| {
                        refuse(format!("connection {}: invalid route: {e}", conn.id))
                    })?)
                };
            for &(node, _) in &conn.points {
                let held = switches
                    .get(&node)
                    .is_some_and(|s| s.has_connection(conn.id));
                if !held {
                    return Err(refuse(format!(
                        "connection {} has no reservation at its queueing point {node}",
                        conn.id
                    )));
                }
            }
            let previous = established.insert(
                conn.id,
                Established {
                    shape,
                    points: conn.points.clone(),
                    priority: conn.priority,
                    delay_bound: conn.delay_bound,
                    guaranteed_delay: conn.guaranteed_delay,
                    per_leaf: conn.per_leaf.clone(),
                },
            );
            if previous.is_some() {
                return Err(refuse(format!("duplicate connection {} in state", conn.id)));
            }
        }
        // The id allocator must be past every restored connection:
        // otherwise post-restore setups burn one DuplicateConnection
        // failure per stale id until the counter catches up — an
        // availability gap, so such a state is refused outright.
        if let Some((&max_id, _)) = established.last_key_value() {
            if state.next_id <= max_id.raw() {
                return Err(refuse(format!(
                    "next connection id {} is not past the largest established id {}",
                    state.next_id, max_id
                )));
            }
        }
        Ok((configs, switches, established))
    }

    /// Stores exported outcome counters into the engine's atomics
    /// (cache counters live in the per-shard caches and stay at zero).
    fn load_counters(&self, stats: &EngineStats) {
        let c = &self.counters;
        for (atomic, value) in [
            (&c.submitted, stats.submitted),
            (&c.admitted, stats.admitted),
            (&c.rejected, stats.rejected),
            (&c.aborted, stats.aborted),
            (&c.errored, stats.errored),
            (&c.rerouted, stats.rerouted),
            (&c.released, stats.released),
            (&c.failed_over, stats.failed_over),
            (&c.mcast_submitted, stats.mcast_submitted),
            (&c.mcast_admitted, stats.mcast_admitted),
            (&c.mcast_rejected, stats.mcast_rejected),
        ] {
            atomic.store(value, Ordering::Relaxed);
        }
    }

    /// The accept-traffic gate of a rebuilt engine: the
    /// orphaned-reservation audit must find nothing and every
    /// recomputed Algorithm 4.1 bound must still honor its guarantee.
    fn audit_restored(&self) -> Result<(), EngineError> {
        let orphans = self.publish_orphan_audit();
        if orphans != 0 {
            return Err(EngineError::RestoreRefused(format!(
                "{orphans} orphaned reservation(s) after rebuild"
            )));
        }
        let violations = self.verify_guarantees()?;
        if let Some(v) = violations.first() {
            return Err(EngineError::RestoreRefused(format!(
                "{} guarantee violation(s) after rebuild (first: connection {} computed {} > limit {})",
                violations.len(),
                v.id,
                v.computed,
                v.limit
            )));
        }
        Ok(())
    }

    fn shard(&self, node: NodeId) -> Result<&Shard, EngineError> {
        self.shards.get(&node).ok_or(EngineError::NoSwitchAt(node))
    }

    /// Locks the shards of the given route nodes in ascending `NodeId`
    /// order (duplicates collapse), returning the guards keyed by node.
    /// With live metrics, the wait for each shard lock is recorded in
    /// that shard's `engine_shard_lock_wait_ns` histogram, and the
    /// watchdog measures how long the full guard set is held (recorded
    /// when the guards drop).
    fn lock_route_shards(
        &self,
        nodes: impl Iterator<Item = NodeId>,
    ) -> Result<ShardGuards<'_>, EngineError> {
        let unique: std::collections::BTreeSet<NodeId> = nodes.collect();
        let mut guards = BTreeMap::new();
        for node in unique {
            let shard = self.shard(node)?;
            let wait_start = self.metrics.start();
            let guard = shard.lock();
            if let (Some(start), Some(histogram)) =
                (wait_start, self.metrics.lock_wait_ns.get(&node))
            {
                histogram.record_duration(start.elapsed());
            }
            guards.insert(node, guard);
        }
        Ok(ShardGuards {
            guards,
            hold_start: self.metrics.start(),
            engine: self,
            threshold_ns: self.lock_hold_threshold_ns.load(Ordering::Relaxed),
        })
    }

    /// Poisons one shard's mutex by panicking a thread that holds it —
    /// test-only, to exercise worker-panic reporting in the pool.
    #[cfg(test)]
    pub(crate) fn poison_shard(&self, node: NodeId) {
        let shard = self.shard(node).expect("poison target is a switch shard");
        std::thread::scope(|s| {
            let poisoner = s.spawn(|| {
                let _guard = shard.lock();
                panic!("poisoning shard for a pool panic test");
            });
            assert!(poisoner.join().is_err());
        });
    }

    fn lock_registry(&self) -> MutexGuard<'_, BTreeMap<ConnectionId, Established>> {
        self.connections.lock().expect("registry mutex poisoned")
    }

    fn lock_health(&self) -> MutexGuard<'_, HealthState> {
        self.health.lock().expect("health mutex poisoned")
    }

    fn lock_cdv_inflation(&self) -> MutexGuard<'_, BTreeMap<LinkId, Time>> {
        self.cdv_inflation
            .lock()
            .expect("cdv inflation mutex poisoned")
    }
}

/// The full set of shard locks one setup/release holds, instrumented
/// by the lock-health watchdog: on drop (i.e. just before the locks
/// release) the hold duration lands in `engine_lock_hold_ns`, and
/// holds past the engine's threshold bump
/// `engine_lock_hold_long_total` — the ouisync
/// `expect_short_lifetime` discipline, as metrics instead of panics.
struct ShardGuards<'e> {
    guards: BTreeMap<NodeId, MutexGuard<'e, ShardState>>,
    hold_start: Option<Instant>,
    engine: &'e AdmissionEngine,
    threshold_ns: u64,
}

impl<'e> std::ops::Deref for ShardGuards<'e> {
    type Target = BTreeMap<NodeId, MutexGuard<'e, ShardState>>;

    fn deref(&self) -> &Self::Target {
        &self.guards
    }
}

impl std::ops::DerefMut for ShardGuards<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.guards
    }
}

impl Drop for ShardGuards<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.hold_start {
            let held = start.elapsed();
            let metrics = &self.engine.metrics;
            metrics.lock_hold_ns.record_duration(held);
            if held.as_nanos() > u128::from(self.threshold_ns) {
                metrics.lock_hold_long.inc();
                // Rare path only: the hook mutex is never touched on
                // an in-threshold hold.
                self.engine.fire_anomaly(
                    "lock_hold",
                    format!(
                        "shard locks held {}ns (threshold {}ns)",
                        held.as_nanos(),
                        self.threshold_ns
                    ),
                );
            }
        }
    }
}

/// Whether any of `links` touches `node`, as endpoint or transit.
fn links_visit(topology: &Topology, links: &[LinkId], node: NodeId) -> Result<bool, EngineError> {
    for &id in links {
        let link = topology.link(id)?;
        if link.from() == node || link.to() == node {
            return Ok(true);
        }
    }
    Ok(false)
}

/// The engine's [`HopDriver`]: admits each priced leg against the
/// already-locked shards through the per-shard
/// [`SofCache`](rtcac_cac::SofCache), and rewinds the table epoch
/// (with matching cache invalidation) on rollback so an aborted
/// reserve leaves every shard bit-identical to its pre-reserve state.
struct ShardDriver<'a, 'g> {
    id: ConnectionId,
    guards: &'a mut BTreeMap<NodeId, MutexGuard<'g, ShardState>>,
    pre_epochs: &'a BTreeMap<NodeId, u64>,
    metrics: &'a EngineMetrics,
    /// Taken (and the reserve histogram recorded) at the first
    /// refusal, so rollback time is accounted separately.
    reserve_start: Option<Instant>,
    /// Set at the first refusal; the engine records the rollback
    /// histogram from it once the core's walk returns.
    rollback_start: Option<Instant>,
}

impl HopDriver for ShardDriver<'_, '_> {
    type Error = EngineError;

    fn admit(
        &mut self,
        _index: usize,
        hop: &PlannedHop,
        request: ConnectionRequest,
    ) -> Result<AdmissionDecision, EngineError> {
        let state = self.guards.get_mut(&hop.node).expect("plan shard locked");
        let ShardState { switch, cache } = &mut **state;
        let decision = switch.admit_cached(self.id, request, cache)?;
        if !decision.is_admitted() {
            self.metrics
                .record_since(self.reserve_start.take(), &self.metrics.reserve_ns);
            self.rollback_start = self.metrics.start();
        }
        Ok(decision)
    }

    fn rollback(&mut self, node: NodeId) -> Result<(), EngineError> {
        let pre = self.pre_epochs[&node];
        let state = self.guards.get_mut(&node).expect("reserved shard locked");
        let ShardState { switch, cache } = &mut **state;
        switch.release(self.id)?;
        switch.rewind_epoch(pre);
        cache.invalidate_newer(pre);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_bitstream::{CbrParams, Rate, TrafficContract};
    use rtcac_net::builders;
    use rtcac_rational::ratio;
    use rtcac_signaling::{Network, SetupOutcome};

    fn cbr(num: i128, den: i128) -> TrafficContract {
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(num, den))).unwrap())
    }

    fn line_engine(switches: usize, bound: i128) -> (AdmissionEngine, Route) {
        let (topology, src, sw, dst) = builders::line(switches).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(bound)).unwrap();
        let route = Route::from_nodes(
            &topology,
            std::iter::once(src)
                .chain(sw.iter().copied())
                .chain(std::iter::once(dst)),
        )
        .unwrap();
        (
            AdmissionEngine::new(topology, config, CdvPolicy::Hard),
            route,
        )
    }

    #[test]
    fn admit_and_release_roundtrip() {
        let (engine, route) = line_engine(3, 32);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(200));
        let id = match engine.admit(&route, req).unwrap() {
            EngineOutcome::Admitted {
                id,
                guaranteed_delay,
            } => {
                assert_eq!(guaranteed_delay, Time::from_integer(96));
                id
            }
            other => panic!("expected admission, got {other:?}"),
        };
        assert_eq!(engine.connection_count(), 1);
        assert_eq!(engine.guaranteed_delay(id), Some(Time::from_integer(96)));
        for (node, _) in route.queueing_points(engine.topology()).unwrap() {
            assert_eq!(engine.shard_connection_count(node).unwrap(), 1);
        }
        engine.release(id).unwrap();
        assert_eq!(engine.connection_count(), 0);
        for (node, _) in route.queueing_points(engine.topology()).unwrap() {
            assert_eq!(engine.shard_connection_count(node).unwrap(), 0);
        }
        let stats = engine.stats();
        assert_eq!((stats.admitted, stats.released), (1, 1));
    }

    #[test]
    fn qos_gate_rejects_impossible_bounds() {
        let (engine, route) = line_engine(3, 32);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(50));
        match engine.admit(&route, req).unwrap() {
            EngineOutcome::Rejected {
                rejection:
                    SetupRejection::QosUnsatisfiable {
                        requested,
                        achievable,
                    },
                ..
            } => {
                assert_eq!(requested, Time::from_integer(50));
                assert_eq!(achievable, Time::from_integer(96));
            }
            other => panic!("expected qos rejection, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!((stats.rejected, stats.aborted), (1, 0));
    }

    #[test]
    fn mid_route_rejection_rolls_back_and_counts_abort() {
        // Pre-load the destination switch's terminal downlink with
        // local traffic, then push a two-hop setup into it: hop 1 (the
        // source ring node, whose links are free) reserves, hop 2
        // refuses on the saturated downlink, and the reservation must
        // be rolled back and counted as an abort — disjoint from plain
        // rejections.
        let sr = builders::star_ring(4, 2).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
        let engine = AdmissionEngine::new(sr.topology().clone(), config, CdvPolicy::Hard);
        for _ in 0..2 {
            let local = sr.terminal_route((1, 1), (1, 0)).unwrap();
            let req = SetupRequest::new(cbr(2, 5), Priority::HIGHEST, Time::from_integer(500));
            assert!(engine.admit(&local, req).unwrap().is_admitted());
        }
        let cross = sr.terminal_route((0, 0), (1, 0)).unwrap();
        let req = SetupRequest::new(cbr(2, 5), Priority::HIGHEST, Time::from_integer(500));
        match engine.admit(&cross, req).unwrap() {
            EngineOutcome::Rejected {
                rejection:
                    SetupRejection::Switch {
                        at,
                        hops_rolled_back,
                        ..
                    },
                ..
            } => {
                assert_eq!(at, sr.ring_nodes()[1]);
                assert_eq!(hops_rolled_back, 1, "hop 1 was reserved and rolled back");
            }
            other => panic!("expected a mid-route switch rejection, got {other:?}"),
        }
        // Every shard holds exactly the committed connections — no
        // half-reserved leftovers on the rolled-back ring node.
        for (node, _) in cross.queueing_points(engine.topology()).unwrap() {
            let expected = usize::from(node == sr.ring_nodes()[1]) * 2;
            assert_eq!(engine.shard_connection_count(node).unwrap(), expected);
        }
        let stats = engine.stats();
        assert_eq!((stats.admitted, stats.aborted, stats.rejected), (2, 1, 0));
        assert_eq!(
            stats.admitted + stats.rejected + stats.aborted,
            stats.submitted,
            "every submitted setup must land in exactly one outcome"
        );
    }

    #[test]
    fn explicit_registry_records_phase_timings_and_cache_traffic() {
        let (topology, src, sw, dst) = builders::line(3).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(32)).unwrap();
        let route = Route::from_nodes(
            &topology,
            std::iter::once(src)
                .chain(sw.iter().copied())
                .chain(std::iter::once(dst)),
        )
        .unwrap();
        let registry = std::sync::Arc::new(rtcac_obs::Registry::new());
        let engine = AdmissionEngine::with_registry(
            topology,
            config,
            CdvPolicy::Hard,
            std::sync::Arc::clone(&registry),
        );
        for _ in 0..4 {
            let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(200));
            engine.admit(&route, req).unwrap();
        }
        let snap = registry.snapshot();
        let submitted = snap.counter("engine_setups_submitted_total").unwrap();
        assert_eq!(submitted, 4);
        assert_eq!(
            submitted,
            snap.counter("engine_setups_admitted_total").unwrap_or(0)
                + snap.counter("engine_setups_rejected_total").unwrap_or(0)
                + snap.counter("engine_setups_aborted_total").unwrap_or(0)
        );
        let reserve = snap.histogram("engine_reserve_ns").unwrap();
        assert_eq!(reserve.count, 4);
        assert!(reserve.max > 0, "reserving must take measurable time");
        let admitted = snap.counter("engine_setups_admitted_total").unwrap();
        assert_eq!(snap.histogram("engine_commit_ns").unwrap().count, admitted);
        // Every shard on the route was locked once per setup.
        let lock_waits: u64 = snap
            .histograms_named("engine_shard_lock_wait_ns")
            .map(|(_, h)| h.count)
            .sum();
        assert_eq!(lock_waits, 4 * 3);
        // The shard caches were exercised, and the obs deltas agree
        // with the engine's own totals.
        let stats = engine.stats();
        assert_eq!(
            snap.counter("engine_sof_cache_hits_total").unwrap_or(0),
            stats.cache_hits
        );
        assert_eq!(
            snap.counter("engine_sof_cache_misses_total").unwrap_or(0),
            stats.cache_misses
        );
        assert!(stats.cache_hits + stats.cache_misses > 0);
    }

    #[test]
    fn lock_watchdog_records_holds_and_fires_at_zero_threshold() {
        let (topology, src, _sw, dst) = builders::line(3).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
        let route = topology.shortest_route(src, dst).unwrap();
        let registry = std::sync::Arc::new(rtcac_obs::Registry::new());
        let engine = AdmissionEngine::with_registry(
            topology,
            config,
            CdvPolicy::Hard,
            std::sync::Arc::clone(&registry),
        );

        // Under the default (100 ms) threshold, holds are recorded but
        // none counts as long.
        assert_eq!(engine.lock_hold_threshold_ns(), 100_000_000);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(500));
        engine.admit(&route, req).unwrap();
        let snap = registry.snapshot();
        let holds = snap.histogram("engine_lock_hold_ns").unwrap();
        assert!(holds.count > 0, "shard-lock holds must be recorded");
        assert!(holds.max > 0, "a hold takes measurable time");
        assert_eq!(snap.counter("engine_lock_hold_long_total").unwrap_or(0), 0);

        // At threshold zero every positive hold is long — the counter
        // must fire, proving the watchdog path is live and the quiet
        // assertions elsewhere are not vacuous.
        engine.set_lock_hold_threshold_ns(0);
        assert_eq!(engine.lock_hold_threshold_ns(), 0);
        engine.admit(&route, req).unwrap();
        let snap = registry.snapshot();
        assert!(
            snap.counter("engine_lock_hold_long_total").unwrap_or(0) > 0,
            "threshold 0 must flag every hold as long"
        );
    }

    #[test]
    fn rejections_leave_exemplars_and_audits_fire_the_anomaly_hook() {
        use std::sync::atomic::AtomicUsize;

        let (topology, src, _sw, dst) = builders::line(3).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
        let route = topology.shortest_route(src, dst).unwrap();
        let registry = std::sync::Arc::new(rtcac_obs::Registry::new());
        let mut engine = AdmissionEngine::with_registry(
            topology,
            config,
            CdvPolicy::Hard,
            std::sync::Arc::clone(&registry),
        );
        engine.set_tracer(rtcac_obs::Tracer::new(rtcac_obs::Sampling::Always));

        // An impossible delay bound forces a qos rejection; the
        // exemplar slot must then carry the rejected setup's trace id.
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(1));
        match engine.admit(&route, req).unwrap() {
            EngineOutcome::Rejected { .. } => {}
            other => panic!("expected qos rejection, got {other:?}"),
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_with("engine_rejections_total", &[("reason", "qos")]),
            Some(1)
        );
        let exemplar = snap
            .exemplars
            .iter()
            .find(|(id, _)| {
                id.name() == "engine_rejections_total"
                    && id.labels() == [("reason".to_owned(), "qos".to_owned())]
            })
            .map(|&(_, raw)| raw);
        let raw = exemplar.expect("qos rejection must leave an exemplar");
        assert!(raw > 0, "trace ids are never zero");
        // The exposition surfaces it in both formats.
        assert!(snap.to_prometheus().contains(&format!(
            "# exemplar engine_rejections_total{{reason=\"qos\"}} trace=t{raw}"
        )));
        assert!(snap.to_json().contains(&format!("\"t{raw}\"")));

        // The anomaly hook fires from the watchdog (threshold 0) and
        // carries a reason string the flight recorder latches on.
        let fired = std::sync::Arc::new(AtomicUsize::new(0));
        let seen = std::sync::Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let (fired2, seen2) = (std::sync::Arc::clone(&fired), std::sync::Arc::clone(&seen));
        engine.set_anomaly_hook(std::sync::Arc::new(move |reason, _detail| {
            fired2.fetch_add(1, Ordering::Relaxed);
            seen2.lock().unwrap().push(reason);
        }));
        engine.set_lock_hold_threshold_ns(0);
        let ok = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(500));
        engine.admit(&route, ok).unwrap();
        assert!(fired.load(Ordering::Relaxed) > 0, "watchdog must fire hook");
        assert!(seen.lock().unwrap().contains(&"lock_hold"));
        // Clean audits stay silent.
        engine.set_lock_hold_threshold_ns(DEFAULT_LOCK_HOLD_THRESHOLD_NS);
        let before = fired.load(Ordering::Relaxed);
        assert_eq!(engine.publish_orphan_audit(), 0);
        assert!(engine.verify_guarantees().unwrap().is_empty());
        assert_eq!(fired.load(Ordering::Relaxed), before);
    }

    #[test]
    fn serial_parity_with_signaling_network() {
        let (topology, src, sw, dst) = builders::line(3).unwrap();
        let config = SwitchConfig::uniform(2, Time::from_integer(64)).unwrap();
        let route = Route::from_nodes(
            &topology,
            std::iter::once(src)
                .chain(sw.iter().copied())
                .chain(std::iter::once(dst)),
        )
        .unwrap();
        let engine = AdmissionEngine::new(topology.clone(), config.clone(), CdvPolicy::SoftSqrt);
        let mut net = Network::new(topology, config, CdvPolicy::SoftSqrt);
        // Drive identical request sequences through both; the outcomes
        // must agree pairwise.
        for k in 1..=8 {
            let req = SetupRequest::new(
                cbr(1, 4 + i128::from(k % 3)),
                Priority::new(u8::from(k % 2 == 0)),
                Time::from_integer(500),
            );
            let via_engine = engine.admit(&route, req).unwrap();
            let via_net = net.setup(&route, req).unwrap();
            match (&via_engine, &via_net) {
                (EngineOutcome::Admitted { .. }, SetupOutcome::Connected(_)) => {}
                (EngineOutcome::Rejected { rejection: a, .. }, SetupOutcome::Rejected(b)) => {
                    assert_eq!(a, b)
                }
                (a, b) => panic!("engine said {a:?}, network said {b:?}"),
            }
        }
        assert_eq!(engine.connection_count(), net.connections().count());
    }

    #[test]
    fn duplicate_id_is_an_error() {
        let (engine, route) = line_engine(1, 64);
        let req = SetupRequest::new(cbr(1, 16), Priority::HIGHEST, Time::from_integer(500));
        let id = engine.allocate_id();
        assert!(engine.admit_with_id(id, &route, req).unwrap().is_admitted());
        assert_eq!(
            engine.admit_with_id(id, &route, req),
            Err(EngineError::DuplicateConnection(id))
        );
        assert_eq!(
            engine.release(ConnectionId::new(999)),
            Err(EngineError::UnknownConnection(ConnectionId::new(999)))
        );
    }

    #[test]
    fn unchanged_tables_serve_cached_bounds() {
        let (engine, route) = line_engine(2, 256);
        let req = SetupRequest::new(cbr(1, 64), Priority::HIGHEST, Time::from_integer(2_000));
        assert!(engine.admit(&route, req).unwrap().is_admitted());
        // Same epoch, same key: the second lookup must be a hit.
        let (node, out_link) = route.queueing_points(engine.topology()).unwrap()[0];
        let first = engine
            .computed_bound(node, out_link, Priority::HIGHEST)
            .unwrap();
        let hits_before = engine.stats().cache_hits;
        let second = engine
            .computed_bound(node, out_link, Priority::HIGHEST)
            .unwrap();
        assert_eq!(first, second);
        assert!(
            engine.stats().cache_hits > hits_before,
            "repeat lookup at an unchanged epoch must hit: {:?}",
            engine.stats()
        );
    }

    #[test]
    fn drain_mode_rejects_new_setups() {
        let (engine, route) = line_engine(2, 64);
        engine.set_draining(true);
        assert!(engine.is_draining());
        let req = SetupRequest::new(cbr(1, 16), Priority::HIGHEST, Time::from_integer(500));
        match engine.admit(&route, req).unwrap() {
            EngineOutcome::Rejected {
                rejection: SetupRejection::Draining,
                ..
            } => {}
            other => panic!("expected a draining rejection, got {other:?}"),
        }
        engine.set_draining(false);
        assert!(engine.admit(&route, req).unwrap().is_admitted());
        let stats = engine.stats();
        assert_eq!((stats.rejected, stats.admitted), (1, 1));
        assert_eq!(stats.submitted, stats.rejected + stats.admitted);
    }

    #[test]
    fn link_failure_forces_release_and_reroutes_new_setups() {
        let sr = builders::dual_star_ring(4, 1).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
        let engine = AdmissionEngine::new(sr.topology().clone(), config, CdvPolicy::Hard);
        let route = sr.terminal_route((0, 0), (1, 0)).unwrap();
        let req = SetupRequest::new(cbr(1, 16), Priority::HIGHEST, Time::from_integer(500));
        let id = match engine.admit(&route, req).unwrap() {
            EngineOutcome::Admitted { id, .. } => id,
            other => panic!("expected admission, got {other:?}"),
        };
        let dead = sr.ring_link(0).unwrap();
        let impact = engine.fail_link(dead).unwrap();
        assert!(impact.is_changed());
        assert_eq!(impact.torn_down(), &[id]);
        assert_eq!(engine.connection_count(), 0);
        assert!(engine.orphaned_reservations().is_empty());
        assert!(!engine.link_usable(dead).unwrap());
        // Idempotent: failing an already-failed link changes nothing.
        assert!(!engine.fail_link(dead).unwrap().is_changed());
        // A fresh setup over the dead primary is rerouted onto the
        // counter-rotating ring.
        match engine.admit(&route, req).unwrap() {
            EngineOutcome::Rerouted {
                route: alt,
                attempts,
                ..
            } => {
                assert!(attempts >= 1);
                assert!(!alt.links().contains(&dead));
            }
            other => panic!("expected a reroute, got {other:?}"),
        }
        assert!(engine.heal_link(dead).unwrap());
        assert!(!engine.heal_link(dead).unwrap());
        let stats = engine.stats();
        assert_eq!(
            (stats.failed_over, stats.rerouted, stats.admitted),
            (1, 1, 1)
        );
        assert_eq!(
            stats.submitted,
            stats.admitted + stats.rejected + stats.aborted + stats.errored + stats.rerouted
        );
        assert!(engine.health_epoch() >= 2);
        assert!(engine.verify_guarantees().unwrap().is_empty());
    }

    #[test]
    fn node_failure_tears_down_transit_connections_only() {
        let sr = builders::dual_star_ring(4, 1).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
        let engine = AdmissionEngine::new(sr.topology().clone(), config, CdvPolicy::Hard);
        let req = SetupRequest::new(cbr(1, 16), Priority::HIGHEST, Time::from_integer(500));
        // Crosses ring node 1 in transit; the second route does not.
        let transit = sr.terminal_route((0, 0), (2, 0)).unwrap();
        let clear = sr.terminal_route((3, 0), (0, 0)).unwrap();
        let transit_id = match engine.admit(&transit, req).unwrap() {
            EngineOutcome::Admitted { id, .. } => id,
            other => panic!("expected admission, got {other:?}"),
        };
        assert!(engine.admit(&clear, req).unwrap().is_admitted());
        let impact = engine.fail_node(sr.ring_nodes()[1]).unwrap();
        assert!(impact.is_changed());
        assert_eq!(impact.torn_down(), &[transit_id]);
        assert_eq!(engine.connection_count(), 1);
        assert!(engine.orphaned_reservations().is_empty());
        assert!(engine.heal_node(sr.ring_nodes()[1]).unwrap());
        assert!(!engine.heal_node(sr.ring_nodes()[1]).unwrap());
        assert_eq!(engine.stats().failed_over, 1);
    }

    #[test]
    fn failure_between_reserve_and_commit_reroutes() {
        let sr = builders::dual_star_ring(4, 1).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
        let registry = std::sync::Arc::new(rtcac_obs::Registry::new());
        let engine = AdmissionEngine::with_registry(
            sr.topology().clone(),
            config,
            CdvPolicy::Hard,
            std::sync::Arc::clone(&registry),
        );
        let route = sr.terminal_route((0, 0), (1, 0)).unwrap();
        let dead = sr.ring_link(0).unwrap();
        *engine.test_fail_after_reserve.lock().unwrap() = Some(dead);
        let req = SetupRequest::new(cbr(1, 16), Priority::HIGHEST, Time::from_integer(500));
        match engine.admit(&route, req).unwrap() {
            EngineOutcome::Rerouted {
                route: alt,
                attempts,
                ..
            } => {
                assert_eq!(attempts, 1);
                assert!(!alt.links().contains(&dead));
            }
            other => panic!("expected a reroute, got {other:?}"),
        }
        // The aborted reserve left no residue: every shard reservation
        // belongs to the committed (alternate) route.
        assert!(engine.orphaned_reservations().is_empty());
        let stats = engine.stats();
        assert_eq!((stats.submitted, stats.rerouted, stats.admitted), (1, 1, 0));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("engine_setups_rerouted_total"), Some(1));
        assert_eq!(snap.histogram("engine_reroute_ns").unwrap().count, 1);
    }

    #[test]
    fn dead_route_without_alternate_is_rejected_route_down() {
        let (engine, route) = line_engine(2, 64);
        let dead = route.links()[1];
        assert!(engine.fail_link(dead).unwrap().is_changed());
        let req = SetupRequest::new(cbr(1, 16), Priority::HIGHEST, Time::from_integer(500));
        match engine.admit(&route, req).unwrap() {
            EngineOutcome::Rejected {
                rejection: SetupRejection::RouteDown { link },
                ..
            } => assert_eq!(link, dead),
            other => panic!("expected a route-down rejection, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!((stats.rejected, stats.submitted), (1, 1));
    }

    #[test]
    fn verify_guarantees_holds_for_committed_state() {
        let (engine, route) = line_engine(3, 32);
        for _ in 0..2 {
            let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(200));
            assert!(engine.admit(&route, req).unwrap().is_admitted());
        }
        assert!(engine.verify_guarantees().unwrap().is_empty());
        assert!(engine.orphaned_reservations().is_empty());
    }

    #[test]
    fn multicast_roundtrip_through_the_shared_core() {
        let sr = builders::star_ring(4, 1).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
        let engine = AdmissionEngine::new(sr.topology().clone(), config, CdvPolicy::Hard);
        let tree = sr.broadcast_tree(0, 0).unwrap();
        let req = SetupRequest::new(cbr(1, 16), Priority::HIGHEST, Time::from_integer(2_000));
        let id = match engine.admit_multicast(&tree, req).unwrap() {
            EngineOutcome::Admitted {
                id,
                guaranteed_delay,
            } => {
                assert!(guaranteed_delay > Time::ZERO);
                id
            }
            other => panic!("expected admission, got {other:?}"),
        };
        // One bound per leaf terminal (the three other terminals).
        let per_leaf = engine.per_leaf_bounds(id).unwrap();
        assert_eq!(per_leaf.len(), 3);
        assert!(per_leaf.iter().all(|&(_, d)| d > Time::ZERO));
        assert_eq!(engine.publish_orphan_audit(), 0);
        assert!(engine.verify_guarantees().unwrap().is_empty());
        engine.release(id).unwrap();
        assert_eq!(engine.connection_count(), 0);
        assert_eq!(engine.publish_orphan_audit(), 0);
        let stats = engine.stats();
        assert_eq!(
            (
                stats.mcast_submitted,
                stats.mcast_admitted,
                stats.mcast_rejected
            ),
            (1, 1, 0)
        );
        assert_eq!((stats.submitted, stats.admitted, stats.released), (1, 1, 1));
    }

    #[test]
    fn link_failure_tears_down_tree_connections() {
        let sr = builders::star_ring(4, 1).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
        let engine = AdmissionEngine::new(sr.topology().clone(), config, CdvPolicy::Hard);
        let tree = sr.broadcast_tree(0, 0).unwrap();
        let req = SetupRequest::new(cbr(1, 16), Priority::HIGHEST, Time::from_integer(2_000));
        let id = match engine.admit_multicast(&tree, req).unwrap() {
            EngineOutcome::Admitted { id, .. } => id,
            other => panic!("expected admission, got {other:?}"),
        };
        let dead = sr.ring_link(1).unwrap();
        assert!(tree.links().contains(&dead), "tree must cross the ring");
        let impact = engine.fail_link(dead).unwrap();
        assert_eq!(impact.torn_down(), &[id]);
        assert_eq!(engine.connection_count(), 0);
        assert!(engine.orphaned_reservations().is_empty());
        // A fresh tree over the dead link is refused route-down — the
        // engine has no alternate-tree crankback.
        match engine.admit_multicast(&tree, req).unwrap() {
            EngineOutcome::Rejected {
                rejection: SetupRejection::RouteDown { link },
                ..
            } => assert_eq!(link, dead),
            other => panic!("expected a route-down rejection, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!((stats.failed_over, stats.mcast_rejected), (1, 1));
        assert_eq!(
            stats.submitted,
            stats.admitted + stats.rejected + stats.aborted + stats.errored + stats.rerouted
        );
    }

    #[test]
    fn epoch_advances_on_commit_and_release() {
        let (engine, route) = line_engine(1, 64);
        let node = route.queueing_points(engine.topology()).unwrap()[0].0;
        let before = engine.shard_epoch(node).unwrap();
        let req = SetupRequest::new(cbr(1, 16), Priority::HIGHEST, Time::from_integer(500));
        let id = match engine.admit(&route, req).unwrap() {
            EngineOutcome::Admitted { id, .. } => id,
            other => panic!("expected admission, got {other:?}"),
        };
        let mid = engine.shard_epoch(node).unwrap();
        assert!(mid > before);
        engine.release(id).unwrap();
        assert!(engine.shard_epoch(node).unwrap() > mid);
    }
}
