//! `rtcac-engine` — a concurrent, sharded connection admission engine.
//!
//! This crate wraps the per-switch CAC of [`rtcac_cac`] in an engine
//! that serves many setup requests concurrently while producing results
//! indistinguishable from *some* serial order through
//! [`rtcac_signaling::Network`]:
//!
//! * **Shards** — one [`rtcac_cac::Switch`] plus one
//!   [`rtcac_cac::SofCache`] per switch node, each behind its own mutex.
//! * **Two-phase setups** — phase 1 reserves capacity hop by hop with
//!   every route shard locked in ascending [`rtcac_net::NodeId`] order
//!   (a global lock order, hence deadlock-free); phase 2 commits, or
//!   aborts with full rollback before any lock is dropped. CDV
//!   accumulation follows [`rtcac_signaling::CdvPolicy`] exactly. The
//!   per-hop lifecycle itself — shaping, pricing, the reserve walk and
//!   its rollback order — is the shared [`rtcac_cac::ReservationPlan`]
//!   core, so unicast routes and multicast trees
//!   ([`AdmissionEngine::admit_multicast`]) take the same path the
//!   serial [`rtcac_signaling::Network`] drivers take.
//! * **Memoization** — delay-bound and interference computations
//!   (Algorithm 4.1 and the Sof tables) are cached per shard, keyed by
//!   (out-link, priority, table epoch); the epoch bumps on every commit
//!   and release, so a cached value can never be stale.
//! * **Worker pools** — [`EnginePool`] runs a fixed set of
//!   `std::thread` workers pulling a *batch* of jobs from an `mpsc`
//!   submission queue; [`ServicePool`] is its resident sibling, serving
//!   setups indefinitely with per-job reply channels (the front end the
//!   `rtcac-serve` admission service dispatches onto).
//! * **Statistics** — lock-free submitted/admitted/rejected/aborted/
//!   released counters plus per-shard cache hit/miss totals,
//!   snapshotted as [`EngineStats`] (invariant: every submitted setup
//!   lands in exactly one outcome bucket).
//! * **Observability** — phase timings (reserve/commit/rollback),
//!   per-shard lock-wait histograms, cache hit/miss counters and abort
//!   events, recorded through [`rtcac_obs`] handles that are no-ops
//!   (near-zero cost, no clock reads) when no registry is installed.
//!   Use [`AdmissionEngine::with_registry`] for an explicit registry.

#![forbid(unsafe_code)]

mod engine;
mod error;
mod metrics;
mod pool;
mod shard;
mod state;
mod stats;

pub use engine::{
    AdmissionEngine, AnomalyHook, EngineOutcome, FailureImpact, GuaranteeViolation,
    DEFAULT_LOCK_HOLD_THRESHOLD_NS,
};
pub use error::EngineError;
pub use pool::{run_batch, EnginePool, JobResult, ServicePool};
pub use state::{ConnectionState, EngineState, HealthOverlayState, SwitchState};
pub use stats::EngineStats;
