//! Per-switch shards: one lock, one [`Switch`], one [`SofCache`].

use std::sync::{Mutex, MutexGuard};

use rtcac_cac::{SofCache, Switch, SwitchConfig};

/// The state guarded by one shard lock.
#[derive(Debug)]
pub(crate) struct ShardState {
    pub switch: Switch,
    pub cache: SofCache,
}

/// One shard: a CAC-managed switch plus its memoization cache behind a
/// single mutex. Shards are only ever locked in ascending `NodeId`
/// order (see the two-phase protocol in [`crate::AdmissionEngine`]),
/// which rules out deadlock.
#[derive(Debug)]
pub(crate) struct Shard {
    state: Mutex<ShardState>,
}

impl Shard {
    pub fn new(config: SwitchConfig) -> Shard {
        Shard::from_switch(Switch::new(config))
    }

    /// Wraps an already-populated switch (the warm-restart path) with a
    /// cold cache — correct because cache entries are epoch-tagged
    /// memoization and misses recompute identical results.
    pub fn from_switch(switch: Switch) -> Shard {
        Shard {
            state: Mutex::new(ShardState {
                switch,
                cache: SofCache::new(),
            }),
        }
    }

    /// Locks the shard. Mutex poisoning is unrecoverable for admission
    /// state (a panicked worker may have left a half-reserved setup),
    /// so it propagates as a panic rather than a lying `Ok`.
    pub fn lock(&self) -> MutexGuard<'_, ShardState> {
        self.state.lock().expect("shard mutex poisoned")
    }
}
