//! Pre-resolved observability handles for the engine hot path.
//!
//! Every handle is resolved once at engine construction; the admission
//! path never touches the registry again. With no registry installed
//! all handles are no-ops, `live` is false, and the hot path performs
//! neither clock reads nor atomic updates — instrumentation cost is a
//! handful of branches.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use rtcac_net::NodeId;
use rtcac_obs::{Counter, Exemplar, Gauge, Histogram, Registry};

/// The engine's metric handles (all no-op by default).
#[derive(Debug, Default)]
pub(crate) struct EngineMetrics {
    /// Whether any registry backs these handles (gates clock reads).
    pub live: bool,
    /// Kept for the event ring (abort events).
    pub registry: Option<Arc<Registry>>,
    pub submitted: Counter,
    pub admitted: Counter,
    pub rejected: Counter,
    pub aborted: Counter,
    pub released: Counter,
    pub errored: Counter,
    pub rerouted: Counter,
    pub failed_over: Counter,
    pub mcast_submitted: Counter,
    pub mcast_admitted: Counter,
    pub mcast_rejected: Counter,
    pub reject_qos: Counter,
    pub reject_switch: Counter,
    pub reject_route_down: Counter,
    pub reject_draining: Counter,
    /// Most-recent rejected trace per reason — lets an operator jump
    /// from "rejects/s spiked" to a concrete trace's provenance.
    pub exemplar_qos: Exemplar,
    pub exemplar_switch: Exemplar,
    pub exemplar_route_down: Exemplar,
    pub exemplar_draining: Exemplar,
    pub link_failures: Counter,
    pub link_heals: Counter,
    pub node_failures: Counter,
    pub node_heals: Counter,
    pub orphaned: Gauge,
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    pub reserve_ns: Histogram,
    pub commit_ns: Histogram,
    pub rollback_ns: Histogram,
    pub reroute_ns: Histogram,
    pub lock_wait_ns: BTreeMap<NodeId, Histogram>,
    /// Lock-health watchdog: how long each setup/release held its full
    /// set of shard locks, and how often a hold exceeded the engine's
    /// configured threshold (see
    /// `AdmissionEngine::set_lock_hold_threshold_ns`).
    pub lock_hold_ns: Histogram,
    pub lock_hold_long: Counter,
}

impl EngineMetrics {
    /// Handles resolved against `registry`, with one lock-wait
    /// histogram per switch shard.
    pub fn from_registry(
        registry: Arc<Registry>,
        nodes: impl Iterator<Item = NodeId>,
    ) -> EngineMetrics {
        let r = &*registry;
        let lock_wait_ns = nodes
            .map(|node| {
                let shard = node.to_string();
                (
                    node,
                    r.histogram_with("engine_shard_lock_wait_ns", &[("shard", &shard)]),
                )
            })
            .collect();
        EngineMetrics {
            live: true,
            submitted: r.counter("engine_setups_submitted_total"),
            admitted: r.counter("engine_setups_admitted_total"),
            rejected: r.counter("engine_setups_rejected_total"),
            aborted: r.counter("engine_setups_aborted_total"),
            released: r.counter("engine_released_total"),
            errored: r.counter("engine_setup_errors_total"),
            rerouted: r.counter("engine_setups_rerouted_total"),
            failed_over: r.counter("engine_failed_over_total"),
            mcast_submitted: r.counter("engine_mcast_setups_submitted_total"),
            mcast_admitted: r.counter("engine_mcast_setups_admitted_total"),
            mcast_rejected: r.counter("engine_mcast_setups_rejected_total"),
            reject_qos: r.counter_with("engine_rejections_total", &[("reason", "qos")]),
            reject_switch: r.counter_with("engine_rejections_total", &[("reason", "switch")]),
            reject_route_down: r
                .counter_with("engine_rejections_total", &[("reason", "route_down")]),
            reject_draining: r.counter_with("engine_rejections_total", &[("reason", "draining")]),
            exemplar_qos: r.exemplar_with("engine_rejections_total", &[("reason", "qos")]),
            exemplar_switch: r.exemplar_with("engine_rejections_total", &[("reason", "switch")]),
            exemplar_route_down: r
                .exemplar_with("engine_rejections_total", &[("reason", "route_down")]),
            exemplar_draining: r
                .exemplar_with("engine_rejections_total", &[("reason", "draining")]),
            link_failures: r.counter_with("engine_element_failures_total", &[("element", "link")]),
            link_heals: r.counter_with("engine_element_heals_total", &[("element", "link")]),
            node_failures: r.counter_with("engine_element_failures_total", &[("element", "node")]),
            node_heals: r.counter_with("engine_element_heals_total", &[("element", "node")]),
            orphaned: r.gauge("engine_orphaned_reservations"),
            cache_hits: r.counter("engine_sof_cache_hits_total"),
            cache_misses: r.counter("engine_sof_cache_misses_total"),
            reserve_ns: r.histogram("engine_reserve_ns"),
            commit_ns: r.histogram("engine_commit_ns"),
            rollback_ns: r.histogram("engine_rollback_ns"),
            reroute_ns: r.histogram("engine_reroute_ns"),
            lock_wait_ns,
            lock_hold_ns: r.histogram("engine_lock_hold_ns"),
            lock_hold_long: r.counter("engine_lock_hold_long_total"),
            registry: Some(registry),
        }
    }

    /// Handles resolved against the installed global registry, or
    /// no-ops when none is installed.
    pub fn from_global(nodes: impl Iterator<Item = NodeId>) -> EngineMetrics {
        match rtcac_obs::global() {
            Some(r) => EngineMetrics::from_registry(Arc::clone(r), nodes),
            None => EngineMetrics::default(),
        }
    }

    /// A phase start time — `None` (no clock read) when not live.
    pub fn start(&self) -> Option<Instant> {
        self.live.then(Instant::now)
    }

    /// Records the elapsed time since a [`EngineMetrics::start`] mark.
    pub fn record_since(&self, start: Option<Instant>, histogram: &Histogram) {
        if let Some(start) = start {
            histogram.record_duration(start.elapsed());
        }
    }

    /// Records an abort event into the registry's event ring, if any.
    pub fn record_abort_event(&self, detail: String) {
        if let Some(r) = &self.registry {
            r.events().record("engine.abort", detail);
        }
    }
}
