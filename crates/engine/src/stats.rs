//! Atomic engine counters and their snapshot form.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters updated by worker threads as setups complete.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub admitted: AtomicU64,
    pub rejected: AtomicU64,
    pub aborted: AtomicU64,
    pub released: AtomicU64,
}

impl Counters {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of the engine's counters.
///
/// `admitted + rejected` equals the number of completed setups;
/// `aborted` counts the subset of rejections that had already reserved
/// at least one upstream hop and had to roll it back (phase 2 abort).
/// The cache counters aggregate every shard's [`SofCache`]
/// hit/miss totals.
///
/// [`SofCache`]: rtcac_cac::SofCache
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Setups committed end to end.
    pub admitted: u64,
    /// Setups rejected (QoS gate or a switch refusing a hop).
    pub rejected: u64,
    /// Rejected setups that rolled back one or more reserved hops.
    pub aborted: u64,
    /// Connections released (torn down) through the engine.
    pub released: u64,
    /// Delay-bound / interference lookups served from a shard cache.
    pub cache_hits: u64,
    /// Lookups that had to recompute (cold or stale epoch).
    pub cache_misses: u64,
}

impl EngineStats {
    /// Total setups processed to completion.
    pub fn completed(&self) -> u64 {
        self.admitted + self.rejected
    }
}
