//! Atomic engine counters and their snapshot form.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters updated by worker threads as setups complete.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub admitted: AtomicU64,
    pub rejected: AtomicU64,
    pub aborted: AtomicU64,
    pub errored: AtomicU64,
    pub rerouted: AtomicU64,
    pub released: AtomicU64,
    pub failed_over: AtomicU64,
    pub mcast_submitted: AtomicU64,
    pub mcast_admitted: AtomicU64,
    pub mcast_rejected: AtomicU64,
}

impl Counters {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of the engine's counters.
///
/// Every submitted setup lands in exactly **one** of `admitted`,
/// `rejected`, `aborted`, `errored` or `rerouted`, so once the engine
/// is quiescent
///
/// ```text
/// submitted == admitted + rejected + aborted + errored + rerouted
/// ```
///
/// holds exactly (`errored` is zero unless callers misuse the API).
/// `aborted` counts setups refused *after* reserving at least one
/// upstream hop — the phase-2 rollbacks — while `rejected` counts
/// refusals that reserved nothing (the QoS gate or the first hop
/// refusing); the two are disjoint. `rerouted` counts setups that
/// committed on an *alternate* route after their submitted route died
/// under them — disjoint from `admitted`. The cache counters aggregate
/// every shard's [`SofCache`] hit/miss totals.
///
/// [`SofCache`]: rtcac_cac::SofCache
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Setups that entered the engine (before any outcome).
    pub submitted: u64,
    /// Setups committed end to end.
    pub admitted: u64,
    /// Setups refused without reserving any hop (QoS gate or the
    /// first hop refusing).
    pub rejected: u64,
    /// Setups refused after reserving one or more hops, all rolled
    /// back (disjoint from `rejected`).
    pub aborted: u64,
    /// Setups that failed with an API-misuse error instead of an
    /// outcome.
    pub errored: u64,
    /// Setups committed on an alternate route after a failure killed
    /// the submitted one (disjoint from `admitted`).
    pub rerouted: u64,
    /// Connections released (torn down) through the engine.
    pub released: u64,
    /// Connections force-released because an element on their route
    /// failed (disjoint from `released`).
    pub failed_over: u64,
    /// Delay-bound / interference lookups served from a shard cache.
    pub cache_hits: u64,
    /// Lookups that had to recompute (cold or stale epoch).
    pub cache_misses: u64,
    /// Point-to-multipoint setups that entered the engine (a subset of
    /// `submitted`; tree setups land in the same outcome buckets).
    pub mcast_submitted: u64,
    /// Tree setups committed on every leg (a subset of `admitted`).
    pub mcast_admitted: u64,
    /// Tree setups refused — QoS gate, a leg refusing (rolled back), a
    /// dead tree, or drain mode (a subset of `rejected + aborted`).
    pub mcast_rejected: u64,
}

impl EngineStats {
    /// Total setups processed to a decision
    /// (`admitted + rejected + aborted + rerouted`).
    pub fn completed(&self) -> u64 {
        self.admitted + self.rejected + self.aborted + self.rerouted
    }
}
