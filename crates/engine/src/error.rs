//! Engine error type.

use std::fmt;

use rtcac_cac::{CacError, ConnectionId};
use rtcac_net::{NetError, NodeId};
use rtcac_signaling::SignalError;

/// API-misuse and internal failures of the admission engine.
///
/// A connection that merely does not fit is *not* an error — it is
/// reported as [`EngineOutcome::Rejected`](crate::EngineOutcome).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The route references a node with no managed switch shard.
    NoSwitchAt(NodeId),
    /// A connection with this id is already established.
    DuplicateConnection(ConnectionId),
    /// No connection with this id is established.
    UnknownConnection(ConnectionId),
    /// Signaling-level failure (CDV accumulation).
    Signal(SignalError),
    /// Topology-level failure (invalid route or link).
    Net(NetError),
    /// Switch-level failure (misconfiguration or internal numeric
    /// failure).
    Cac(CacError),
    /// One or more pool workers panicked mid-batch, so some submitted
    /// setups never produced a result. The engine counters still
    /// account for every setup that *reached* a decision, but the batch
    /// as a whole is incomplete and must not be treated as a silent
    /// undercount.
    WorkerPanicked {
        /// Worker threads whose join reported a panic.
        workers: usize,
        /// Submitted jobs that never produced a result.
        missing: u64,
    },
    /// The resident service pool has shut down (or its worker died), so
    /// the submitted setup was never decided. Unlike
    /// [`EngineError::WorkerPanicked`] this is a per-job verdict: the
    /// caller knows exactly which setup was dropped and can retry
    /// against a live pool.
    ServiceStopped,
    /// A state restore was refused before any of it became visible —
    /// the snapshot is inconsistent with the target topology or fails
    /// the post-rebuild guarantee/orphan audit. The engine (or the
    /// pre-restore engine, for in-place adoption) is left untouched.
    RestoreRefused(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoSwitchAt(n) => write!(f, "no switch shard at node {n}"),
            EngineError::DuplicateConnection(id) => {
                write!(f, "connection {id} is already established")
            }
            EngineError::UnknownConnection(id) => {
                write!(f, "connection {id} is not established")
            }
            EngineError::Signal(e) => write!(f, "signaling error: {e}"),
            EngineError::Net(e) => write!(f, "topology error: {e}"),
            EngineError::Cac(e) => write!(f, "CAC error: {e}"),
            EngineError::WorkerPanicked { workers, missing } => write!(
                f,
                "{workers} pool worker(s) panicked; {missing} job result(s) missing"
            ),
            EngineError::ServiceStopped => {
                write!(f, "the service pool has stopped; the setup was not decided")
            }
            EngineError::RestoreRefused(why) => {
                write!(f, "state restore refused: {why}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SignalError> for EngineError {
    fn from(e: SignalError) -> EngineError {
        EngineError::Signal(e)
    }
}

impl From<NetError> for EngineError {
    fn from(e: NetError) -> EngineError {
        EngineError::Net(e)
    }
}

impl From<CacError> for EngineError {
    fn from(e: CacError) -> EngineError {
        EngineError::Cac(e)
    }
}
