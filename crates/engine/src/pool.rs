//! A fixed worker pool pulling setups from a submission queue.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

use rtcac_cac::ConnectionId;
use rtcac_net::Route;
use rtcac_obs::{SpanId, TraceCtx};
use rtcac_signaling::SetupRequest;

use crate::{AdmissionEngine, EngineError, EngineOutcome};

struct Job {
    ticket: u64,
    id: ConnectionId,
    route: Route,
    request: SetupRequest,
    // The admission trace opens at submission so the span tree also
    // covers the queue wait; the worker closes `queue_span` when it
    // picks the job up.
    ctx: TraceCtx,
    queue_span: SpanId,
}

/// The completed result of one submitted setup.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Submission ticket, in submission order starting at 0.
    pub ticket: u64,
    /// The setup's outcome (or an API-misuse error).
    pub outcome: Result<EngineOutcome, EngineError>,
}

/// A fixed pool of `std::thread` workers serving one
/// [`AdmissionEngine`]: jobs go into an `mpsc` submission queue, idle
/// workers pull from it, and results come back over a result channel.
///
/// ```
/// use std::sync::Arc;
/// use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
/// use rtcac_cac::{Priority, SwitchConfig};
/// use rtcac_engine::{AdmissionEngine, EnginePool};
/// use rtcac_net::builders;
/// use rtcac_rational::ratio;
/// use rtcac_signaling::{CdvPolicy, SetupRequest};
///
/// let sr = builders::star_ring(4, 1)?;
/// let config = SwitchConfig::uniform(1, Time::from_integer(48))?;
/// let engine = Arc::new(AdmissionEngine::new(
///     sr.topology().clone(),
///     config,
///     CdvPolicy::Hard,
/// ));
///
/// let mut pool = EnginePool::new(Arc::clone(&engine), 2);
/// let contract = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 16)))?);
/// for k in 0..3 {
///     let route = sr.ring_route_from_terminal(k, 0, 1)?;
///     pool.submit(route, SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(500)));
/// }
/// let results = pool.finish()?;
/// assert_eq!(results.len(), 3);
/// assert!(results.iter().all(|r| r.outcome.as_ref().unwrap().is_admitted()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct EnginePool {
    engine: Arc<AdmissionEngine>,
    job_tx: Option<mpsc::Sender<Job>>,
    // Kept so submissions cannot fail even if every worker has died;
    // the shortfall is then reported by `finish` instead of a panic at
    // the submission site.
    _job_rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    result_rx: mpsc::Receiver<JobResult>,
    handles: Vec<thread::JoinHandle<()>>,
    submitted: u64,
}

impl EnginePool {
    /// Spawns `workers` threads (at least one) serving `engine`.
    pub fn new(engine: Arc<AdmissionEngine>, workers: usize) -> EnginePool {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = mpsc::channel::<JobResult>();
        let handles = (0..workers.max(1))
            .map(|_| {
                let engine = Arc::clone(&engine);
                let job_rx = Arc::clone(&job_rx);
                let result_tx = result_tx.clone();
                thread::spawn(move || loop {
                    // Hold the receiver lock only for the pull, not for
                    // the admission work.
                    let job = {
                        let rx = job_rx.lock().expect("job queue poisoned");
                        rx.recv()
                    };
                    let Ok(mut job) = job else {
                        break; // queue closed: pool is finishing
                    };
                    job.ctx.end(job.queue_span);
                    let outcome =
                        engine.admit_with_ctx(job.id, &job.route, job.request, &mut job.ctx);
                    job.ctx.finish(AdmissionEngine::outcome_rejects(&outcome));
                    if result_tx
                        .send(JobResult {
                            ticket: job.ticket,
                            outcome,
                        })
                        .is_err()
                    {
                        break; // pool dropped without finish()
                    }
                })
            })
            .collect();
        EnginePool {
            engine,
            job_tx: Some(job_tx),
            _job_rx: job_rx,
            result_rx,
            handles,
            submitted: 0,
        }
    }

    /// The engine this pool serves.
    pub fn engine(&self) -> &Arc<AdmissionEngine> {
        &self.engine
    }

    /// Enqueues a setup; an idle worker will pick it up. Returns the
    /// submission ticket identifying the matching [`JobResult`].
    pub fn submit(&mut self, route: Route, request: SetupRequest) -> u64 {
        let ticket = self.submitted;
        self.submitted += 1;
        let id = self.engine.allocate_id();
        let mut ctx = self.engine.start_trace("engine.admit", id);
        let queue_span = ctx.begin("pool.queue");
        self.job_tx
            .as_ref()
            .expect("pool not finished")
            .send(Job {
                ticket,
                id,
                route,
                request,
                ctx,
                queue_span,
            })
            .expect("a worker is alive");
        ticket
    }

    /// Waits for every submitted job, shuts the workers down, and
    /// returns all results sorted by ticket.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::WorkerPanicked`] if any worker thread
    /// panicked mid-batch — some submitted jobs then never produced a
    /// result, and reporting the shortfall loudly beats returning a
    /// silently short vector.
    pub fn finish(mut self) -> Result<Vec<JobResult>, EngineError> {
        // Close the submission queue first: once the remaining jobs are
        // drained every worker's recv fails and its loop ends, which
        // also guarantees the drain below cannot block forever if a
        // worker has died (the surviving workers eventually drop their
        // result senders).
        self.job_tx = None;
        let mut results: Vec<JobResult> = Vec::with_capacity(self.submitted as usize);
        for _ in 0..self.submitted {
            match self.result_rx.recv() {
                Ok(result) => results.push(result),
                Err(_) => break, // every worker has exited or died
            }
        }
        let mut panicked = 0usize;
        for handle in self.handles.drain(..) {
            if handle.join().is_err() {
                panicked += 1;
            }
        }
        let missing = self.submitted - results.len() as u64;
        if panicked > 0 || missing > 0 {
            return Err(EngineError::WorkerPanicked {
                workers: panicked,
                missing,
            });
        }
        results.sort_by_key(|r| r.ticket);
        Ok(results)
    }
}

/// One queued setup of a [`ServicePool`], answered over its own reply
/// channel instead of a shared ticketed result stream.
struct ServiceJob {
    id: ConnectionId,
    route: Route,
    request: SetupRequest,
    ctx: TraceCtx,
    queue_span: SpanId,
    reply: mpsc::SyncSender<Result<EngineOutcome, EngineError>>,
}

/// The resident variant of [`EnginePool`]: a fixed worker pool that
/// serves setups *indefinitely* — submissions come from any number of
/// threads (e.g. one per client session of `rtcac-serve`), each job is
/// answered over its own reply channel, and the pool keeps running
/// between jobs instead of being consumed by a batch-final `finish`.
///
/// Shutting down ([`ServicePool::shutdown`], or dropping the pool)
/// closes the submission queue; workers finish the jobs already queued
/// and exit. A job submitted after shutdown — or orphaned by a worker
/// panic — resolves to [`EngineError::ServiceStopped`] rather than
/// blocking forever, because each worker replies through a channel
/// whose disconnection the waiting submitter observes.
///
/// ```
/// use std::sync::Arc;
/// use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
/// use rtcac_cac::{Priority, SwitchConfig};
/// use rtcac_engine::{AdmissionEngine, ServicePool};
/// use rtcac_net::builders;
/// use rtcac_rational::ratio;
/// use rtcac_signaling::{CdvPolicy, SetupRequest};
///
/// let sr = builders::star_ring(4, 1)?;
/// let config = SwitchConfig::uniform(1, Time::from_integer(48))?;
/// let engine = Arc::new(AdmissionEngine::new(
///     sr.topology().clone(),
///     config,
///     CdvPolicy::Hard,
/// ));
/// let pool = ServicePool::new(Arc::clone(&engine), 2);
/// let contract = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 16)))?);
/// let route = sr.ring_route_from_terminal(0, 0, 1)?;
/// let outcome = pool
///     .admit(route, SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(500)))?;
/// assert!(outcome.is_admitted());
/// pool.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ServicePool {
    engine: Arc<AdmissionEngine>,
    // `None` once shut down; a Mutex because submitters on many session
    // threads share the pool behind an `Arc`.
    job_tx: Mutex<Option<mpsc::Sender<ServiceJob>>>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl ServicePool {
    /// Spawns `workers` threads (at least one) serving `engine` until
    /// [`ServicePool::shutdown`].
    pub fn new(engine: Arc<AdmissionEngine>, workers: usize) -> ServicePool {
        let (job_tx, job_rx) = mpsc::channel::<ServiceJob>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let handles = (0..workers.max(1))
            .map(|_| {
                let engine = Arc::clone(&engine);
                let job_rx = Arc::clone(&job_rx);
                thread::spawn(move || loop {
                    let job = {
                        let rx = job_rx.lock().expect("service queue poisoned");
                        rx.recv()
                    };
                    let Ok(mut job) = job else {
                        break; // queue closed: pool is shutting down
                    };
                    job.ctx.end(job.queue_span);
                    let outcome =
                        engine.admit_with_ctx(job.id, &job.route, job.request, &mut job.ctx);
                    job.ctx.finish(AdmissionEngine::outcome_rejects(&outcome));
                    // The submitter may have given up (its session
                    // died); the decision is already committed either
                    // way, so a failed send is not an error here.
                    let _ = job.reply.send(outcome);
                })
            })
            .collect();
        ServicePool {
            engine,
            job_tx: Mutex::new(Some(job_tx)),
            handles: Mutex::new(handles),
        }
    }

    /// The engine this pool serves.
    pub fn engine(&self) -> &Arc<AdmissionEngine> {
        &self.engine
    }

    /// Submits one setup and blocks until a worker decides it.
    ///
    /// # Errors
    ///
    /// [`EngineError::ServiceStopped`] if the pool is shut down (or its
    /// worker died before replying); otherwise as
    /// [`AdmissionEngine::admit_with_id`].
    pub fn admit(&self, route: Route, request: SetupRequest) -> Result<EngineOutcome, EngineError> {
        let id = self.engine.allocate_id();
        let mut ctx = self.engine.start_trace("engine.admit", id);
        let queue_span = ctx.begin("pool.queue");
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        {
            let guard = self.job_tx.lock().expect("service pool poisoned");
            let Some(tx) = guard.as_ref() else {
                return Err(EngineError::ServiceStopped);
            };
            if tx
                .send(ServiceJob {
                    id,
                    route,
                    request,
                    ctx,
                    queue_span,
                    reply: reply_tx,
                })
                .is_err()
            {
                return Err(EngineError::ServiceStopped);
            }
        }
        reply_rx.recv().unwrap_or(Err(EngineError::ServiceStopped))
    }

    /// Closes the submission queue and joins every worker; jobs already
    /// queued are still decided first. Idempotent.
    pub fn shutdown(&self) {
        *self.job_tx.lock().expect("service pool poisoned") = None;
        let handles: Vec<_> = self
            .handles
            .lock()
            .expect("service pool poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Convenience: runs a whole batch through a fresh [`EnginePool`] and
/// returns the outcomes in submission order.
///
/// # Errors
///
/// Returns [`EngineError::WorkerPanicked`] if a worker died mid-batch
/// (see [`EnginePool::finish`]).
pub fn run_batch(
    engine: &Arc<AdmissionEngine>,
    jobs: impl IntoIterator<Item = (Route, SetupRequest)>,
    workers: usize,
) -> Result<Vec<Result<EngineOutcome, EngineError>>, EngineError> {
    let mut pool = EnginePool::new(Arc::clone(engine), workers);
    for (route, request) in jobs {
        pool.submit(route, request);
    }
    Ok(pool.finish()?.into_iter().map(|r| r.outcome).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
    use rtcac_cac::{Priority, SwitchConfig};
    use rtcac_net::builders;
    use rtcac_rational::ratio;
    use rtcac_signaling::CdvPolicy;

    fn cbr(num: i128, den: i128) -> TrafficContract {
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(num, den))).unwrap())
    }

    #[test]
    fn concurrent_batch_matches_serial_counts() {
        // Terminal-to-terminal routes within one ring node touch only
        // that node's shard, so 8 ring nodes give 8 disjoint shards
        // that 4 workers can hit truly in parallel.
        let sr = builders::star_ring(8, 2).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
        let engine = Arc::new(AdmissionEngine::new(
            sr.topology().clone(),
            config,
            CdvPolicy::Hard,
        ));
        let jobs: Vec<(Route, SetupRequest)> = (0..8)
            .map(|i| {
                (
                    sr.terminal_route((i, 0), (i, 1)).unwrap(),
                    SetupRequest::new(cbr(1, 4), Priority::HIGHEST, Time::from_integer(500)),
                )
            })
            .collect();
        let outcomes = run_batch(&engine, jobs, 4).unwrap();
        assert_eq!(outcomes.len(), 8);
        for outcome in &outcomes {
            assert!(outcome.as_ref().unwrap().is_admitted());
        }
        assert_eq!(engine.connection_count(), 8);
        assert_eq!(engine.stats().admitted, 8);
    }

    #[test]
    fn contended_shard_admits_serializably() {
        // All jobs share one ring node: the shard lock serializes them
        // and capacity limits how many fit; admitted + rejected must
        // still account for every job.
        let sr = builders::star_ring(4, 2).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(8)).unwrap();
        let engine = Arc::new(AdmissionEngine::new(
            sr.topology().clone(),
            config,
            CdvPolicy::Hard,
        ));
        let jobs: Vec<(Route, SetupRequest)> = (0..6)
            .map(|_| {
                (
                    sr.terminal_route((0, 0), (0, 1)).unwrap(),
                    SetupRequest::new(cbr(1, 3), Priority::HIGHEST, Time::from_integer(500)),
                )
            })
            .collect();
        let outcomes = run_batch(&engine, jobs, 4).unwrap();
        let admitted = outcomes
            .iter()
            .filter(|o| o.as_ref().unwrap().is_admitted())
            .count();
        let stats = engine.stats();
        assert_eq!(stats.completed(), 6);
        assert_eq!(stats.admitted as usize, admitted);
        assert_eq!(engine.connection_count(), admitted);
        assert!(
            admitted < 6,
            "an 8-cell queue cannot hold six 1/3-rate streams"
        );
        assert!(admitted > 0, "at least one stream must fit");
    }

    #[test]
    fn service_pool_serves_concurrent_submitters_and_shuts_down() {
        let sr = builders::star_ring(8, 2).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
        let engine = Arc::new(AdmissionEngine::new(
            sr.topology().clone(),
            config,
            CdvPolicy::Hard,
        ));
        let pool = Arc::new(ServicePool::new(Arc::clone(&engine), 4));
        // Eight submitter threads racing through the shared pool, like
        // eight client sessions of the admission service.
        let submitters: Vec<_> = (0..8)
            .map(|i| {
                let pool = Arc::clone(&pool);
                let route = sr.terminal_route((i, 0), (i, 1)).unwrap();
                thread::spawn(move || {
                    pool.admit(
                        route,
                        SetupRequest::new(cbr(1, 4), Priority::HIGHEST, Time::from_integer(500)),
                    )
                })
            })
            .collect();
        for handle in submitters {
            let outcome = handle.join().unwrap().unwrap();
            assert!(outcome.is_admitted());
        }
        assert_eq!(engine.connection_count(), 8);
        pool.shutdown();
        // Submissions after shutdown fail loudly instead of hanging.
        let route = sr.terminal_route((0, 0), (0, 1)).unwrap();
        match pool.admit(
            route,
            SetupRequest::new(cbr(1, 4), Priority::HIGHEST, Time::from_integer(500)),
        ) {
            Err(EngineError::ServiceStopped) => {}
            other => panic!("expected ServiceStopped, got {other:?}"),
        }
    }

    #[test]
    fn service_pool_worker_death_resolves_the_job() {
        let sr = builders::star_ring(4, 2).unwrap();
        let config = SwitchConfig::uniform(4, Time::from_integer(64)).unwrap();
        let engine = Arc::new(AdmissionEngine::new(
            sr.topology().clone(),
            config,
            CdvPolicy::Hard,
        ));
        let route = sr.terminal_route((0, 0), (0, 1)).unwrap();
        let node = route.queueing_points(engine.topology()).unwrap()[0].0;
        engine.poison_shard(node);
        let pool = ServicePool::new(Arc::clone(&engine), 1);
        // The single worker panics on the poisoned shard; the blocked
        // submitter must get ServiceStopped, not hang forever.
        match pool.admit(
            route,
            SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(500)),
        ) {
            Err(EngineError::ServiceStopped) => {}
            other => panic!("expected ServiceStopped, got {other:?}"),
        }
    }

    #[test]
    fn worker_panic_surfaces_as_an_error_not_an_undercount() {
        let sr = builders::star_ring(4, 2).unwrap();
        let config = SwitchConfig::uniform(4, Time::from_integer(64)).unwrap();
        let engine = Arc::new(AdmissionEngine::new(
            sr.topology().clone(),
            config,
            CdvPolicy::Hard,
        ));
        let route = sr.terminal_route((0, 0), (0, 1)).unwrap();
        let node = route.queueing_points(engine.topology()).unwrap()[0].0;
        // A poisoned shard mutex panics any worker that locks it.
        engine.poison_shard(node);

        let mut pool = EnginePool::new(Arc::clone(&engine), 2);
        for _ in 0..3 {
            pool.submit(
                route.clone(),
                SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(500)),
            );
        }
        match pool.finish() {
            Err(EngineError::WorkerPanicked { workers, missing }) => {
                assert!(workers >= 1, "at least one worker must have died");
                assert!(missing >= 1, "the dead workers' jobs must be reported");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }
}
