//! CDV-inflation semantics under the Alg 4.1 admission test, checked
//! on both drivers: a degraded link inflates the CDV every connection
//! priced across it carries into each downstream hop's admission
//! check, so degradation can only *tighten* decisions (an admitted
//! request may flip to rejected, never the reverse), and healing the
//! link restores the original decisions exactly.
//!
//! Every decision is taken twice — once through the serial signaling
//! walk and once through the sharded engine — and the two
//! [`AdmissionReport`]s must stay byte-identical at both edges of the
//! degrade/heal cycle, the same parity contract `rtcac storm`
//! enforces under random workloads.
//!
//! The tightening test needs fan-in: Alg 4.1 knows that connections
//! sharing one input link are already serialized by it, so a clump on
//! a lone access link cannot overload its own switch. The star below
//! converges five background sources and the probe through distinct
//! access links onto one output port, where the probe's inflated
//! clump (cdv·rate cells released at full link rate) meets 5/8 of the
//! port already spoken for and the backlog breaches the 64-cell bound.

use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
use rtcac_cac::{AdmissionReport, ConnectionId, Priority, SwitchConfig};
use rtcac_engine::{AdmissionEngine, EngineOutcome};
use rtcac_net::{builders, LinkId, Route, Topology};
use rtcac_rational::ratio;
use rtcac_signaling::{CdvPolicy, Network, SetupRequest};

fn cbr(num: i128, den: i128) -> TrafficContract {
    TrafficContract::cbr(CbrParams::new(Rate::new(ratio(num, den))).unwrap())
}

/// Five background sources and one probe source fanning into a single
/// switch with one downstream destination. Returns the topology, the
/// background routes, the probe's route, and the probe's access link.
fn star() -> (Topology, Vec<Route>, Route, LinkId) {
    let mut t = Topology::new();
    let s = t.add_switch("s");
    let d = t.add_end_system("d");
    t.add_link(s, d).unwrap();
    let mut background = Vec::new();
    for k in 0..5 {
        let h = t.add_end_system(format!("h{k}"));
        t.add_link(h, s).unwrap();
        background.push((h, d));
    }
    let hp = t.add_end_system("hp");
    let access = t.add_link(hp, s).unwrap();
    let background = background
        .into_iter()
        .map(|(h, to)| t.shortest_route(h, to).unwrap())
        .collect();
    let probe = t.shortest_route(hp, d).unwrap();
    (t, background, probe, access)
}

/// Decides one probe on fresh serial and engine instances: `background`
/// connections are established first with healthy links, then `extra`
/// CDV inflation is applied to `link` (established connections keep
/// their reservations — inflation changes pricing, not state), then
/// the probe is priced and admitted. Asserts the two drivers' reports
/// are identical and returns (established, report).
fn decide(
    topology: &Topology,
    background: &[(Route, SetupRequest)],
    link: LinkId,
    extra: Time,
    probe_route: &Route,
    probe: SetupRequest,
) -> (bool, AdmissionReport) {
    let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
    let mut network = Network::new(topology.clone(), config.clone(), CdvPolicy::Hard);
    let engine = AdmissionEngine::new(topology.clone(), config, CdvPolicy::Hard);
    engine.set_capture_reports(true);
    engine.set_reroute_budget(0);

    for (k, (route, request)) in background.iter().enumerate() {
        let id = ConnectionId::new(100 + k as u64);
        let outcome = network.setup_with_id(id, route, *request).unwrap();
        assert!(outcome.is_connected(), "background {k} must fit");
        let engine_outcome = engine.admit_with_id(id, route, *request).unwrap();
        assert!(matches!(engine_outcome, EngineOutcome::Admitted { .. }));
    }

    network.set_link_cdv_inflation(link, extra).unwrap();
    engine.set_link_cdv_inflation(link, extra).unwrap();

    let id = ConnectionId::new(1);
    let outcome = network.setup_with_id(id, probe_route, probe).unwrap();
    let serial_report = network
        .last_admission_report()
        .cloned()
        .expect("serial report");
    let engine_outcome = engine.admit_with_id(id, probe_route, probe).unwrap();
    let engine_report = engine.admission_report(id).expect("engine report");

    let serial_ok = outcome.is_connected();
    let engine_ok = matches!(engine_outcome, EngineOutcome::Admitted { .. });
    assert_eq!(
        serial_ok, engine_ok,
        "verdict diverged at inflation {extra}: serial={serial_ok} engine={engine_ok}"
    );
    assert_eq!(
        serial_report, engine_report,
        "admission ledgers diverged at inflation {extra}"
    );
    (serial_ok, serial_report)
}

#[test]
fn degrade_tightens_heal_restores_with_engine_parity() {
    let (topology, bg_routes, probe_route, access) = star();
    let degraded = Time::from_integer(1_000);

    // 5/8 of the output port spoken for before the probe arrives.
    let background: Vec<(Route, SetupRequest)> = bg_routes
        .into_iter()
        .map(|route| {
            (
                route,
                SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(10_000)),
            )
        })
        .collect();

    // A probe ladder from comfortable to infeasible: a trickle whose
    // clump still fits, a rate whose clump breaches the bound, and a
    // budget below the guaranteed floor (rejected either way).
    let probes = [
        SetupRequest::new(cbr(1, 256), Priority::HIGHEST, Time::from_integer(10_000)),
        SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(10_000)),
        SetupRequest::new(cbr(1, 64), Priority::HIGHEST, Time::from_integer(1)),
    ];

    let mut flipped = 0;
    for (k, &probe) in probes.iter().enumerate() {
        let (ok_before, report_before) = decide(
            &topology,
            &background,
            access,
            Time::ZERO,
            &probe_route,
            probe,
        );
        let (ok_degraded, _) = decide(
            &topology,
            &background,
            access,
            degraded,
            &probe_route,
            probe,
        );

        // Inflation only ever adds CDV, so it can flip admit → reject
        // but never reject → admit.
        assert!(
            ok_before || !ok_degraded,
            "probe {k}: degradation loosened the decision"
        );
        if ok_before && !ok_degraded {
            flipped += 1;
        }

        // Healing (inflation back to zero) restores the original
        // decision and the original ledger, on both drivers.
        let (ok_healed, report_healed) = decide(
            &topology,
            &background,
            access,
            Time::ZERO,
            &probe_route,
            probe,
        );
        assert_eq!(ok_healed, ok_before, "probe {k}: heal changed the verdict");
        assert_eq!(
            report_healed, report_before,
            "probe {k}: heal changed the ledger"
        );
    }
    assert!(
        flipped > 0,
        "degradation never tightened any probe — the ladder is too easy"
    );
}

#[test]
fn degrade_and_heal_on_one_live_network_round_trips() {
    // Degrading and then restoring the same link on *one* network (and
    // one engine) leaves subsequent decisions exactly as if the link
    // had never degraded — inflation changes pricing, not state.
    let (topology, src, _switches, dst) = builders::line(3).unwrap();
    let route = topology.shortest_route(src, dst).unwrap();
    let first = route.links()[0];
    let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
    let request = SetupRequest::new(cbr(1, 4), Priority::HIGHEST, Time::from_integer(500));

    let mut network = Network::new(topology.clone(), config.clone(), CdvPolicy::Hard);
    let engine = AdmissionEngine::new(topology.clone(), config, CdvPolicy::Hard);
    engine.set_capture_reports(true);
    engine.set_reroute_budget(0);

    // Degrade, then heal, then decide.
    network
        .set_link_cdv_inflation(first, Time::from_integer(1_000))
        .unwrap();
    network.set_link_cdv_inflation(first, Time::ZERO).unwrap();
    assert_eq!(network.link_cdv_inflation(first), Time::ZERO);
    engine
        .set_link_cdv_inflation(first, Time::from_integer(1_000))
        .unwrap();
    engine.set_link_cdv_inflation(first, Time::ZERO).unwrap();
    assert_eq!(engine.link_cdv_inflation(first), Time::ZERO);

    let id = ConnectionId::new(1);
    network.setup_with_id(id, &route, request).unwrap();
    let serial = network
        .last_admission_report()
        .cloned()
        .expect("serial report");
    engine.admit_with_id(id, &route, request).unwrap();
    let concurrent = engine.admission_report(id).expect("engine report");
    assert_eq!(serial, concurrent);

    // And it matches a network that never saw the degradation.
    let (_, pristine) = decide(&topology, &[], first, Time::ZERO, &route, request);
    assert_eq!(serial, pristine);
}
