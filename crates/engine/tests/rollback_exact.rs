//! Rollback exactness: a setup refused at the *last* hop of a
//! multi-shard route must leave every earlier shard observationally
//! identical to its pre-reserve state — same table epoch, same
//! connection count, same computed bounds, and a still-warm
//! [`SofCache`](rtcac_cac::SofCache) (the pre-reserve entries must
//! keep serving hits, since the tables they describe are back).

use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
use rtcac_cac::{Priority, SwitchConfig};
use rtcac_engine::{AdmissionEngine, EngineOutcome};
use rtcac_net::builders;
use rtcac_rational::ratio;
use rtcac_signaling::{CdvPolicy, SetupRejection, SetupRequest};

fn cbr(num: i128, den: i128) -> TrafficContract {
    TrafficContract::cbr(CbrParams::new(Rate::new(ratio(num, den))).unwrap())
}

#[test]
fn last_hop_rejection_leaves_earlier_shards_bit_identical() {
    let sr = builders::star_ring(4, 2).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
    let engine = AdmissionEngine::new(sr.topology().clone(), config, CdvPolicy::Hard);

    // Saturate the destination terminal's downlink with local traffic
    // so the cross setup's LAST hop is the one that refuses.
    for _ in 0..2 {
        let local = sr.terminal_route((1, 1), (1, 0)).unwrap();
        let req = SetupRequest::new(cbr(2, 5), Priority::HIGHEST, Time::from_integer(500));
        assert!(engine.admit(&local, req).unwrap().is_admitted());
    }

    let cross = sr.terminal_route((0, 0), (1, 0)).unwrap();
    let points = cross.queueing_points(engine.topology()).unwrap();
    assert!(points.len() >= 2, "route must span multiple shards");
    let (last_node, _) = *points.last().unwrap();
    let earlier = &points[..points.len() - 1];

    // Snapshot every earlier shard: epoch, connection count, and the
    // computed bound at the route's queueing point (warming the cache).
    let pre: Vec<_> = earlier
        .iter()
        .map(|&(node, link)| {
            (
                node,
                link,
                engine.shard_epoch(node).unwrap(),
                engine.shard_connection_count(node).unwrap(),
                engine
                    .computed_bound(node, link, Priority::HIGHEST)
                    .unwrap(),
            )
        })
        .collect();

    let req = SetupRequest::new(cbr(2, 5), Priority::HIGHEST, Time::from_integer(500));
    match engine.admit(&cross, req).unwrap() {
        EngineOutcome::Rejected {
            rejection:
                SetupRejection::Switch {
                    at,
                    hops_rolled_back,
                    ..
                },
            ..
        } => {
            assert_eq!(at, last_node, "the rejection must come from the last hop");
            assert_eq!(hops_rolled_back, earlier.len());
        }
        other => panic!("expected a last-hop rejection, got {other:?}"),
    }

    for (node, link, epoch, count, bound) in pre {
        assert_eq!(
            engine.shard_epoch(node).unwrap(),
            epoch,
            "epoch must rewind to the pre-reserve value at {node}"
        );
        assert_eq!(engine.shard_connection_count(node).unwrap(), count);
        let hits = engine.stats().cache_hits;
        assert_eq!(
            engine
                .computed_bound(node, link, Priority::HIGHEST)
                .unwrap(),
            bound,
            "the recomputed bound at {node} must match the pre-reserve one"
        );
        assert!(
            engine.stats().cache_hits > hits,
            "the pre-reserve cache entry must still serve hits at {node}"
        );
    }
    assert!(engine.orphaned_reservations().is_empty());
    let stats = engine.stats();
    assert_eq!((stats.admitted, stats.aborted), (2, 1));
    assert_eq!(
        stats.submitted,
        stats.admitted + stats.rejected + stats.aborted + stats.errored + stats.rerouted
    );
}
