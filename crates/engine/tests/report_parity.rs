//! Decision-provenance parity: for the same setup sequence over the
//! same topology, the serial signaling walk and the sharded engine
//! must produce *identical* [`AdmissionReport`]s — same per-hop rows
//! (bound, deadline, CDV in/out, verdict) and same end-to-end verdict.
//! Both assemble their rows through the shared
//! `ReservationPlan::report_rows` / `HopRow::record_decision` seam, so
//! any divergence means one driver walked the plan differently.
//!
//! The line topology has a single route per pair, so engine crankback
//! cannot reroute and both sides evaluate exactly the same hops.

use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac_cac::{AdmissionVerdict, ConnectionId, Priority, SwitchConfig};
use rtcac_engine::AdmissionEngine;
use rtcac_net::builders;
use rtcac_obs::{Sampling, Tracer};
use rtcac_rational::ratio;
use rtcac_signaling::{CdvPolicy, Network, SetupRequest};

fn cbr(num: i128, den: i128) -> TrafficContract {
    TrafficContract::cbr(CbrParams::new(Rate::new(ratio(num, den))).unwrap())
}

fn vbr(peak: (i128, i128), sustained: (i128, i128), burst: u64) -> TrafficContract {
    TrafficContract::vbr(
        VbrParams::new(
            Rate::new(ratio(peak.0, peak.1)),
            Rate::new(ratio(sustained.0, sustained.1)),
            burst,
        )
        .unwrap(),
    )
}

#[test]
fn engine_and_serial_reports_are_identical() {
    let (topology, src, _switches, dst) = builders::line(3).unwrap();
    let route = topology.shortest_route(src, dst).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();

    let mut network = Network::new(topology.clone(), config.clone(), CdvPolicy::Hard);
    let engine = AdmissionEngine::new(topology, config, CdvPolicy::Hard);
    engine.set_capture_reports(true);

    // A mixed sequence ending in every reject flavor: admitted CBR and
    // VBR, a long-run overload refused mid-walk, and a QoS-infeasible
    // request refused at pricing.
    let requests = [
        SetupRequest::new(cbr(1, 4), Priority::HIGHEST, Time::from_integer(10_000)),
        SetupRequest::new(
            vbr((1, 8), (1, 16), 4),
            Priority::HIGHEST,
            Time::from_integer(10_000),
        ),
        SetupRequest::new(cbr(7, 8), Priority::HIGHEST, Time::from_integer(10_000)),
        SetupRequest::new(cbr(1, 64), Priority::HIGHEST, Time::from_integer(1)),
    ];

    let mut verdicts = Vec::new();
    for (k, request) in requests.iter().enumerate() {
        let id = ConnectionId::new(k as u64 + 1);
        network.setup_with_id(id, &route, *request).unwrap();
        let serial = network
            .last_admission_report()
            .cloned()
            .expect("serial report");
        engine.admit_with_id(id, &route, *request).unwrap();
        let concurrent = engine.admission_report(id).expect("engine report");
        assert_eq!(serial, concurrent, "report diverged for setup {}", k + 1);
        verdicts.push(concurrent.verdict);
    }

    assert!(matches!(verdicts[0], AdmissionVerdict::Admitted { .. }));
    assert!(matches!(verdicts[1], AdmissionVerdict::Admitted { .. }));
    assert!(
        matches!(verdicts[2], AdmissionVerdict::RejectedHop { .. }),
        "overload must refuse mid-walk, got {:?}",
        verdicts[2]
    );
    assert!(matches!(verdicts[3], AdmissionVerdict::RejectedQos { .. }));
}

#[test]
fn rejects_always_flush_a_trace_with_provenance() {
    let (topology, src, _switches, dst) = builders::line(2).unwrap();
    let route = topology.shortest_route(src, dst).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();

    let mut engine = AdmissionEngine::new(topology, config, CdvPolicy::Hard);
    let tracer = Tracer::new(Sampling::RejectsOnly);
    engine.set_tracer(tracer.clone());

    // Admitted setups are sampled out: nothing reaches the ring.
    let fits = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(10_000));
    assert!(engine.admit(&route, fits).unwrap().is_admitted());
    assert_eq!(tracer.recorded(), 0);

    // A rejection forces its whole trace to flush, carrying the
    // connection id and the reject.provenance event even though the
    // trace was never sampled.
    let too_big = SetupRequest::new(cbr(9, 10), Priority::HIGHEST, Time::from_integer(10_000));
    let outcome = engine.admit(&route, too_big).unwrap();
    assert!(!outcome.is_admitted());

    let spans = tracer.snapshot();
    assert!(!spans.is_empty(), "rejected trace must flush");
    let root = spans.iter().find(|s| s.name == "engine.admit").unwrap();
    assert!(
        root.attrs.iter().any(|(k, _)| *k == "conn"),
        "forced reject flush must carry the connection id, got {:?}",
        root.attrs
    );
    let provenance = spans
        .iter()
        .find(|s| s.name == "reject.provenance")
        .expect("reject.provenance event");
    assert_eq!(provenance.parent, Some(root.span));
    assert!(
        provenance.attrs.iter().any(|(_, v)| v.contains("REJECTED")),
        "provenance detail must name the refusal, got {:?}",
        provenance.attrs
    );
}
