//! Cache-coherence property: under a seeded churn of concurrent-style
//! commits and releases, every memoized delay-bound lookup served by
//! the engine's shard caches must equal the Algorithm 4.1 result
//! computed fresh (uncached) on a mirror `signaling::Network` replaying
//! the same operations.

use std::sync::Arc;

use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac_cac::{ConnectionId, Priority, SwitchConfig};
use rtcac_engine::{AdmissionEngine, EngineOutcome};
use rtcac_net::builders;
use rtcac_rational::ratio;
use rtcac_signaling::{CdvPolicy, Network, SetupOutcome, SetupRequest};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn seeded_contract(rng: &mut Rng) -> TrafficContract {
    if rng.below(2) == 0 {
        let den = 6 + i128::from(rng.below(10));
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, den))).unwrap())
    } else {
        let peak_den = 3 + i128::from(rng.below(3));
        let sust_den = 12 + i128::from(rng.below(12));
        TrafficContract::vbr(
            VbrParams::new(
                Rate::new(ratio(1, peak_den)),
                Rate::new(ratio(1, sust_den)),
                2 + rng.below(5),
            )
            .unwrap(),
        )
    }
}

/// Every cached bound the engine can serve must equal the uncached
/// Algorithm 4.1 recomputation on the mirror network's switch — at
/// every queueing point, for every priority level.
fn assert_bounds_coherent(engine: &AdmissionEngine, net: &Network, priorities: u8) {
    for node in net.topology().switches().map(|n| n.id()) {
        let switch = net.switch(node).unwrap();
        for out_link in switch.active_out_links() {
            for level in 0..priorities {
                let priority = Priority::new(level);
                let cached = engine.computed_bound(node, out_link, priority).unwrap();
                let fresh = switch.computed_bound(out_link, priority).unwrap();
                assert_eq!(
                    cached,
                    fresh,
                    "stale cached bound at node {node}, link {out_link:?}, \
                     priority {level} (epoch {})",
                    engine.shard_epoch(node).unwrap()
                );
            }
        }
    }
}

#[test]
fn cached_bounds_track_commit_release_churn() {
    const PRIORITIES: u8 = 2;
    const OPS: usize = 300;

    let sr = builders::star_ring(4, 2).unwrap();
    let config = SwitchConfig::uniform(PRIORITIES, Time::from_integer(64)).unwrap();
    let engine = Arc::new(AdmissionEngine::new(
        sr.topology().clone(),
        config.clone(),
        CdvPolicy::Hard,
    ));
    let mut net = Network::new(sr.topology().clone(), config, CdvPolicy::Hard);

    // Route pool: single-shard terminal hops plus multi-shard ring
    // routes, so churn crosses shard boundaries and exercises the CDV
    // accumulation on the cached path too.
    let mut routes = Vec::new();
    for i in 0..sr.ring_len() {
        routes.push(sr.terminal_route((i, 0), (i, 1)).unwrap());
        routes.push(sr.ring_route_from_terminal(i, 0, 2).unwrap());
    }

    let mut rng = Rng(0x1997_0415);
    let mut live: Vec<(ConnectionId, ConnectionId)> = Vec::new(); // (engine, net)
    let mut admitted = 0u64;
    let mut released = 0u64;

    for op in 0..OPS {
        let release_now = !live.is_empty() && rng.below(3) == 0;
        if release_now {
            let k = rng.below(live.len() as u64) as usize;
            let (engine_id, net_id) = live.swap_remove(k);
            engine.release(engine_id).unwrap();
            net.teardown(net_id).unwrap();
            released += 1;
        } else {
            let route = &routes[rng.below(routes.len() as u64) as usize];
            let request = SetupRequest::new(
                seeded_contract(&mut rng),
                Priority::new(rng.below(u64::from(PRIORITIES)) as u8),
                Time::from_integer(10_000),
            );
            let via_engine = engine.admit(route, request).unwrap();
            let via_net = net.setup(route, request).unwrap();
            match (via_engine, via_net) {
                (EngineOutcome::Admitted { id, .. }, SetupOutcome::Connected(info)) => {
                    live.push((id, info.id()));
                    admitted += 1;
                }
                (EngineOutcome::Rejected { .. }, SetupOutcome::Rejected(_)) => {}
                (a, b) => panic!("op {op}: engine said {a:?}, mirror network said {b:?}"),
            }
        }
        assert_bounds_coherent(&engine, &net, PRIORITIES);
    }

    assert!(admitted > 10, "churn admitted too little: {admitted}");
    assert!(released > 10, "churn released too little: {released}");
    let stats = engine.stats();
    assert_eq!(stats.admitted, admitted);
    assert_eq!(stats.released, released);
    assert!(
        stats.cache_hits > 0,
        "repeated lookups between mutations must produce hits: {stats:?}"
    );
}
