//! Multiplexing and demultiplexing of bit streams (Algorithms 3.2
//! and 3.3).

use core::ops::Add;

use crate::{BitStream, Rate, Segment, StreamError};

impl BitStream {
    /// **Algorithm 3.2**: the worst-case multiplex of two streams
    /// arriving at the same queueing point — the pointwise sum of rates.
    ///
    /// ```
    /// use rtcac_bitstream::{BitStream, Rate};
    /// use rtcac_rational::ratio;
    ///
    /// let a = BitStream::from_rate_breaks([(ratio(1, 1), ratio(0, 1)), (ratio(1, 4), ratio(2, 1))])?;
    /// let b = BitStream::from_rate_breaks([(ratio(1, 2), ratio(0, 1)), (ratio(1, 4), ratio(3, 1))])?;
    /// let s = a.multiplex(&b);
    /// assert_eq!(s.peak_rate(), Rate::new(ratio(3, 2)));
    /// assert_eq!(s.long_run_rate(), Rate::new(ratio(1, 2)));
    /// # Ok::<(), rtcac_bitstream::StreamError>(())
    /// ```
    pub fn multiplex(&self, other: &BitStream) -> BitStream {
        let merged = merge_rates(self, other, |a, b| a + b);
        BitStream::from_normalized(merged)
    }

    /// Multiplexes an arbitrary collection of streams.
    ///
    /// Returns the zero stream for an empty collection.
    pub fn multiplex_all<'a, I>(streams: I) -> BitStream
    where
        I: IntoIterator<Item = &'a BitStream>,
    {
        streams
            .into_iter()
            .fold(BitStream::zero(), |acc, s| acc.multiplex(s))
    }

    /// **Algorithm 3.3**: removes a component stream from an aggregate —
    /// the pointwise difference of rates.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::NotASubStream`] if the difference would go
    /// negative and [`StreamError::NotMonotone`] if it would violate the
    /// bit-stream model; both indicate that `other` is not actually a
    /// component of `self`.
    ///
    /// ```
    /// use rtcac_bitstream::BitStream;
    /// use rtcac_rational::ratio;
    ///
    /// let a = BitStream::from_rate_breaks([(ratio(1, 2), ratio(0, 1))])?;
    /// let b = BitStream::from_rate_breaks([(ratio(1, 4), ratio(0, 1))])?;
    /// let sum = a.multiplex(&b);
    /// assert_eq!(sum.demultiplex(&b)?, a);
    /// # Ok::<(), rtcac_bitstream::StreamError>(())
    /// ```
    pub fn demultiplex(&self, other: &BitStream) -> Result<BitStream, StreamError> {
        let merged = merge_rates(self, other, |a, b| a - b);
        // Validate before normalizing: the subtraction may produce
        // negative or increasing rates when `other` is not a component.
        let mut prev: Option<Segment> = None;
        for seg in &merged {
            if seg.rate.is_negative() {
                return Err(StreamError::NotASubStream { at: seg.start });
            }
            if let Some(p) = prev {
                if seg.rate > p.rate {
                    return Err(StreamError::NotMonotone { at: seg.start });
                }
            }
            prev = Some(*seg);
        }
        Ok(BitStream::from_normalized(merged))
    }
}

/// Merge-walk two streams, combining rates at every breakpoint of
/// either (the paper's two-pointer loop in Algorithms 3.2/3.3).
fn merge_rates(a: &BitStream, b: &BitStream, combine: impl Fn(Rate, Rate) -> Rate) -> Vec<Segment> {
    let sa = a.segments();
    let sb = b.segments();
    let mut out = Vec::with_capacity(sa.len() + sb.len());
    let (mut ia, mut ib) = (0usize, 0usize);
    // Both streams start at time 0, so the first combined segment does too.
    while ia < sa.len() || ib < sb.len() {
        let ta = sa.get(ia).map(|s| s.start);
        let tb = sb.get(ib).map(|s| s.start);
        let t = match (ta, tb) {
            (Some(x), Some(y)) => x.min(y),
            (Some(x), None) => x,
            (None, Some(y)) => y,
            (None, None) => unreachable!(),
        };
        if ta == Some(t) {
            ia += 1;
        }
        if tb == Some(t) {
            ib += 1;
        }
        let ra = sa[ia.saturating_sub(1).min(sa.len() - 1)].rate;
        let rb = sb[ib.saturating_sub(1).min(sb.len() - 1)].rate;
        out.push(Segment::new(combine(ra, rb), t));
    }
    out
}

impl Add<&BitStream> for &BitStream {
    type Output = BitStream;

    /// Multiplexes two streams (Algorithm 3.2).
    fn add(self, rhs: &BitStream) -> BitStream {
        self.multiplex(rhs)
    }
}

impl Add for BitStream {
    type Output = BitStream;

    /// Multiplexes two streams (Algorithm 3.2).
    fn add(self, rhs: BitStream) -> BitStream {
        self.multiplex(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cells, Time};
    use rtcac_rational::{ratio, Ratio};

    fn stream(pairs: &[(Ratio, Ratio)]) -> BitStream {
        BitStream::from_rate_breaks(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn multiplex_distinct_breakpoints() {
        let a = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 4), ratio(2, 1))]);
        let b = stream(&[(ratio(1, 2), ratio(0, 1)), (ratio(1, 8), ratio(5, 1))]);
        let s = a.multiplex(&b);
        let rates: Vec<_> = s.segments().iter().map(|x| x.rate.as_ratio()).collect();
        let starts: Vec<_> = s.segments().iter().map(|x| x.start.as_ratio()).collect();
        assert_eq!(rates, vec![ratio(3, 2), ratio(3, 4), ratio(3, 8)]);
        assert_eq!(starts, vec![ratio(0, 1), ratio(2, 1), ratio(5, 1)]);
    }

    #[test]
    fn multiplex_shared_breakpoint() {
        let a = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 4), ratio(3, 1))]);
        let b = stream(&[(ratio(1, 2), ratio(0, 1)), (ratio(1, 4), ratio(3, 1))]);
        let s = a.multiplex(&b);
        assert_eq!(s.segments().len(), 2);
        assert_eq!(s.segments()[1].rate.as_ratio(), ratio(1, 2));
        assert_eq!(s.segments()[1].start.as_ratio(), ratio(3, 1));
    }

    #[test]
    fn multiplex_with_zero_is_identity() {
        let a = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 4), ratio(2, 1))]);
        assert_eq!(a.multiplex(&BitStream::zero()), a);
        assert_eq!(BitStream::zero().multiplex(&a), a);
    }

    #[test]
    fn multiplex_cumulative_is_additive() {
        let a = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 4), ratio(2, 1))]);
        let b = stream(&[(ratio(1, 2), ratio(0, 1)), (ratio(1, 8), ratio(5, 1))]);
        let s = a.multiplex(&b);
        for t in 0..12 {
            let t = Time::from_integer(t);
            assert_eq!(s.cumulative(t), a.cumulative(t) + b.cumulative(t));
        }
    }

    #[test]
    fn multiplex_all_collection() {
        let parts: Vec<BitStream> = (1..=4)
            .map(|k| stream(&[(ratio(1, 4 * k), ratio(0, 1))]))
            .collect();
        let total = BitStream::multiplex_all(&parts);
        // 1/4 + 1/8 + 1/12 + 1/16 = 25/48.
        assert_eq!(total.peak_rate().as_ratio(), ratio(25, 48));
        assert!(BitStream::multiplex_all(core::iter::empty()).is_zero());
    }

    #[test]
    fn demultiplex_inverts_multiplex() {
        let a = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 4), ratio(2, 1))]);
        let b = stream(&[(ratio(1, 2), ratio(0, 1)), (ratio(1, 8), ratio(5, 1))]);
        let sum = a.multiplex(&b);
        assert_eq!(sum.demultiplex(&b).unwrap(), a);
        assert_eq!(sum.demultiplex(&a).unwrap(), b);
    }

    #[test]
    fn demultiplex_detects_negative() {
        let small = stream(&[(ratio(1, 4), ratio(0, 1))]);
        let big = stream(&[(ratio(1, 2), ratio(0, 1))]);
        assert!(matches!(
            small.demultiplex(&big),
            Err(StreamError::NotASubStream { .. })
        ));
    }

    #[test]
    fn demultiplex_detects_non_monotone() {
        // a: 1/2 forever; b: 1/2 for 5 then 0. a-b = 0 then 1/2: increases.
        let a = stream(&[(ratio(1, 2), ratio(0, 1))]);
        let b = stream(&[(ratio(1, 2), ratio(0, 1)), (ratio(0, 1), ratio(5, 1))]);
        assert!(matches!(
            a.demultiplex(&b),
            Err(StreamError::NotMonotone { .. })
        ));
    }

    #[test]
    fn demultiplex_zero_is_identity() {
        let a = stream(&[(ratio(1, 2), ratio(0, 1)), (ratio(1, 4), ratio(3, 1))]);
        assert_eq!(a.demultiplex(&BitStream::zero()).unwrap(), a);
        assert!(a.demultiplex(&a).unwrap().is_zero());
    }

    #[test]
    fn add_operators() {
        let a = stream(&[(ratio(1, 4), ratio(0, 1))]);
        let b = stream(&[(ratio(1, 4), ratio(0, 1))]);
        assert_eq!((&a + &b).peak_rate().as_ratio(), ratio(1, 2));
        assert_eq!((a + b).peak_rate().as_ratio(), ratio(1, 2));
    }

    #[test]
    fn multiplex_many_identical_equals_scale() {
        let unit = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 100), ratio(1, 1))]);
        let n = 16;
        let muxed = BitStream::multiplex_all(std::iter::repeat_n(&unit, n));
        let scaled = unit.scale(ratio(n as i128, 1)).unwrap();
        assert_eq!(muxed, scaled);
        assert_eq!(
            muxed.cumulative(Time::from_integer(50)),
            Cells::from_integer(16) + Cells::new(ratio(16 * 49, 100))
        );
    }
}
