//! Worst-case FIFO queueing delay bounds (Algorithm 4.1).

use crate::cumulative::{horizontal_deviation, PiecewiseLinear};
use crate::{BitStream, Rate, StreamError, Time};

impl BitStream {
    /// **Algorithm 4.1**: the worst-case queueing delay of this
    /// (aggregated, priority-`p`) arrival stream at a static-priority
    /// FIFO queueing point, under the interference of `higher` — the
    /// *filtered* aggregate of all traffic with priority above `p`.
    ///
    /// The bound is the maximum horizontal deviation between the
    /// arrival curve `A(t) = ∫ r` and the leftover service curve
    /// `C(t) = ∫ (1 − r₁)`: a bit arriving at time `t` leaves by
    /// `g(t) = C⁻¹(A(t))`, and the bound is `max_t [g(t) − t]`
    /// (the paper's Figure 8).
    ///
    /// Pass [`BitStream::zero`] as `higher` for the highest priority
    /// level; the bound then equals the maximum backlog drained at the
    /// full link rate.
    ///
    /// # Errors
    ///
    /// - [`StreamError::UnfilteredInterference`] if `higher` exceeds the
    ///   link rate anywhere (apply [`BitStream::filter`] first, as the
    ///   paper's CAC bookkeeping does);
    /// - [`StreamError::Overload`] if the long-run arrival rate exceeds
    ///   the long-run leftover service rate, making the delay unbounded.
    ///
    /// ```
    /// use rtcac_bitstream::{BitStream, Time};
    /// use rtcac_rational::ratio;
    ///
    /// // Aggregate bursting at twice the link rate for 4 cell times.
    /// let s = BitStream::from_rate_breaks([
    ///     (ratio(2, 1), ratio(0, 1)),
    ///     (ratio(1, 2), ratio(4, 1)),
    /// ])?;
    /// // Highest priority: the worst bit waits for the 4-cell backlog.
    /// assert_eq!(s.delay_bound(&BitStream::zero())?, Time::from_integer(4));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn delay_bound(&self, higher: &BitStream) -> Result<Time, StreamError> {
        if higher.peak_rate() > Rate::FULL {
            return Err(StreamError::UnfilteredInterference {
                rate: higher.peak_rate(),
            });
        }
        let arrival = PiecewiseLinear::arrival(self);
        let service = PiecewiseLinear::leftover_service(higher);
        horizontal_deviation(&arrival, &service).ok_or_else(|| StreamError::Overload {
            arrival: self.long_run_rate(),
            service: Rate::FULL - higher.long_run_rate(),
        })
    }

    /// The worst-case *response* time through the queueing point for a
    /// single additional cell arriving at the critical instant: the
    /// delay bound plus one cell transmission time.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BitStream::delay_bound`].
    pub fn response_bound(&self, higher: &BitStream) -> Result<Time, StreamError> {
        Ok(self.delay_bound(higher)? + Time::ONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Segment, TrafficContract, VbrParams};
    use rtcac_rational::{ratio, Ratio};

    fn stream(pairs: &[(Ratio, Ratio)]) -> BitStream {
        BitStream::from_rate_breaks(pairs.iter().copied()).unwrap()
    }

    fn vbr(pn: i128, pd: i128, sn: i128, sd: i128, mbs: u64) -> BitStream {
        TrafficContract::vbr(
            VbrParams::new(Rate::new(ratio(pn, pd)), Rate::new(ratio(sn, sd)), mbs).unwrap(),
        )
        .worst_case_stream()
    }

    #[test]
    fn zero_stream_has_zero_delay() {
        assert_eq!(
            BitStream::zero().delay_bound(&BitStream::zero()).unwrap(),
            Time::ZERO
        );
    }

    #[test]
    fn light_stream_has_zero_delay() {
        let s = stream(&[(ratio(1, 2), ratio(0, 1))]);
        assert_eq!(s.delay_bound(&BitStream::zero()).unwrap(), Time::ZERO);
    }

    #[test]
    fn burst_delay_equals_backlog_at_top_priority() {
        // Rate 3 for 2 cell times then 1/4: backlog peaks at 4 cells.
        let s = stream(&[(ratio(3, 1), ratio(0, 1)), (ratio(1, 4), ratio(2, 1))]);
        let d = s.delay_bound(&BitStream::zero()).unwrap();
        assert_eq!(d, Time::from_integer(4));
        // Consistency with the direct backlog computation.
        assert_eq!(
            s.backlog_bound(Rate::FULL).unwrap().as_ratio(),
            d.as_ratio()
        );
    }

    #[test]
    fn overload_is_detected() {
        let s = stream(&[(ratio(3, 2), ratio(0, 1))]);
        assert!(matches!(
            s.delay_bound(&BitStream::zero()),
            Err(StreamError::Overload { .. })
        ));
    }

    #[test]
    fn combined_overload_with_interference() {
        let s = stream(&[(ratio(1, 2), ratio(0, 1))]);
        let h = stream(&[(ratio(3, 4), ratio(0, 1))]);
        // 1/2 > 1 - 3/4: unbounded.
        assert!(matches!(
            s.delay_bound(&h),
            Err(StreamError::Overload { .. })
        ));
    }

    #[test]
    fn exactly_full_utilization_is_bounded() {
        // Arrival 1/2, interference exactly 1/2 forever: service keeps
        // pace exactly; the bound is finite (zero here).
        let s = stream(&[(ratio(1, 2), ratio(0, 1))]);
        let h = stream(&[(ratio(1, 2), ratio(0, 1))]);
        assert_eq!(s.delay_bound(&h).unwrap(), Time::ZERO);
    }

    #[test]
    fn unfiltered_interference_rejected() {
        let s = stream(&[(ratio(1, 4), ratio(0, 1))]);
        let h = stream(&[(ratio(2, 1), ratio(0, 1)), (ratio(1, 4), ratio(2, 1))]);
        assert!(matches!(
            s.delay_bound(&h),
            Err(StreamError::UnfilteredInterference { .. })
        ));
        // Filtering the interference first makes it acceptable.
        assert!(s.delay_bound(&h.filter()).is_ok());
    }

    #[test]
    fn interference_blackout_delays_all_traffic() {
        // Interference saturates the link for 6 cell times; arrival at
        // 1/3. The bit arriving at t=0 waits until service resumes.
        let s = stream(&[(ratio(1, 3), ratio(0, 1))]);
        let h = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(0, 1), ratio(6, 1))]);
        // A(t) = t/3; C(t) = max(0, t-6); g(t) = t/3 + 6; D = 6 at t=0.
        assert_eq!(s.delay_bound(&h).unwrap(), Time::from_integer(6));
    }

    #[test]
    fn vbr_burst_against_vbr_interference() {
        // Two identical VBR worst cases sharing a link; the low-priority
        // one sees the high-priority burst first.
        let lo = vbr(1, 2, 1, 8, 4);
        let hi = vbr(1, 2, 1, 8, 4).filter();
        let d = lo.delay_bound(&hi).unwrap();
        assert!(d > Time::ZERO);
        // Sanity: interference can only make things worse.
        let alone = lo.delay_bound(&BitStream::zero()).unwrap();
        assert!(d >= alone);
    }

    #[test]
    fn delay_bound_monotone_in_arrival() {
        // A dominated arrival stream gets a no-worse bound.
        let small = vbr(1, 4, 1, 16, 4);
        let big = vbr(1, 2, 1, 8, 16);
        let h = vbr(1, 2, 1, 4, 8).filter();
        let ds = small.delay_bound(&h).unwrap();
        let db = big.delay_bound(&h).unwrap();
        assert!(ds <= db);
    }

    #[test]
    fn delay_bound_worsens_with_jitter() {
        let s = vbr(1, 2, 1, 10, 6);
        let h = BitStream::zero();
        let base = s.delay_bound(&h).unwrap();
        let jittered = s.delay(Time::from_integer(20)).delay_bound(&h).unwrap();
        assert!(jittered >= base);
    }

    #[test]
    fn filtering_interference_tightens_bound() {
        // The paper's §3.4 claim: filtering the higher-priority
        // aggregate through its incoming link yields a tighter (or
        // equal) bound than the unfiltered sum would.
        let s = vbr(1, 4, 1, 10, 4);
        // Unfiltered aggregate of three bursty inputs exceeds the link;
        // Algorithm 4.1 requires filtering, which also models reality:
        // those cells *cannot* arrive faster than the upstream link.
        let parts: Vec<BitStream> = (0..3).map(|_| vbr(1, 2, 1, 10, 8)).collect();
        let agg = BitStream::multiplex_all(&parts);
        let filtered = agg.filter();
        let d_filtered = s.delay_bound(&filtered).unwrap();
        // Compare against a manually-capped (but unsmoothed) envelope:
        // the same long-run behaviour, peak clamped to 1 with no drain
        // extension — strictly more pessimistic service assumption is
        // not even representable; instead verify the bound at least
        // accounts for the blackout period of the filtered stream.
        let blackout = filtered
            .segments()
            .iter()
            .take_while(|seg| seg.rate == Rate::FULL)
            .map(|_| ())
            .count();
        assert!(blackout > 0);
        assert!(d_filtered >= Time::ZERO);
    }

    #[test]
    fn response_bound_adds_one_cell() {
        let s = stream(&[(ratio(3, 1), ratio(0, 1)), (ratio(1, 4), ratio(2, 1))]);
        assert_eq!(
            s.response_bound(&BitStream::zero()).unwrap(),
            Time::from_integer(5)
        );
    }

    #[test]
    fn paper_figure8_shape() {
        // Reconstructs the Figure 8 situation: S bursts above the
        // leftover service; the bound occurs where r(t) crosses
        // 1 - r1(g(t)).
        let s = stream(&[
            (ratio(2, 1), ratio(0, 1)),
            (ratio(1, 2), ratio(3, 1)),
            (ratio(1, 8), ratio(10, 1)),
        ]);
        let h = stream(&[(ratio(1, 2), ratio(0, 1)), (ratio(1, 4), ratio(8, 1))]);
        let d = s.delay_bound(&h).unwrap();
        // Brute-force check on a fine grid: D(t) = g(t) - t.
        let mut best = Time::ZERO;
        for k in 0..400 {
            let t = Time::new(ratio(k, 10));
            let a = s.cumulative(t);
            // find g: smallest g with C(g) >= a, C(g) = g - H(g).
            let mut lo = Time::ZERO;
            let mut hi = Time::from_integer(200);
            for _ in 0..60 {
                let mid = Time::new((lo.as_ratio() + hi.as_ratio()) / ratio(2, 1));
                let c = Rate::FULL * mid - h.cumulative(mid) * Ratio::ONE;
                if c >= a {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            let dev = hi - t;
            if dev > best {
                best = dev;
            }
        }
        // The analytic bound must dominate the brute-force estimate and
        // be close to it.
        assert!(d >= best - Time::new(ratio(1, 100)));
        assert!(d <= best + Time::new(ratio(1, 2)));
    }

    #[test]
    fn delay_bound_of_segment_list_example() {
        // Worked example: S = {(2,0),(0,2)}: 4 cells in 2 cell times.
        // Interference: half rate forever. C(t) = t/2.
        // A(2) = 4 -> g = 8 -> D = 6 at t = 2 (last arriving bit).
        let s = BitStream::from_segments([
            Segment::new(Rate::new(ratio(2, 1)), Time::ZERO),
            Segment::new(Rate::ZERO, Time::from_integer(2)),
        ])
        .unwrap();
        let h = stream(&[(ratio(1, 2), ratio(0, 1))]);
        assert_eq!(s.delay_bound(&h).unwrap(), Time::from_integer(6));
    }
}
