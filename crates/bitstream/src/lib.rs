//! Bit-stream traffic model and worst-case queueing analysis for hard
//! real-time ATM connection admission control.
//!
//! This crate implements the analytical core of *"Connection Admission
//! Control for Hard Real-Time Communication in ATM Networks"* (Zheng,
//! Yokotani, Ichihashi, Nemoto; MERL TR-96-21 / ICDCS'97):
//!
//! - the **bit-stream traffic model** (§2): the worst-case arrival of a
//!   CBR/VBR connection as a monotonically non-increasing, piecewise
//!   constant rate function of time — see [`BitStream`] and
//!   [`TrafficContract`] (Algorithm 2.1);
//! - the **stream manipulation algebra** (§3) modeling traffic
//!   distortion inside a network: [`BitStream::delay`] (Algorithm 3.1,
//!   jitter clumping), [`BitStream::multiplex`] (Algorithm 3.2),
//!   [`BitStream::demultiplex`] (Algorithm 3.3) and
//!   [`BitStream::filter`] (Algorithm 3.4, link smoothing);
//! - the **worst-case queueing delay bound** (§4.2, Algorithm 4.1):
//!   [`BitStream::delay_bound`] computes the maximum FIFO queueing delay
//!   of a priority class under the interference of all higher-priority
//!   traffic.
//!
//! Time is measured in **cell times** (the time to transmit one ATM cell
//! at full link bandwidth) and rates are **normalized to the link
//! bandwidth**, exactly as in the paper. All arithmetic is exact
//! (rational numbers from [`rtcac_rational`]).
//!
//! # Quickstart
//!
//! ```
//! use rtcac_bitstream::{BitStream, Rate, Time, TrafficContract, VbrParams};
//! use rtcac_rational::ratio;
//!
//! // A VBR connection: peak 1/4 of the link, sustainable 1/20, bursts
//! // of up to 10 cells.
//! let vbr = TrafficContract::vbr(VbrParams::new(
//!     Rate::new(ratio(1, 4)),
//!     Rate::new(ratio(1, 20)),
//!     10,
//! )?);
//! let source = vbr.worst_case_stream();
//!
//! // After traversing switches with 30 cell times of accumulated
//! // jitter, the worst-case arrival is clumpier:
//! let arrival = source.delay(Time::new(ratio(30, 1)));
//!
//! // Five such connections multiplexed at an output port can burst
//! // above the link rate; bound their FIFO queueing delay at the
//! // highest priority:
//! let aggregate = BitStream::multiplex_all(std::iter::repeat(&arrival).take(5));
//! let bound = aggregate.delay_bound(&BitStream::zero())?;
//! assert!(bound > Time::ZERO);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coarsen;
mod contract;
mod cumulative;
mod delay;
mod delay_bound;
mod error;
mod filter;
mod mux;
mod stream;
mod units;

pub use contract::{CbrParams, ContractError, TrafficContract, VbrParams};
pub use error::StreamError;
pub use stream::{BitStream, Segment};
pub use units::{Cells, Rate, Time};
