//! Conservative quantization of envelopes.
//!
//! Exact rational arithmetic keeps the CAC algebra drift-free, but
//! aggregating many connections with *heterogeneous* contracts makes
//! breakpoint denominators grow like the LCM of all contract
//! denominators — past a few hundred distinct contracts, `i128`
//! overflows. [`BitStream::coarsen`] rounds an envelope onto a fixed
//! denominator grid while **dominating** the original (never
//! under-estimating traffic), so every bound computed from the
//! coarsened stream is still a valid worst case. Switches can apply it
//! per admission (see `SwitchConfig::with_quantization` in
//! `rtcac-cac`), trading a sliver of capacity for bounded arithmetic.

use rtcac_rational::{ratio, Ratio};

use crate::{BitStream, Rate, Segment, StreamError, Time};

impl BitStream {
    /// Rounds the envelope onto a `1/grid` grid, returning a stream
    /// that *dominates* the original: every rate is rounded up and
    /// every breakpoint is pushed later, so the coarsened cumulative
    /// function is everywhere `>=` the original's.
    ///
    /// The result's rates and times all have denominators dividing
    /// `grid`, which bounds the arithmetic of any downstream
    /// aggregation.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::NegativeRate`] if `grid <= 0` (reported
    /// on the rate that a zero grid would produce).
    ///
    /// ```
    /// use rtcac_bitstream::{BitStream, Time};
    /// use rtcac_rational::ratio;
    ///
    /// let s = BitStream::from_rate_breaks([
    ///     (ratio(355, 452), ratio(0, 1)),
    ///     (ratio(1, 997), ratio(22, 7)),
    /// ])?;
    /// let c = s.coarsen(64)?;
    /// assert!(c.dominates(&s));
    /// for seg in c.segments() {
    ///     assert!(seg.rate.as_ratio().denom() <= 64);
    ///     assert!(seg.start.as_ratio().denom() <= 64);
    /// }
    /// # Ok::<(), rtcac_bitstream::StreamError>(())
    /// ```
    pub fn coarsen(&self, grid: i128) -> Result<BitStream, StreamError> {
        if grid <= 0 {
            return Err(StreamError::NegativeRate {
                rate: Rate::new(Ratio::from_integer(grid)),
            });
        }
        let g = ratio(grid, 1);
        let ceil_to_grid = |v: Ratio| -> Ratio { ratio((v * g).ceil(), grid) };
        let mut out: Vec<Segment> = Vec::with_capacity(self.segments().len());
        for seg in self.segments() {
            let rate = Rate::new(ceil_to_grid(seg.rate.as_ratio()));
            let start = if seg.start.is_zero() {
                Time::ZERO
            } else {
                Time::new(ceil_to_grid(seg.start.as_ratio()))
            };
            if let Some(last) = out.last_mut() {
                if last.start == start {
                    // The previous segment collapsed to zero length:
                    // adopt the later (lower) rate. Domination still
                    // holds — any instant at or past the collapsed
                    // start lies at or past the later original
                    // breakpoint too (ceil never moves a breakpoint
                    // earlier) — and the long-run rate stays exact.
                    last.rate = rate;
                    continue;
                }
            }
            out.push(Segment::new(rate, start));
        }
        Ok(BitStream::from_normalized(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cells, TrafficContract, VbrParams};

    #[test]
    fn coarsen_dominates_and_bounds_denominators() {
        let s = BitStream::from_rate_breaks([
            (ratio(7, 13), ratio(0, 1)),
            (ratio(3, 11), ratio(17, 5)),
            (ratio(1, 997), ratio(101, 3)),
        ])
        .unwrap();
        let c = s.coarsen(32).unwrap();
        assert!(c.dominates(&s));
        for seg in c.segments() {
            assert!(seg.rate.as_ratio().denom() <= 32);
            assert!(seg.start.as_ratio().denom() <= 32);
        }
    }

    #[test]
    fn coarsen_is_identity_on_grid_streams() {
        let s =
            BitStream::from_rate_breaks([(ratio(3, 4), ratio(0, 1)), (ratio(1, 8), ratio(5, 2))])
                .unwrap();
        assert_eq!(s.coarsen(8).unwrap(), s);
    }

    #[test]
    fn coarsen_zero_stream() {
        assert_eq!(BitStream::zero().coarsen(16).unwrap(), BitStream::zero());
    }

    #[test]
    fn coarsen_rejects_bad_grid() {
        let s = BitStream::zero();
        assert!(s.coarsen(0).is_err());
        assert!(s.coarsen(-4).is_err());
    }

    #[test]
    fn coarsen_collapsed_segments_preserve_long_run_rate() {
        // Two breakpoints inside one 1/4-cell grid step collapse; the
        // later (lower) rate wins, the long-run rate is preserved, and
        // domination holds throughout.
        let s = BitStream::from_rate_breaks([
            (ratio(1, 1), ratio(0, 1)),
            (ratio(1, 2), ratio(21, 20)), // ceil(1.05 * 4)/4 = 5/4
            (ratio(1, 4), ratio(23, 20)), // ceil(1.15 * 4)/4 = 5/4 too
        ])
        .unwrap();
        let c = s.coarsen(4).unwrap();
        assert!(c.dominates(&s));
        assert_eq!(c.long_run_rate(), s.long_run_rate());
        assert_eq!(c.rate_at(Time::new(ratio(5, 4))), Rate::new(ratio(1, 4)));
        // Before the collapsed breakpoint the full rate still applies.
        assert_eq!(c.rate_at(Time::ONE), Rate::FULL);
    }

    #[test]
    fn coarsen_error_stays_small() {
        // The coarsened envelope exceeds the original by at most
        // grid-step effects: rate error <= 1/grid, time shift <= 1/grid.
        let contract = TrafficContract::vbr(
            VbrParams::new(
                Rate::new(ratio(355, 1130)),
                Rate::new(ratio(100, 31_417)),
                9,
            )
            .unwrap(),
        );
        let s = contract.worst_case_stream();
        let c = s.coarsen(1024).unwrap();
        for k in 0..200 {
            let t = Time::new(ratio(k, 2));
            let excess = c.cumulative(t) - s.cumulative(t);
            // Loose but meaningful envelope-error bound: rate error
            // accumulates at <= 1/grid per cell time, plus one grid
            // step of breakpoint shift at full rate.
            let budget = Cells::new(t.as_ratio() / ratio(1024, 1) + ratio(2, 1024) + ratio(1, 1));
            assert!(excess <= budget, "at t={t}: excess {excess}");
        }
    }

    #[test]
    fn coarsened_bounds_are_conservative() {
        let parts: Vec<BitStream> = (0..12)
            .map(|k| {
                TrafficContract::vbr(
                    VbrParams::new(
                        Rate::new(ratio(1, 7 + k)),
                        Rate::new(ratio(1, 83 + 3 * k)),
                        3 + k as u64 % 5,
                    )
                    .unwrap(),
                )
                .worst_case_stream()
                .delay(Time::from_integer(40))
            })
            .collect();
        let exact = BitStream::multiplex_all(&parts);
        let coarsened = BitStream::multiplex_all(
            &parts
                .iter()
                .map(|s| s.coarsen(64).unwrap())
                .collect::<Vec<_>>(),
        );
        let d_exact = exact.delay_bound(&BitStream::zero()).unwrap();
        let d_coarse = coarsened.delay_bound(&BitStream::zero()).unwrap();
        assert!(d_coarse >= d_exact, "{d_coarse} < {d_exact}");
        // And not wildly looser.
        assert!(d_coarse.to_f64() <= d_exact.to_f64() * 1.5 + 2.0);
    }
}
