//! Dimensioned newtypes for the bit-stream algebra.
//!
//! The paper works in normalized units: time in *cell times*, rates as
//! fractions of the link bandwidth. These newtypes keep rates, times and
//! traffic volumes from being mixed up ([C-NEWTYPE]): `Rate * Time`
//! yields [`Cells`], `Cells / Rate` yields [`Time`], and dimensionally
//! nonsensical operations do not compile.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use core::str::FromStr;

use rtcac_rational::{Ratio, RatioError};

macro_rules! unit_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(Ratio);

        impl $name {
            /// The zero value.
            pub const ZERO: $name = $name(Ratio::ZERO);

            /// Wraps a raw [`Ratio`] value.
            pub const fn new(value: Ratio) -> $name {
                $name(value)
            }

            /// Creates the value from an integer count of base units.
            pub const fn from_integer(value: i128) -> $name {
                $name(Ratio::from_integer(value))
            }

            /// The underlying exact rational value.
            pub const fn as_ratio(&self) -> Ratio {
                self.0
            }

            /// Whether the value is exactly zero.
            pub const fn is_zero(&self) -> bool {
                self.0.is_zero()
            }

            /// Whether the value is strictly positive.
            pub const fn is_positive(&self) -> bool {
                self.0.is_positive()
            }

            /// Whether the value is strictly negative.
            pub const fn is_negative(&self) -> bool {
                self.0.is_negative()
            }

            /// Inexact `f64` view, for reporting only.
            pub fn to_f64(&self) -> f64 {
                self.0.to_f64()
            }

            /// The smaller of two values.
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// The larger of two values.
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.0, f)
            }
        }

        impl FromStr for $name {
            type Err = RatioError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                Ok($name(s.parse()?))
            }
        }

        impl From<Ratio> for $name {
            fn from(value: Ratio) -> Self {
                $name(value)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<Ratio> for $name {
            type Output = $name;
            fn mul(self, rhs: Ratio) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<Ratio> for $name {
            type Output = $name;
            /// # Panics
            ///
            /// Panics if `rhs` is zero.
            fn div(self, rhs: Ratio) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a $name>>(iter: I) -> $name {
                iter.copied().sum()
            }
        }
    };
}

unit_newtype! {
    /// A transmission rate, normalized to the link bandwidth
    /// (1 = one cell per cell time = full link rate).
    Rate
}

unit_newtype! {
    /// A duration or instant measured in cell times (the time to send
    /// one cell at full link bandwidth; ~2.7 µs at 155 Mbps).
    Time
}

unit_newtype! {
    /// An amount of traffic measured in cells (equivalently, the time
    /// the full link would need to carry it).
    Cells
}

impl Rate {
    /// The full link rate (1 cell per cell time).
    pub const FULL: Rate = Rate(Ratio::ONE);
}

impl Time {
    /// One cell time.
    pub const ONE: Time = Time(Ratio::ONE);
}

impl Cells {
    /// One cell.
    pub const ONE: Cells = Cells(Ratio::ONE);
}

impl Mul<Time> for Rate {
    type Output = Cells;

    /// Traffic volume carried at `self` for a duration.
    fn mul(self, rhs: Time) -> Cells {
        Cells(self.0 * rhs.0)
    }
}

impl Mul<Rate> for Time {
    type Output = Cells;

    fn mul(self, rhs: Rate) -> Cells {
        rhs * self
    }
}

impl Div<Rate> for Cells {
    type Output = Time;

    /// The time needed to carry this volume at the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Rate) -> Time {
        Time(self.0 / rhs.0)
    }
}

impl Div<Time> for Cells {
    type Output = Rate;

    /// The average rate over a duration.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Time) -> Rate {
        Rate(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_rational::ratio;

    #[test]
    fn dimensional_products() {
        let r = Rate::new(ratio(1, 4));
        let t = Time::from_integer(8);
        assert_eq!(r * t, Cells::from_integer(2));
        assert_eq!(t * r, Cells::from_integer(2));
        assert_eq!(Cells::from_integer(2) / r, t);
        assert_eq!(Cells::from_integer(2) / t, r);
    }

    #[test]
    fn additive_ops() {
        let a = Time::from_integer(3);
        let b = Time::from_integer(4);
        assert_eq!(a + b, Time::from_integer(7));
        assert_eq!(b - a, Time::ONE);
        let mut c = a;
        c += b;
        assert_eq!(c, Time::from_integer(7));
        c -= b;
        assert_eq!(c, a);
        assert_eq!(-a, Time::from_integer(-3));
    }

    #[test]
    fn scaling_by_ratio() {
        let r = Rate::new(ratio(1, 2));
        assert_eq!(r * ratio(1, 2), Rate::new(ratio(1, 4)));
        assert_eq!(r / ratio(2, 1), Rate::new(ratio(1, 4)));
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Rate::new(ratio(1, 3));
        let b = Rate::new(ratio(1, 2));
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn sums() {
        let rates = [Rate::new(ratio(1, 4)); 4];
        let total: Rate = rates.iter().sum();
        assert_eq!(total, Rate::FULL);
    }

    #[test]
    fn constants_and_predicates() {
        assert!(Rate::ZERO.is_zero());
        assert!(Rate::FULL.is_positive());
        assert!((-Time::ONE).is_negative());
        assert_eq!(Time::default(), Time::ZERO);
    }

    #[test]
    fn display_parse() {
        let r: Rate = "1/2".parse().unwrap();
        assert_eq!(r, Rate::new(ratio(1, 2)));
        assert_eq!(r.to_string(), "1/2");
        assert_eq!(format!("{:?}", r), "Rate(1/2)");
    }

    #[test]
    fn f64_view() {
        assert_eq!(Rate::new(ratio(3, 4)).to_f64(), 0.75);
    }
}
