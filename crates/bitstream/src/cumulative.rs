//! Piecewise-linear cumulative curves.
//!
//! A [`BitStream`] is a step function of *rate*; its integral is a
//! piecewise-linear, non-decreasing *cumulative* curve. Algorithm 4.1
//! (the queueing delay bound) is the maximum horizontal deviation
//! between the arrival curve of the priority class and the leftover
//! service curve under higher-priority interference. Both are
//! [`PiecewiseLinear`] values here.

use rtcac_rational::Ratio;

use crate::{BitStream, Cells, Rate, Time};

/// A non-decreasing piecewise-linear curve starting at `(0, 0)`.
///
/// `knots[i]` is the curve value at the start of linear piece `i`;
/// `slopes[i]` applies on `[knots[i].0, knots[i+1].0)`, with the last
/// slope extending to infinity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PiecewiseLinear {
    knots: Vec<(Time, Cells)>,
    slopes: Vec<Ratio>,
}

impl PiecewiseLinear {
    /// The cumulative arrival curve `A(t) = ∫₀ᵗ r(u) du` of a stream.
    pub(crate) fn arrival(stream: &BitStream) -> PiecewiseLinear {
        let segs = stream.segments();
        let mut knots = Vec::with_capacity(segs.len());
        let mut slopes = Vec::with_capacity(segs.len());
        let mut value = Cells::ZERO;
        let mut prev: Option<(Rate, Time)> = None;
        for seg in segs {
            if let Some((rate, start)) = prev {
                value += rate * (seg.start - start);
            }
            knots.push((seg.start, value));
            slopes.push(seg.rate.as_ratio());
            prev = Some((seg.rate, seg.start));
        }
        PiecewiseLinear { knots, slopes }
    }

    /// The leftover service curve `C(t) = ∫₀ᵗ (1 − r₁(u)) du` available
    /// to a priority class under higher-priority interference `r₁`.
    ///
    /// The caller must ensure `r₁ <= 1` everywhere (i.e. the
    /// interference stream has been filtered, Algorithm 3.4).
    pub(crate) fn leftover_service(higher: &BitStream) -> PiecewiseLinear {
        let segs = higher.segments();
        let mut knots = Vec::with_capacity(segs.len());
        let mut slopes = Vec::with_capacity(segs.len());
        let mut value = Cells::ZERO;
        let mut prev: Option<(Ratio, Time)> = None;
        for seg in segs {
            if let Some((slope, start)) = prev {
                value += Rate::new(slope) * (seg.start - start);
            }
            let slope = Ratio::ONE - seg.rate.as_ratio();
            debug_assert!(
                !slope.is_negative(),
                "leftover_service: interference above link rate"
            );
            knots.push((seg.start, value));
            slopes.push(slope);
            prev = Some((slope, seg.start));
        }
        PiecewiseLinear { knots, slopes }
    }

    /// Curve value at time `t >= 0`.
    pub(crate) fn value_at(&self, t: Time) -> Cells {
        debug_assert!(!t.is_negative());
        let idx = match self.knots.binary_search_by(|(kt, _)| kt.cmp(&t)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let (kt, kv) = self.knots[idx];
        kv + Rate::new(self.slopes[idx]) * (t - kt)
    }

    /// The slope of the last (infinite) piece.
    pub(crate) fn final_slope(&self) -> Ratio {
        *self.slopes.last().expect("curve has at least one piece")
    }

    /// The earliest time at which the curve reaches `v`, or `None` if it
    /// never does (curve saturates below `v`).
    pub(crate) fn first_time_reaching(&self, v: Cells) -> Option<Time> {
        if v <= Cells::ZERO {
            return Some(Time::ZERO);
        }
        for (i, &(kt, kv)) in self.knots.iter().enumerate() {
            let slope = Rate::new(self.slopes[i]);
            let end = self.knots.get(i + 1);
            match end {
                Some(&(next_t, next_v)) => {
                    if next_v >= v {
                        // Reached within this piece (slope > 0 because the
                        // value strictly increased).
                        if kv >= v {
                            return Some(kt);
                        }
                        return Some(kt + (v - kv) / slope);
                    }
                    let _ = next_t;
                }
                None => {
                    if kv >= v {
                        return Some(kt);
                    }
                    if slope.as_ratio().is_positive() {
                        return Some(kt + (v - kv) / slope);
                    }
                    return None;
                }
            }
        }
        unreachable!("loop always returns on the last piece")
    }

    /// The slope in effect at time `t` (right-continuous: a knot time
    /// reports the slope of the piece that starts there).
    pub(crate) fn slope_at(&self, t: Time) -> Ratio {
        debug_assert!(!t.is_negative());
        let idx = match self.knots.binary_search_by(|(kt, _)| kt.cmp(&t)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        self.slopes[idx]
    }

    /// The earliest time at which the curve *strictly exceeds* `v` —
    /// the right limit of the pseudo-inverse. Differs from
    /// [`Self::first_time_reaching`] exactly when the curve has a
    /// plateau at value `v`. Returns `None` if the curve saturates at
    /// or below `v`.
    pub(crate) fn first_time_strictly_exceeding(&self, v: Cells) -> Option<Time> {
        let t0 = self.first_time_reaching(v)?;
        if self.value_at(t0) > v {
            return Some(t0);
        }
        // The curve equals v at t0; it strictly exceeds v as soon as a
        // positive slope resumes.
        let idx = match self.knots.binary_search_by(|(kt, _)| kt.cmp(&t0)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        for i in idx..self.slopes.len() {
            if self.slopes[i].is_positive() {
                return Some(t0.max(self.knots[i].0));
            }
        }
        None
    }

    /// Times of all knots.
    pub(crate) fn knot_times(&self) -> impl Iterator<Item = Time> + '_ {
        self.knots.iter().map(|&(t, _)| t)
    }

    /// Knot values.
    pub(crate) fn knot_values(&self) -> impl Iterator<Item = Cells> + '_ {
        self.knots.iter().map(|&(_, v)| v)
    }
}

/// The maximum horizontal deviation `max_t [ C⁻¹(A(t)) − t ]` between an
/// arrival curve `A` and a service curve `C` — the worst-case FIFO
/// queueing delay. Returns `None` when the deviation is unbounded
/// (long-run arrival rate exceeds long-run service rate, or the service
/// saturates below the total arrival volume).
pub(crate) fn horizontal_deviation(a: &PiecewiseLinear, c: &PiecewiseLinear) -> Option<Time> {
    let ra = a.final_slope();
    let rc = c.final_slope();
    if ra > rc {
        return None;
    }
    if ra == rc && rc.is_zero() {
        // Both curves saturate; the service must cover the total volume.
        let a_max = a.knot_values().last().expect("non-empty");
        let c_max = c.knot_values().last().expect("non-empty");
        if a_max > c_max {
            return None;
        }
    }
    // Candidate times: knots of A, plus preimages (under A) of the
    // values C takes at its knots. Between consecutive candidates the
    // deviation is affine, so the maximum is attained at a candidate.
    let mut candidates: Vec<Time> = a.knot_times().collect();
    for v in c.knot_values() {
        if let Some(t) = a.first_time_reaching(v) {
            candidates.push(t);
        }
    }
    let mut best = Time::ZERO;
    for t in candidates {
        let v = a.value_at(t);
        // Departure of the bit arriving exactly at t…
        let g = c.first_time_reaching(v)?;
        // …and of bits arriving immediately after t (the supremum is
        // approached from the right when C has a plateau at value v and
        // traffic is still arriving).
        let g = if a.slope_at(t).is_positive() {
            match c.first_time_strictly_exceeding(v) {
                Some(g_right) => g.max(g_right),
                // Still arriving while the service has saturated at v:
                // unbounded (defensive; the stability pre-check should
                // have caught this).
                None => return None,
            }
        } else {
            g
        };
        let d = g - t;
        if d > best {
            best = d;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_rational::ratio;

    fn stream(pairs: &[(i128, i128, i128, i128)]) -> BitStream {
        BitStream::from_rate_breaks(
            pairs
                .iter()
                .map(|&(rn, rd, tn, td)| (ratio(rn, rd), ratio(tn, td))),
        )
        .unwrap()
    }

    #[test]
    fn arrival_values() {
        // Rate 1 on [0,4), then 1/4.
        let s = stream(&[(1, 1, 0, 1), (1, 4, 4, 1)]);
        let a = PiecewiseLinear::arrival(&s);
        assert_eq!(a.value_at(Time::ZERO), Cells::ZERO);
        assert_eq!(a.value_at(Time::from_integer(4)), Cells::from_integer(4));
        assert_eq!(a.value_at(Time::from_integer(8)), Cells::from_integer(5));
        assert_eq!(a.final_slope(), ratio(1, 4));
    }

    #[test]
    fn leftover_service_values() {
        // Higher-priority interference: rate 1 on [0,2), then 1/2.
        let h = stream(&[(1, 1, 0, 1), (1, 2, 2, 1)]);
        let c = PiecewiseLinear::leftover_service(&h);
        // No service while interference saturates the link.
        assert_eq!(c.value_at(Time::from_integer(2)), Cells::ZERO);
        assert_eq!(c.value_at(Time::from_integer(6)), Cells::from_integer(2));
        assert_eq!(c.final_slope(), ratio(1, 2));
    }

    #[test]
    fn first_time_reaching_with_plateau() {
        let h = stream(&[(1, 1, 0, 1), (1, 2, 2, 1)]);
        let c = PiecewiseLinear::leftover_service(&h);
        assert_eq!(c.first_time_reaching(Cells::ZERO), Some(Time::ZERO));
        // First cell of leftover service completes at t = 2 + 2 = 4.
        assert_eq!(
            c.first_time_reaching(Cells::ONE),
            Some(Time::from_integer(4))
        );
    }

    #[test]
    fn first_time_reaching_saturated() {
        // Arrival that stops: rate 1 on [0, 3), then zero.
        let s = stream(&[(1, 1, 0, 1), (0, 1, 3, 1)]);
        let a = PiecewiseLinear::arrival(&s);
        assert_eq!(
            a.first_time_reaching(Cells::from_integer(3)),
            Some(Time::from_integer(3))
        );
        assert_eq!(a.first_time_reaching(Cells::from_integer(4)), None);
    }

    #[test]
    fn deviation_simple_burst() {
        // Burst: rate 2 for 3 cell times then 0, full service.
        let s = stream(&[(2, 1, 0, 1), (0, 1, 3, 1)]);
        let a = PiecewiseLinear::arrival(&s);
        let c = PiecewiseLinear::leftover_service(&BitStream::zero());
        // Backlog peaks at 3 cells at t=3; last bit waits 3 cell times.
        assert_eq!(horizontal_deviation(&a, &c), Some(Time::from_integer(3)));
    }

    #[test]
    fn deviation_unbounded_on_overload() {
        let s = stream(&[(3, 2, 0, 1)]);
        let a = PiecewiseLinear::arrival(&s);
        let c = PiecewiseLinear::leftover_service(&BitStream::zero());
        assert_eq!(horizontal_deviation(&a, &c), None);
    }

    #[test]
    fn deviation_zero_for_light_traffic() {
        let s = stream(&[(1, 2, 0, 1)]);
        let a = PiecewiseLinear::arrival(&s);
        let c = PiecewiseLinear::leftover_service(&BitStream::zero());
        assert_eq!(horizontal_deviation(&a, &c), Some(Time::ZERO));
    }

    #[test]
    fn deviation_with_interference() {
        // Arrival: 1/2 constant. Interference: full rate for 4 cell
        // times then zero. During [0,4) nothing is served; 2 cells
        // accumulate; the bit arriving at t=4^- waits until service
        // catches up: C(t) = t - 4, A(t) = t/2 -> g(t) = t/2 + 4,
        // D(t) = 4 - t/2, max at t=0: D = 4.
        let s = stream(&[(1, 2, 0, 1)]);
        let h = stream(&[(1, 1, 0, 1), (0, 1, 4, 1)]);
        let a = PiecewiseLinear::arrival(&s);
        let c = PiecewiseLinear::leftover_service(&h);
        assert_eq!(horizontal_deviation(&a, &c), Some(Time::from_integer(4)));
    }

    #[test]
    fn deviation_equal_final_slopes_saturating() {
        // Arrival: 2 cells then stop. Service: zero after 1 cell served.
        let s = stream(&[(1, 1, 0, 1), (0, 1, 2, 1)]);
        let h_blocking = stream(&[(0, 1, 0, 1)]); // no interference
        let a = PiecewiseLinear::arrival(&s);
        // Service saturating at 1 cell: interference becomes full rate
        // after 1 cell time.
        let h = BitStream::from_rate_breaks([(ratio(0, 1), ratio(0, 1))]).unwrap();
        let _ = (h, h_blocking);
        // Construct service directly: full for 1 cell time, then zero
        // leftover (interference rate 1 after t=1) — but interference
        // must be non-increasing, so model via curve arithmetic instead:
        // here we only verify the saturation comparison path using two
        // flat curves.
        let a_sat = PiecewiseLinear::arrival(&s); // saturates at 2
        let c_sat = PiecewiseLinear::arrival(&stream(&[(1, 1, 0, 1), (0, 1, 1, 1)])); // saturates at 1
        assert_eq!(horizontal_deviation(&a_sat, &c_sat), None);
        let c_big = PiecewiseLinear::arrival(&stream(&[(1, 1, 0, 1), (0, 1, 5, 1)]));
        assert!(horizontal_deviation(&a_sat, &c_big).is_some());
        let _ = a;
    }
}
