//! Link filtering of bit streams (Algorithm 3.4) and the shared
//! "clamp by a service line" smoothing primitive also used by
//! Algorithm 3.1 (delay).

use crate::{BitStream, Cells, Rate, Segment, StreamError, Time};

impl BitStream {
    /// **Algorithm 3.4**: the stream that exits a transmission link of
    /// full (normalized) bandwidth 1 when this stream enters it.
    ///
    /// While the arrival rate exceeds the link rate a queue builds up
    /// and the output is clamped to rate 1; once the queue drains the
    /// output follows the input. Formally the output envelope is
    /// `min(t, R(t))`. Filtering *smooths* aggregates and is what makes
    /// the paper's delay bounds tighter than \[9\]'s (§3.4).
    ///
    /// If the long-run input rate exceeds the link rate the queue never
    /// drains and the output is a constant full-rate stream.
    ///
    /// ```
    /// use rtcac_bitstream::{BitStream, Rate};
    /// use rtcac_rational::ratio;
    ///
    /// // Aggregate bursting at 2x the link rate for 3 cell times.
    /// let s = BitStream::from_rate_breaks([
    ///     (ratio(2, 1), ratio(0, 1)),
    ///     (ratio(1, 4), ratio(3, 1)),
    /// ])?;
    /// let f = s.filter();
    /// assert_eq!(f.peak_rate(), Rate::FULL);
    /// // 3 excess cells drain at rate 1 - 1/4 = 3/4: t' = 3 + 4 = 7.
    /// assert_eq!(f.segments()[1].start.as_ratio(), ratio(7, 1));
    /// # Ok::<(), rtcac_bitstream::StreamError>(())
    /// ```
    pub fn filter(&self) -> BitStream {
        self.filter_at(Rate::FULL)
            .expect("full link rate is always valid")
    }

    /// [`BitStream::filter`] generalized to an arbitrary positive link
    /// capacity (useful for modeling sub-rate links or shaped trunks).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::NegativeRate`] if `capacity <= 0`.
    pub fn filter_at(&self, capacity: Rate) -> Result<BitStream, StreamError> {
        if !capacity.is_positive() {
            return Err(StreamError::NegativeRate { rate: capacity });
        }
        Ok(smooth(Cells::ZERO, self.segments().to_vec(), capacity))
    }
}

/// The envelope `min(capacity · t, backlog + ∫₀ᵗ r(u) du)` expressed as
/// a bit stream: the traffic that exits a `capacity`-rate server that
/// starts with `backlog` queued cells and then receives `segments`.
///
/// This is the common core of Algorithm 3.4 (`backlog = 0`) and
/// Algorithm 3.1 (`backlog` = bits clumped by jitter, `segments` = the
/// time-shifted remainder).
pub(crate) fn smooth(backlog: Cells, segments: Vec<Segment>, capacity: Rate) -> BitStream {
    debug_assert!(capacity.is_positive());
    debug_assert!(!backlog.is_negative());
    // Fast path: nothing queued and never above capacity.
    if backlog.is_zero() && segments.iter().all(|s| s.rate <= capacity) {
        return BitStream::from_normalized(segments);
    }
    // Walk segments tracking the queue; find the drain time t'.
    let mut queue = backlog;
    for (i, seg) in segments.iter().enumerate() {
        let next_start = segments.get(i + 1).map(|s| s.start);
        let drain_rate = capacity - seg.rate; // positive when draining
        match next_start {
            Some(end) => {
                let span = end - seg.start;
                if drain_rate.is_positive() {
                    let can_drain = drain_rate * span;
                    if can_drain >= queue {
                        let t_drain = seg.start + queue / drain_rate;
                        return clamped_output(&segments, i, t_drain, capacity);
                    }
                    queue -= can_drain;
                } else {
                    queue += (seg.rate - capacity) * span;
                }
            }
            None => {
                if drain_rate.is_positive() {
                    let t_drain = seg.start + queue / drain_rate;
                    return clamped_output(&segments, i, t_drain, capacity);
                }
                // Last rate >= capacity with a backlog: never drains.
                return BitStream::from_normalized(vec![Segment::new(capacity, Time::ZERO)]);
            }
        }
    }
    unreachable!("segment walk always returns on the last segment")
}

/// Builds the output stream: `capacity` on `[0, t_drain)`, then the
/// input from segment `i` onward.
fn clamped_output(segments: &[Segment], i: usize, t_drain: Time, capacity: Rate) -> BitStream {
    let mut out = Vec::with_capacity(segments.len() - i + 1);
    if t_drain.is_positive() {
        out.push(Segment::new(capacity, Time::ZERO));
    }
    // The draining segment resumes at t_drain (zero-length if the queue
    // drains exactly at its end; the dedupe below drops it).
    let resume = Segment::new(segments[i].rate, t_drain);
    let mut tail: Vec<Segment> = Vec::with_capacity(segments.len() - i);
    tail.push(resume);
    tail.extend(segments.iter().skip(i + 1).copied());
    for seg in tail {
        if let Some(last) = out.last_mut() {
            if last.start == seg.start {
                last.rate = seg.rate;
                continue;
            }
        }
        out.push(seg);
    }
    BitStream::from_normalized(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_rational::{ratio, Ratio};

    fn stream(pairs: &[(Ratio, Ratio)]) -> BitStream {
        BitStream::from_rate_breaks(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn filter_passthrough_when_under_capacity() {
        let s = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 4), ratio(5, 1))]);
        assert_eq!(s.filter(), s);
        assert_eq!(BitStream::zero().filter(), BitStream::zero());
    }

    #[test]
    fn filter_clamps_burst_paper_figure7() {
        // Figure 7 shape: burst above link rate, then drain.
        // Rate 3 on [0,2): queue grows to 4. Then rate 1/2: drains at
        // 1/2 per cell time -> empty at t = 2 + 8 = 10.
        let s = stream(&[(ratio(3, 1), ratio(0, 1)), (ratio(1, 2), ratio(2, 1))]);
        let f = s.filter();
        assert_eq!(
            f,
            stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 2), ratio(10, 1))])
        );
    }

    #[test]
    fn filter_conserves_cumulative_after_drain() {
        let s = stream(&[(ratio(3, 1), ratio(0, 1)), (ratio(1, 2), ratio(2, 1))]);
        let f = s.filter();
        // After the queue drains the same total volume has passed.
        for t in 10..15 {
            let t = Time::from_integer(t);
            assert_eq!(f.cumulative(t), s.cumulative(t));
        }
        // While clamped the output is exactly the line t.
        for t in 1..10 {
            let t = Time::from_integer(t);
            assert_eq!(f.cumulative(t), Cells::new(t.as_ratio()));
        }
    }

    #[test]
    fn filter_output_never_exceeds_input_envelope() {
        let s = stream(&[
            (ratio(5, 2), ratio(0, 1)),
            (ratio(3, 2), ratio(4, 1)),
            (ratio(1, 4), ratio(8, 1)),
        ]);
        let f = s.filter();
        for t in 0..30 {
            let t = Time::from_integer(t);
            assert!(f.cumulative(t) <= s.cumulative(t));
            assert!(f.rate_at(t) <= Rate::FULL);
        }
    }

    #[test]
    fn filter_drain_spanning_multiple_segments() {
        // Queue of 2 after [0,2) at rate 2; rate 3/4 on [2,4) drains
        // 1/2; rate 1/2 after drains the rest at t = 4 + 3 = 7.
        let s = stream(&[
            (ratio(2, 1), ratio(0, 1)),
            (ratio(3, 4), ratio(2, 1)),
            (ratio(1, 2), ratio(4, 1)),
        ]);
        let f = s.filter();
        assert_eq!(
            f,
            stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 2), ratio(7, 1))])
        );
    }

    #[test]
    fn filter_exact_drain_at_breakpoint() {
        // Queue of 1 after [0,1) at rate 2; drains exactly during [1,2)
        // at rate 0: t' = 2 == next breakpoint.
        let s = stream(&[(ratio(2, 1), ratio(0, 1)), (ratio(0, 1), ratio(1, 1))]);
        let f = s.filter();
        assert_eq!(
            f,
            stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(0, 1), ratio(2, 1))])
        );
    }

    #[test]
    fn filter_overloaded_saturates() {
        let s = stream(&[(ratio(3, 2), ratio(0, 1))]);
        assert_eq!(s.filter(), stream(&[(ratio(1, 1), ratio(0, 1))]));
    }

    #[test]
    fn filter_at_custom_capacity() {
        let s = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 8), ratio(2, 1))]);
        let f = s.filter_at(Rate::new(ratio(1, 2))).unwrap();
        // Queue of 1 builds over [0,2); drains at 3/8 -> t' = 2 + 8/3.
        assert_eq!(
            f,
            stream(&[(ratio(1, 2), ratio(0, 1)), (ratio(1, 8), ratio(14, 3))])
        );
    }

    #[test]
    fn filter_at_rejects_nonpositive_capacity() {
        let s = stream(&[(ratio(1, 2), ratio(0, 1))]);
        assert!(s.filter_at(Rate::ZERO).is_err());
        assert!(s.filter_at(Rate::new(ratio(-1, 2))).is_err());
    }

    #[test]
    fn filter_is_idempotent() {
        let s = stream(&[
            (ratio(4, 1), ratio(0, 1)),
            (ratio(2, 1), ratio(1, 1)),
            (ratio(1, 8), ratio(3, 1)),
        ]);
        let once = s.filter();
        assert_eq!(once.filter(), once);
    }

    #[test]
    fn smooth_with_initial_backlog() {
        // Pure backlog of 3 cells, zero-rate input afterwards: the
        // output is rate 1 for 3 cell times.
        let out = smooth(
            Cells::from_integer(3),
            vec![Segment::new(Rate::ZERO, Time::ZERO)],
            Rate::FULL,
        );
        assert_eq!(
            out,
            stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(0, 1), ratio(3, 1))])
        );
    }
}
