//! Traffic contracts (§2): VBR and CBR source descriptors and their
//! conversion to worst-case bit streams (Algorithm 2.1).

use core::fmt;

use rtcac_rational::Ratio;

use crate::{BitStream, Cells, Rate, Segment, Time};

/// Error produced by traffic-contract validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ContractError {
    /// The peak cell rate was zero or negative.
    NonPositivePcr,
    /// The sustainable cell rate was zero or negative.
    NonPositiveScr,
    /// The sustainable cell rate exceeded the peak cell rate.
    ScrExceedsPcr,
    /// The peak cell rate exceeded the (normalized) link bandwidth.
    PcrExceedsLink,
    /// The maximum burst size was zero.
    ZeroMbs,
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractError::NonPositivePcr => write!(f, "peak cell rate must be positive"),
            ContractError::NonPositiveScr => {
                write!(f, "sustainable cell rate must be positive")
            }
            ContractError::ScrExceedsPcr => {
                write!(f, "sustainable cell rate exceeds peak cell rate")
            }
            ContractError::PcrExceedsLink => {
                write!(f, "peak cell rate exceeds link bandwidth")
            }
            ContractError::ZeroMbs => write!(f, "maximum burst size must be at least one cell"),
        }
    }
}

impl std::error::Error for ContractError {}

/// VBR traffic parameters `(PCR, SCR, MBS)` per the ATM Forum traffic
/// management specification (paper §2).
///
/// The source may emit up to `MBS` cells back to back at the peak cell
/// rate `PCR`, provided its average rate never exceeds the sustainable
/// cell rate `SCR` (token-bucket semantics, Equation 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VbrParams {
    pcr: Rate,
    scr: Rate,
    mbs: u64,
}

impl VbrParams {
    /// Creates and validates VBR parameters.
    ///
    /// # Errors
    ///
    /// Requires `0 < scr <= pcr <= 1` (rates normalized to the link
    /// bandwidth) and `mbs >= 1`.
    ///
    /// ```
    /// use rtcac_bitstream::{Rate, VbrParams};
    /// use rtcac_rational::ratio;
    ///
    /// let p = VbrParams::new(Rate::new(ratio(1, 4)), Rate::new(ratio(1, 16)), 8)?;
    /// assert_eq!(p.mbs(), 8);
    /// # Ok::<(), rtcac_bitstream::ContractError>(())
    /// ```
    pub fn new(pcr: Rate, scr: Rate, mbs: u64) -> Result<VbrParams, ContractError> {
        if !pcr.is_positive() {
            return Err(ContractError::NonPositivePcr);
        }
        if !scr.is_positive() {
            return Err(ContractError::NonPositiveScr);
        }
        if scr > pcr {
            return Err(ContractError::ScrExceedsPcr);
        }
        if pcr > Rate::FULL {
            return Err(ContractError::PcrExceedsLink);
        }
        if mbs == 0 {
            return Err(ContractError::ZeroMbs);
        }
        Ok(VbrParams { pcr, scr, mbs })
    }

    /// The peak cell rate, normalized to the link bandwidth.
    pub fn pcr(&self) -> Rate {
        self.pcr
    }

    /// The sustainable cell rate, normalized to the link bandwidth.
    pub fn scr(&self) -> Rate {
        self.scr
    }

    /// The maximum burst size in cells.
    pub fn mbs(&self) -> u64 {
        self.mbs
    }
}

/// CBR traffic parameters: a peak cell rate only (paper §2 treats CBR
/// as VBR with `SCR = PCR`, `MBS = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CbrParams {
    pcr: Rate,
}

impl CbrParams {
    /// Creates and validates CBR parameters (`0 < pcr <= 1`).
    ///
    /// # Errors
    ///
    /// Returns [`ContractError::NonPositivePcr`] or
    /// [`ContractError::PcrExceedsLink`].
    pub fn new(pcr: Rate) -> Result<CbrParams, ContractError> {
        if !pcr.is_positive() {
            return Err(ContractError::NonPositivePcr);
        }
        if pcr > Rate::FULL {
            return Err(ContractError::PcrExceedsLink);
        }
        Ok(CbrParams { pcr })
    }

    /// The peak cell rate, normalized to the link bandwidth.
    pub fn pcr(&self) -> Rate {
        self.pcr
    }
}

/// A source traffic contract: either CBR or VBR (paper §2).
///
/// # Examples
///
/// Algorithm 2.1: the worst-case generation pattern of a VBR connection
/// is `S = {(1, 0), (PCR, 1), (SCR, 1 + (MBS − 1) / PCR)}`:
///
/// ```
/// use rtcac_bitstream::{Rate, TrafficContract, VbrParams};
/// use rtcac_rational::ratio;
///
/// let c = TrafficContract::vbr(VbrParams::new(
///     Rate::new(ratio(1, 2)),
///     Rate::new(ratio(1, 10)),
///     5,
/// )?);
/// let s = c.worst_case_stream();
/// // Breakpoints: (1, 0), (1/2, 1), (1/10, 1 + 4/(1/2) = 9).
/// assert_eq!(s.segments().len(), 3);
/// assert_eq!(s.long_run_rate(), Rate::new(ratio(1, 10)));
/// # Ok::<(), rtcac_bitstream::ContractError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficContract {
    /// Constant bit rate.
    Cbr(CbrParams),
    /// Variable bit rate.
    Vbr(VbrParams),
}

impl TrafficContract {
    /// Wraps CBR parameters.
    pub fn cbr(params: CbrParams) -> TrafficContract {
        TrafficContract::Cbr(params)
    }

    /// Wraps VBR parameters.
    pub fn vbr(params: VbrParams) -> TrafficContract {
        TrafficContract::Vbr(params)
    }

    /// Convenience constructor for a CBR contract from a raw rate.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CbrParams::new`].
    pub fn cbr_with_rate(pcr: Ratio) -> Result<TrafficContract, ContractError> {
        Ok(TrafficContract::Cbr(CbrParams::new(Rate::new(pcr))?))
    }

    /// The peak cell rate.
    pub fn pcr(&self) -> Rate {
        match self {
            TrafficContract::Cbr(p) => p.pcr(),
            TrafficContract::Vbr(p) => p.pcr(),
        }
    }

    /// The sustainable cell rate (equals the PCR for CBR).
    pub fn scr(&self) -> Rate {
        match self {
            TrafficContract::Cbr(p) => p.pcr(),
            TrafficContract::Vbr(p) => p.scr(),
        }
    }

    /// The maximum burst size in cells (1 for CBR).
    pub fn mbs(&self) -> u64 {
        match self {
            TrafficContract::Cbr(_) => 1,
            TrafficContract::Vbr(p) => p.mbs(),
        }
    }

    /// The long-run bandwidth the contract reserves (its SCR).
    pub fn sustained_rate(&self) -> Rate {
        self.scr()
    }

    /// **Algorithm 2.1**: the bit stream bounding the worst-case traffic
    /// generation of this contract:
    ///
    /// `S = {(1, 0), (PCR, 1), (SCR, 1 + (MBS − 1) / PCR)}`
    ///
    /// Degenerate breakpoints (e.g. `MBS = 1`, or `PCR = 1`) collapse
    /// into the normalized form automatically.
    pub fn worst_case_stream(&self) -> BitStream {
        let pcr = self.pcr();
        let scr = self.scr();
        let mbs = self.mbs();
        // Burst tail: the time for the remaining MBS - 1 cells at PCR.
        let burst_cells = Cells::from_integer(i128::from(mbs) - 1);
        let t2 = Time::ONE + burst_cells / pcr;
        let candidates = [
            Segment::new(Rate::FULL, Time::ZERO),
            Segment::new(pcr, Time::ONE),
            Segment::new(scr, t2),
        ];
        // Drop zero-length segments: keep the later of two equal starts.
        let mut segments: Vec<Segment> = Vec::with_capacity(3);
        for seg in candidates {
            if let Some(last) = segments.last_mut() {
                if last.start == seg.start {
                    last.rate = seg.rate;
                    continue;
                }
            }
            segments.push(seg);
        }
        BitStream::from_normalized(segments)
    }
}

impl From<CbrParams> for TrafficContract {
    fn from(params: CbrParams) -> Self {
        TrafficContract::Cbr(params)
    }
}

impl From<VbrParams> for TrafficContract {
    fn from(params: VbrParams) -> Self {
        TrafficContract::Vbr(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_rational::ratio;

    fn rate(n: i128, d: i128) -> Rate {
        Rate::new(ratio(n, d))
    }

    #[test]
    fn vbr_validation() {
        assert!(VbrParams::new(rate(1, 2), rate(1, 4), 4).is_ok());
        assert_eq!(
            VbrParams::new(rate(0, 1), rate(1, 4), 4),
            Err(ContractError::NonPositivePcr)
        );
        assert_eq!(
            VbrParams::new(rate(1, 2), rate(0, 1), 4),
            Err(ContractError::NonPositiveScr)
        );
        assert_eq!(
            VbrParams::new(rate(1, 4), rate(1, 2), 4),
            Err(ContractError::ScrExceedsPcr)
        );
        assert_eq!(
            VbrParams::new(rate(3, 2), rate(1, 2), 4),
            Err(ContractError::PcrExceedsLink)
        );
        assert_eq!(
            VbrParams::new(rate(1, 2), rate(1, 4), 0),
            Err(ContractError::ZeroMbs)
        );
    }

    #[test]
    fn cbr_validation() {
        assert!(CbrParams::new(rate(1, 1)).is_ok());
        assert_eq!(
            CbrParams::new(Rate::ZERO),
            Err(ContractError::NonPositivePcr)
        );
        assert_eq!(
            CbrParams::new(rate(2, 1)),
            Err(ContractError::PcrExceedsLink)
        );
    }

    #[test]
    fn algorithm_2_1_general_vbr() {
        // PCR = 1/2, SCR = 1/10, MBS = 5.
        let c = TrafficContract::vbr(VbrParams::new(rate(1, 2), rate(1, 10), 5).unwrap());
        let s = c.worst_case_stream();
        let segs = s.segments();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0], Segment::new(Rate::FULL, Time::ZERO));
        assert_eq!(segs[1], Segment::new(rate(1, 2), Time::ONE));
        // t2 = 1 + (5 - 1)/(1/2) = 9.
        assert_eq!(segs[2], Segment::new(rate(1, 10), Time::from_integer(9)));
    }

    #[test]
    fn algorithm_2_1_cbr_collapses_to_two_segments() {
        let c = TrafficContract::cbr(CbrParams::new(rate(1, 4)).unwrap());
        let s = c.worst_case_stream();
        // MBS = 1 makes the PCR segment zero-length: {(1,0), (PCR,1)}.
        assert_eq!(s.segments().len(), 2);
        assert_eq!(s.segments()[0], Segment::new(Rate::FULL, Time::ZERO));
        assert_eq!(s.segments()[1], Segment::new(rate(1, 4), Time::ONE));
    }

    #[test]
    fn algorithm_2_1_full_rate_pcr_merges() {
        // PCR = 1: first two segments share the rate and merge.
        let c = TrafficContract::vbr(VbrParams::new(rate(1, 1), rate(1, 8), 4).unwrap());
        let s = c.worst_case_stream();
        assert_eq!(s.segments().len(), 2);
        assert_eq!(s.peak_rate(), Rate::FULL);
        // t2 = 1 + 3/1 = 4.
        assert_eq!(
            s.segments()[1],
            Segment::new(rate(1, 8), Time::from_integer(4))
        );
    }

    #[test]
    fn algorithm_2_1_full_rate_cbr_is_constant() {
        let c = TrafficContract::cbr(CbrParams::new(Rate::FULL).unwrap());
        let s = c.worst_case_stream();
        assert_eq!(s.segments().len(), 1);
        assert_eq!(s.peak_rate(), Rate::FULL);
    }

    #[test]
    fn worst_case_stream_matches_token_bucket_envelope() {
        // The stream's cumulative at cell boundaries must dominate the
        // discrete worst case: MBS cells at PCR then cells at SCR.
        let pcr = rate(1, 3);
        let scr = rate(1, 12);
        let mbs = 6u64;
        let c = TrafficContract::vbr(VbrParams::new(pcr, scr, mbs).unwrap());
        let s = c.worst_case_stream();
        // Discrete worst case: cell k (1-based, k <= MBS) completes at
        // 1 + (k-1)/PCR; afterwards at 1 + (MBS-1)/PCR + (k-MBS)/SCR.
        for k in 1..=20i128 {
            let t = if k <= mbs as i128 {
                Time::ONE + Cells::from_integer(k - 1) / pcr
            } else {
                Time::ONE
                    + Cells::from_integer(mbs as i128 - 1) / pcr
                    + Cells::from_integer(k - mbs as i128) / scr
            };
            assert!(
                s.cumulative(t) >= Cells::from_integer(k),
                "cell {k} not covered at time {t}"
            );
        }
    }

    #[test]
    fn accessors() {
        let vbr = TrafficContract::vbr(VbrParams::new(rate(1, 2), rate(1, 4), 3).unwrap());
        assert_eq!(vbr.pcr(), rate(1, 2));
        assert_eq!(vbr.scr(), rate(1, 4));
        assert_eq!(vbr.mbs(), 3);
        assert_eq!(vbr.sustained_rate(), rate(1, 4));
        let cbr = TrafficContract::cbr(CbrParams::new(rate(1, 8)).unwrap());
        assert_eq!(cbr.pcr(), rate(1, 8));
        assert_eq!(cbr.scr(), rate(1, 8));
        assert_eq!(cbr.mbs(), 1);
    }

    #[test]
    fn from_conversions() {
        let p = CbrParams::new(rate(1, 8)).unwrap();
        assert_eq!(TrafficContract::from(p), TrafficContract::Cbr(p));
        let v = VbrParams::new(rate(1, 2), rate(1, 4), 3).unwrap();
        assert_eq!(TrafficContract::from(v), TrafficContract::Vbr(v));
    }

    #[test]
    fn cbr_with_rate_helper() {
        let c = TrafficContract::cbr_with_rate(ratio(1, 5)).unwrap();
        assert_eq!(c.pcr(), rate(1, 5));
        assert!(TrafficContract::cbr_with_rate(ratio(-1, 5)).is_err());
    }

    #[test]
    fn error_display() {
        for e in [
            ContractError::NonPositivePcr,
            ContractError::NonPositiveScr,
            ContractError::ScrExceedsPcr,
            ContractError::PcrExceedsLink,
            ContractError::ZeroMbs,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
