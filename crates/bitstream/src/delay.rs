//! Worst-case jitter distortion of a bit stream (Algorithm 3.1).

use crate::filter::smooth;
use crate::{BitStream, Rate, Segment, StreamError, Time};

impl BitStream {
    /// **Algorithm 3.1**: the worst-case arrival stream after the
    /// connection has crossed queueing points with an accumulated cell
    /// delay variation of `cdv`.
    ///
    /// In the worst case every bit generated during `[0, cdv]` is held
    /// back until time `cdv` and then released at the full link rate,
    /// *clumping* the stream: the resulting envelope is
    /// `min(t, R(t + cdv))` where `R` is the original cumulative
    /// function. The output therefore starts at the full link rate
    /// until the clump drains and then follows the original stream
    /// shifted `cdv` earlier.
    ///
    /// A zero `cdv` (or a zero stream) returns the stream unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `cdv` is negative; use [`BitStream::try_delay`] for a
    /// fallible version.
    ///
    /// ```
    /// use rtcac_bitstream::{BitStream, Rate, Time};
    /// use rtcac_rational::ratio;
    ///
    /// // A CBR worst case: one cell then rate 1/4.
    /// let s = BitStream::from_rate_breaks([
    ///     (ratio(1, 1), ratio(0, 1)),
    ///     (ratio(1, 4), ratio(1, 1)),
    /// ])?;
    /// // After 8 cell times of jitter, 1 + 7/4 cells may clump together.
    /// let d = s.delay(Time::from_integer(8));
    /// assert_eq!(d.peak_rate(), Rate::FULL);
    /// assert!(d.cumulative(Time::ONE) >= s.cumulative(Time::ONE));
    /// # Ok::<(), rtcac_bitstream::StreamError>(())
    /// ```
    pub fn delay(&self, cdv: Time) -> BitStream {
        self.try_delay(cdv).expect("delay: negative cdv")
    }

    /// Fallible form of [`BitStream::delay`].
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::NegativeTime`] if `cdv < 0`.
    pub fn try_delay(&self, cdv: Time) -> Result<BitStream, StreamError> {
        if cdv.is_negative() {
            return Err(StreamError::NegativeTime { value: cdv });
        }
        if cdv.is_zero() || self.is_zero() {
            return Ok(self.clone());
        }
        // AREA1 of the paper: bits clumped during [0, cdv].
        let clumped = self.cumulative(cdv);
        // The remainder of the stream, shifted cdv earlier.
        let shifted = self.shift_left(cdv);
        // Release the clump at full link rate ahead of the shifted
        // stream: envelope min(t, R(t + cdv)).
        Ok(smooth(clumped, shifted, Rate::FULL))
    }

    /// The segments of `r(t + cdv)` for `t >= 0` (always starting at 0).
    fn shift_left(&self, cdv: Time) -> Vec<Segment> {
        let segs = self.segments();
        // Find the segment containing time `cdv` (right-continuous).
        let idx = match segs.binary_search_by(|s| s.start.cmp(&cdv)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let mut out = Vec::with_capacity(segs.len() - idx);
        out.push(Segment::new(segs[idx].rate, Time::ZERO));
        for seg in &segs[idx + 1..] {
            out.push(Segment::new(seg.rate, seg.start - cdv));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cells;
    use rtcac_rational::{ratio, Ratio};

    fn stream(pairs: &[(Ratio, Ratio)]) -> BitStream {
        BitStream::from_rate_breaks(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn zero_cdv_is_identity() {
        let s = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 4), ratio(1, 1))]);
        assert_eq!(s.delay(Time::ZERO), s);
    }

    #[test]
    fn zero_stream_unaffected() {
        assert_eq!(
            BitStream::zero().delay(Time::from_integer(50)),
            BitStream::zero()
        );
    }

    #[test]
    fn negative_cdv_rejected() {
        let s = stream(&[(ratio(1, 2), ratio(0, 1))]);
        assert!(matches!(
            s.try_delay(Time::from_integer(-1)),
            Err(StreamError::NegativeTime { .. })
        ));
    }

    #[test]
    fn delay_matches_paper_envelope() {
        // The delayed envelope must equal min(t, R(t + cdv)) everywhere.
        let s = stream(&[
            (ratio(1, 1), ratio(0, 1)),
            (ratio(1, 2), ratio(1, 1)),
            (ratio(1, 8), ratio(5, 1)),
        ]);
        let cdv = Time::from_integer(3);
        let d = s.delay(cdv);
        for k in 0..40 {
            let t = Time::new(ratio(k, 2));
            let line = Cells::new(t.as_ratio());
            let shifted = s.cumulative(t + cdv);
            assert_eq!(d.cumulative(t), line.min(shifted), "at t = {t}");
        }
    }

    #[test]
    fn delay_of_cbr_clumps_burst() {
        // CBR at 1/4 with worst case {(1,0),(1/4,1)}; cdv = 8.
        // Clump = R(8) = 1 + 7/4 = 11/4 cells released at rate 1; the
        // shifted stream continues at 1/4, so the clump drains at
        // t = (11/4 - 0)/(1 - 1/4)... starting rate after shift is 1/4:
        // deficit 11/4 drains at 3/4 -> t' = 11/3.
        let s = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 4), ratio(1, 1))]);
        let d = s.delay(Time::from_integer(8));
        assert_eq!(
            d,
            stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 4), ratio(11, 3))])
        );
    }

    #[test]
    fn delay_preserves_long_run_rate() {
        let s = stream(&[
            (ratio(1, 1), ratio(0, 1)),
            (ratio(1, 2), ratio(2, 1)),
            (ratio(1, 16), ratio(9, 1)),
        ]);
        for cdv in [1, 5, 20, 100] {
            let d = s.delay(Time::from_integer(cdv));
            assert_eq!(d.long_run_rate(), s.long_run_rate(), "cdv = {cdv}");
        }
    }

    #[test]
    fn delay_dominates_original() {
        // The delayed envelope is never below the original envelope
        // (jitter can only make worst-case arrivals earlier/clumpier),
        // as long as the original is link-feasible (rate <= 1).
        let s = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 3), ratio(4, 1))]);
        let d = s.delay(Time::from_integer(6));
        for k in 0..60 {
            let t = Time::new(ratio(k, 3));
            assert!(d.cumulative(t) >= s.cumulative(t), "at t = {t}");
        }
    }

    #[test]
    fn delay_is_monotone_in_cdv() {
        let s = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 5), ratio(2, 1))]);
        let d1 = s.delay(Time::from_integer(4));
        let d2 = s.delay(Time::from_integer(9));
        for k in 0..40 {
            let t = Time::new(ratio(k, 2));
            assert!(d2.cumulative(t) >= d1.cumulative(t), "at t = {t}");
        }
    }

    #[test]
    fn delay_cdv_beyond_stabilization() {
        // cdv far past the last breakpoint: clump of R(cdv), then the
        // long-run rate.
        let s = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 4), ratio(2, 1))]);
        let cdv = Time::from_integer(10);
        let d = s.delay(cdv);
        // R(10) = 2 + 2 = 4; drains against 1 - 1/4 = 3/4 -> t' = 16/3.
        assert_eq!(
            d,
            stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 4), ratio(16, 3))])
        );
    }

    #[test]
    fn delay_saturated_stream_stays_full_rate() {
        let s = stream(&[(ratio(1, 1), ratio(0, 1))]);
        let d = s.delay(Time::from_integer(5));
        assert_eq!(d, s);
    }

    #[test]
    fn delay_composes_conservatively() {
        // Applying delay(c1) then delay(c2) must dominate delay(c1+c2):
        // clumping twice is at least as pessimistic as clumping once.
        let s = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 6), ratio(1, 1))]);
        let once = s.delay(Time::from_integer(12));
        let twice = s.delay(Time::from_integer(5)).delay(Time::from_integer(7));
        for k in 0..80 {
            let t = Time::new(ratio(k, 2));
            assert!(twice.cumulative(t) >= once.cumulative(t), "at t = {t}");
        }
    }
}
