//! The [`BitStream`] type: the paper's piecewise-constant worst-case
//! arrival envelope (§2, Figure 3).

use core::fmt;

use rtcac_rational::Ratio;

use crate::{Cells, Rate, StreamError, Time};

/// One step of a bit stream: the stream flows at `rate` from `start`
/// until the start of the next segment (or forever, for the last one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Flow rate during this segment, normalized to the link bandwidth.
    pub rate: Rate,
    /// Time at which this segment begins, in cell times.
    pub start: Time,
}

impl Segment {
    /// Creates a segment.
    pub const fn new(rate: Rate, start: Time) -> Segment {
        Segment { rate, start }
    }
}

/// A *bit stream* `S = {(r(k), t(k)); k = 0..m}`: a worst-case traffic
/// arrival envelope expressed as a monotonically non-increasing,
/// piecewise-constant rate function of time (paper §2, Figure 3).
///
/// Invariants (enforced at construction):
///
/// - at least one segment, the first starting at time `0`;
/// - start times strictly increasing;
/// - rates non-negative and monotonically non-increasing;
/// - adjacent segments have distinct rates (normalized form).
///
/// The last segment's rate extends to infinity. A stream whose only
/// segment has rate `0` is the *zero stream* (no traffic).
///
/// The physical meaning: `cumulative(t)` is the maximum amount of
/// traffic the modeled connection (or aggregate) can present during any
/// interval of length `t` aligned at a critical instant. Worst-case
/// envelopes front-load traffic, hence the monotonicity requirement.
///
/// # Examples
///
/// ```
/// use rtcac_bitstream::{BitStream, Cells, Rate, Time};
/// use rtcac_rational::ratio;
///
/// // Full rate for 5 cell times, then 1/10 of the link forever.
/// let s = BitStream::from_rate_breaks([
///     (ratio(1, 1), ratio(0, 1)),
///     (ratio(1, 10), ratio(5, 1)),
/// ])?;
/// assert_eq!(s.cumulative(Time::from_integer(5)), Cells::from_integer(5));
/// assert_eq!(s.long_run_rate(), Rate::new(ratio(1, 10)));
/// # Ok::<(), rtcac_bitstream::StreamError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitStream {
    segments: Vec<Segment>,
}

impl BitStream {
    /// The zero stream: no traffic, ever.
    ///
    /// ```
    /// use rtcac_bitstream::{BitStream, Cells, Time};
    /// assert!(BitStream::zero().is_zero());
    /// assert_eq!(
    ///     BitStream::zero().cumulative(Time::from_integer(100)),
    ///     Cells::ZERO
    /// );
    /// ```
    pub fn zero() -> BitStream {
        BitStream {
            segments: vec![Segment::new(Rate::ZERO, Time::ZERO)],
        }
    }

    /// A stream flowing at a constant rate forever.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::NegativeRate`] if `rate < 0`.
    pub fn constant(rate: Rate) -> Result<BitStream, StreamError> {
        if rate.is_negative() {
            return Err(StreamError::NegativeRate { rate });
        }
        Ok(BitStream {
            segments: vec![Segment::new(rate, Time::ZERO)],
        })
    }

    /// Builds a stream from `(rate, start)` segments, validating all
    /// invariants and normalizing (merging equal-rate neighbours).
    ///
    /// # Errors
    ///
    /// - [`StreamError::Empty`] for an empty list;
    /// - [`StreamError::MissingOrigin`] if the first start is not `0`;
    /// - [`StreamError::BadBreakpoints`] if starts are not strictly
    ///   increasing;
    /// - [`StreamError::NegativeRate`] for a negative rate;
    /// - [`StreamError::NotMonotone`] if a rate increases over time.
    pub fn from_segments<I>(segments: I) -> Result<BitStream, StreamError>
    where
        I: IntoIterator<Item = Segment>,
    {
        let raw: Vec<Segment> = segments.into_iter().collect();
        if raw.is_empty() {
            return Err(StreamError::Empty);
        }
        if raw[0].start != Time::ZERO {
            return Err(StreamError::MissingOrigin);
        }
        let mut normalized: Vec<Segment> = Vec::with_capacity(raw.len());
        for seg in raw {
            if seg.rate.is_negative() {
                return Err(StreamError::NegativeRate { rate: seg.rate });
            }
            if let Some(prev) = normalized.last() {
                if seg.start <= prev.start {
                    return Err(StreamError::BadBreakpoints { at: seg.start });
                }
                if seg.rate > prev.rate {
                    return Err(StreamError::NotMonotone { at: seg.start });
                }
                if seg.rate == prev.rate {
                    continue; // merge equal-rate neighbours
                }
            }
            normalized.push(seg);
        }
        Ok(BitStream {
            segments: normalized,
        })
    }

    /// Convenience constructor from raw `(rate, start)` rational pairs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BitStream::from_segments`].
    pub fn from_rate_breaks<I>(pairs: I) -> Result<BitStream, StreamError>
    where
        I: IntoIterator<Item = (Ratio, Ratio)>,
    {
        BitStream::from_segments(
            pairs
                .into_iter()
                .map(|(r, t)| Segment::new(Rate::new(r), Time::new(t))),
        )
    }

    /// Internal constructor for operations that preserve the invariants
    /// by construction; still normalizes merging of equal neighbours.
    pub(crate) fn from_normalized(segments: Vec<Segment>) -> BitStream {
        debug_assert!(!segments.is_empty());
        debug_assert_eq!(segments[0].start, Time::ZERO);
        let mut normalized: Vec<Segment> = Vec::with_capacity(segments.len());
        for seg in segments {
            debug_assert!(!seg.rate.is_negative(), "negative rate {:?}", seg.rate);
            if let Some(prev) = normalized.last() {
                debug_assert!(seg.start > prev.start);
                debug_assert!(
                    seg.rate <= prev.rate,
                    "rates must be non-increasing: {:?} then {:?}",
                    prev,
                    seg
                );
                if seg.rate == prev.rate {
                    continue;
                }
            }
            normalized.push(seg);
        }
        BitStream {
            segments: normalized,
        }
    }

    /// The segments of the stream, in time order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Approximate resident heap bytes of this stream: the segment
    /// buffer it owns (capacity, not length — what the allocator is
    /// actually holding).
    pub fn resident_bytes(&self) -> usize {
        self.segments.capacity() * core::mem::size_of::<Segment>()
    }

    /// Number of segments (the paper's `m + 1`). Never zero: even the
    /// zero stream has one (zero-rate) segment.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Whether this is the zero stream (carries no traffic at all).
    pub fn is_zero(&self) -> bool {
        self.segments.len() == 1 && self.segments[0].rate.is_zero()
    }

    /// The initial (peak) rate `r(0)`.
    pub fn peak_rate(&self) -> Rate {
        self.segments[0].rate
    }

    /// The final rate `r(m)`, which extends to infinity — the long-run
    /// sustained rate of the stream.
    pub fn long_run_rate(&self) -> Rate {
        self.segments[self.segments.len() - 1].rate
    }

    /// The time after which the stream flows at its long-run rate.
    pub fn stabilization_time(&self) -> Time {
        self.segments[self.segments.len() - 1].start
    }

    /// The instantaneous rate at time `t` (`t >= 0`).
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative.
    pub fn rate_at(&self, t: Time) -> Rate {
        assert!(!t.is_negative(), "rate_at: negative time");
        match self.segments.binary_search_by(|seg| seg.start.cmp(&t)) {
            Ok(i) => self.segments[i].rate,
            Err(i) => self.segments[i - 1].rate,
        }
    }

    /// The cumulative traffic `R(t) = ∫₀ᵗ r(u) du` in cells.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative.
    pub fn cumulative(&self, t: Time) -> Cells {
        assert!(!t.is_negative(), "cumulative: negative time");
        let mut total = Cells::ZERO;
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.start >= t {
                break;
            }
            let end = match self.segments.get(i + 1) {
                Some(next) => next.start.min(t),
                None => t,
            };
            total += seg.rate * (end - seg.start);
        }
        total
    }

    /// The maximum instantaneous backlog (queue build-up in cells) when
    /// this stream is served by a link of the given capacity — `AREA1`
    /// of the paper's Figure 7.
    ///
    /// Because rates are non-increasing, the backlog peaks exactly when
    /// the arrival rate drops to (or below) the service rate.
    ///
    /// Returns `None` if the backlog grows without bound (long-run rate
    /// exceeds `capacity`).
    pub fn backlog_bound(&self, capacity: Rate) -> Option<Cells> {
        if self.long_run_rate() > capacity {
            return None;
        }
        let mut backlog = Cells::ZERO;
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.rate <= capacity {
                break;
            }
            let end = match self.segments.get(i + 1) {
                Some(next) => next.start,
                None => unreachable!("last rate exceeds capacity but long-run check passed"),
            };
            backlog += (seg.rate - capacity) * (end - seg.start);
        }
        Some(backlog)
    }

    /// The time at which the cumulative traffic first reaches `amount`,
    /// or `None` if it never does.
    pub fn time_to_accumulate(&self, amount: Cells) -> Option<Time> {
        if amount <= Cells::ZERO {
            return Some(Time::ZERO);
        }
        let mut acc = Cells::ZERO;
        for (i, seg) in self.segments.iter().enumerate() {
            let end = self.segments.get(i + 1).map(|next| next.start);
            match end {
                Some(end) => {
                    let chunk = seg.rate * (end - seg.start);
                    if acc + chunk >= amount {
                        let need = amount - acc;
                        return Some(seg.start + need / seg.rate);
                    }
                    acc += chunk;
                }
                None => {
                    if seg.rate.is_zero() {
                        return None;
                    }
                    let need = amount - acc;
                    return Some(seg.start + need / seg.rate);
                }
            }
        }
        unreachable!("segment loop always returns on the last segment")
    }

    /// Whether this stream's envelope dominates `other`'s everywhere:
    /// `self.cumulative(t) >= other.cumulative(t)` for all `t >= 0`.
    ///
    /// Dominance is what makes a worst-case envelope *safe*: any bound
    /// computed from a dominating stream also holds for the dominated
    /// one. The check is exact — both cumulatives are piecewise linear,
    /// so comparing at the union of breakpoints plus the tail slopes
    /// decides it.
    ///
    /// ```
    /// use rtcac_bitstream::{BitStream, Time};
    /// use rtcac_rational::ratio;
    ///
    /// let s = BitStream::from_rate_breaks([(ratio(1, 2), ratio(0, 1))])?;
    /// let jittered = s.delay(Time::from_integer(10));
    /// assert!(jittered.dominates(&s));
    /// assert!(!s.dominates(&jittered));
    /// assert!(s.dominates(&s));
    /// # Ok::<(), rtcac_bitstream::StreamError>(())
    /// ```
    pub fn dominates(&self, other: &BitStream) -> bool {
        // Tail: beyond the last breakpoint of either stream both
        // cumulatives are affine; the difference must not decrease.
        if self.long_run_rate() < other.long_run_rate() {
            return false;
        }
        for seg in self.segments.iter().chain(other.segments()) {
            if self.cumulative(seg.start) < other.cumulative(seg.start) {
                return false;
            }
        }
        // Also check the last breakpoint of each explicitly (the loop
        // above covered them) and one point beyond, in case the final
        // breakpoints differ: the difference is affine past
        // max(stabilization times), and non-negative slope plus
        // non-negative value there settles it.
        let horizon = self.stabilization_time().max(other.stabilization_time());
        self.cumulative(horizon) >= other.cumulative(horizon)
    }

    /// Scales every rate by a non-negative factor (e.g. converting a
    /// per-terminal stream into an aggregate of identical terminals).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::NegativeRate`] if `factor < 0`.
    pub fn scale(&self, factor: Ratio) -> Result<BitStream, StreamError> {
        if factor.is_negative() {
            return Err(StreamError::NegativeRate {
                rate: Rate::new(factor),
            });
        }
        if factor.is_zero() {
            return Ok(BitStream::zero());
        }
        Ok(BitStream::from_normalized(
            self.segments
                .iter()
                .map(|seg| Segment::new(seg.rate * factor, seg.start))
                .collect(),
        ))
    }
}

impl Default for BitStream {
    /// The zero stream.
    fn default() -> Self {
        BitStream::zero()
    }
}

impl fmt::Debug for BitStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitStream[")?;
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({}, {})", seg.rate, seg.start)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({}, {})", seg.rate, seg.start)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_rational::ratio;

    fn rt(r: (i128, i128), t: (i128, i128)) -> (Ratio, Ratio) {
        (ratio(r.0, r.1), ratio(t.0, t.1))
    }

    #[test]
    fn zero_stream() {
        let z = BitStream::zero();
        assert!(z.is_zero());
        assert_eq!(z.segment_count(), 1);
        assert_eq!(z.peak_rate(), Rate::ZERO);
        assert_eq!(z.long_run_rate(), Rate::ZERO);
        assert_eq!(z.cumulative(Time::from_integer(10)), Cells::ZERO);
    }

    #[test]
    fn constant_stream() {
        let s = BitStream::constant(Rate::new(ratio(1, 2))).unwrap();
        assert_eq!(s.cumulative(Time::from_integer(10)), Cells::from_integer(5));
        assert_eq!(s.rate_at(Time::from_integer(1_000)), Rate::new(ratio(1, 2)));
    }

    #[test]
    fn constant_rejects_negative() {
        assert!(matches!(
            BitStream::constant(Rate::new(ratio(-1, 2))),
            Err(StreamError::NegativeRate { .. })
        ));
    }

    #[test]
    fn from_segments_validates_origin() {
        let r = BitStream::from_rate_breaks([rt((1, 1), (1, 1))]);
        assert_eq!(r.unwrap_err(), StreamError::MissingOrigin);
    }

    #[test]
    fn from_segments_validates_empty() {
        let r = BitStream::from_segments(core::iter::empty());
        assert_eq!(r.unwrap_err(), StreamError::Empty);
    }

    #[test]
    fn from_segments_validates_order() {
        let r = BitStream::from_rate_breaks([
            rt((1, 1), (0, 1)),
            rt((1, 2), (5, 1)),
            rt((1, 4), (5, 1)),
        ]);
        assert!(matches!(r, Err(StreamError::BadBreakpoints { .. })));
    }

    #[test]
    fn from_segments_validates_monotonicity() {
        let r = BitStream::from_rate_breaks([rt((1, 2), (0, 1)), rt((1, 1), (5, 1))]);
        assert!(matches!(r, Err(StreamError::NotMonotone { .. })));
    }

    #[test]
    fn from_segments_merges_equal_rates() {
        let s = BitStream::from_rate_breaks([
            rt((1, 1), (0, 1)),
            rt((1, 1), (2, 1)),
            rt((1, 2), (4, 1)),
        ])
        .unwrap();
        assert_eq!(s.segment_count(), 2);
    }

    #[test]
    fn rate_at_boundaries() {
        let s = BitStream::from_rate_breaks([rt((1, 1), (0, 1)), rt((1, 4), (3, 1))]).unwrap();
        assert_eq!(s.rate_at(Time::ZERO), Rate::FULL);
        assert_eq!(s.rate_at(Time::new(ratio(5, 2))), Rate::FULL);
        // Segment start belongs to the new segment (right-continuous).
        assert_eq!(s.rate_at(Time::from_integer(3)), Rate::new(ratio(1, 4)));
        assert_eq!(s.rate_at(Time::from_integer(100)), Rate::new(ratio(1, 4)));
    }

    #[test]
    fn cumulative_across_segments() {
        let s = BitStream::from_rate_breaks([rt((1, 1), (0, 1)), rt((1, 4), (4, 1))]).unwrap();
        assert_eq!(s.cumulative(Time::ZERO), Cells::ZERO);
        assert_eq!(s.cumulative(Time::from_integer(2)), Cells::from_integer(2));
        assert_eq!(s.cumulative(Time::from_integer(4)), Cells::from_integer(4));
        assert_eq!(s.cumulative(Time::from_integer(8)), Cells::from_integer(5));
    }

    #[test]
    fn backlog_bound_simple() {
        // Rate 2 for 3 cell times, then 1/2: backlog peaks at (2-1)*3 = 3.
        let s = BitStream::from_rate_breaks([rt((2, 1), (0, 1)), rt((1, 2), (3, 1))]).unwrap();
        assert_eq!(s.backlog_bound(Rate::FULL), Some(Cells::from_integer(3)));
    }

    #[test]
    fn backlog_bound_overload() {
        let s = BitStream::constant(Rate::new(ratio(3, 2))).unwrap();
        assert_eq!(s.backlog_bound(Rate::FULL), None);
    }

    #[test]
    fn backlog_bound_no_excess() {
        let s = BitStream::constant(Rate::new(ratio(1, 2))).unwrap();
        assert_eq!(s.backlog_bound(Rate::FULL), Some(Cells::ZERO));
    }

    #[test]
    fn time_to_accumulate() {
        let s = BitStream::from_rate_breaks([rt((1, 1), (0, 1)), rt((1, 4), (4, 1))]).unwrap();
        assert_eq!(
            s.time_to_accumulate(Cells::from_integer(2)),
            Some(Time::from_integer(2))
        );
        // 4 cells by t=4, then 1/4 rate: 6 cells at t = 4 + 8 = 12.
        assert_eq!(
            s.time_to_accumulate(Cells::from_integer(6)),
            Some(Time::from_integer(12))
        );
        assert_eq!(s.time_to_accumulate(Cells::ZERO), Some(Time::ZERO));
    }

    #[test]
    fn time_to_accumulate_never() {
        let s = BitStream::from_rate_breaks([rt((1, 1), (0, 1)), rt((0, 1), (4, 1))]).unwrap();
        assert_eq!(s.time_to_accumulate(Cells::from_integer(5)), None);
        assert_eq!(
            s.time_to_accumulate(Cells::from_integer(4)),
            Some(Time::from_integer(4))
        );
    }

    #[test]
    fn scale() {
        let s = BitStream::from_rate_breaks([rt((1, 2), (0, 1)), rt((1, 8), (4, 1))]).unwrap();
        let doubled = s.scale(ratio(2, 1)).unwrap();
        assert_eq!(doubled.peak_rate(), Rate::FULL);
        assert_eq!(doubled.long_run_rate(), Rate::new(ratio(1, 4)));
        assert!(s.scale(ratio(0, 1)).unwrap().is_zero());
        assert!(s.scale(ratio(-1, 1)).is_err());
    }

    #[test]
    fn display_and_debug() {
        let s = BitStream::from_rate_breaks([rt((1, 1), (0, 1)), rt((1, 4), (3, 1))]).unwrap();
        assert_eq!(s.to_string(), "{(1, 0), (1/4, 3)}");
        assert!(format!("{s:?}").starts_with("BitStream["));
    }

    #[test]
    fn equality_is_structural_after_normalization() {
        let a = BitStream::from_rate_breaks([
            rt((1, 1), (0, 1)),
            rt((1, 1), (1, 1)),
            rt((1, 4), (3, 1)),
        ])
        .unwrap();
        let b = BitStream::from_rate_breaks([rt((1, 1), (0, 1)), rt((1, 4), (3, 1))]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "negative time")]
    fn rate_at_negative_panics() {
        BitStream::zero().rate_at(Time::from_integer(-1));
    }
}
