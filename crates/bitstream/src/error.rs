//! Error types for stream construction and analysis.

use core::fmt;

use rtcac_rational::RatioError;

use crate::{Rate, Time};

/// Error produced by [`BitStream`](crate::BitStream) construction and
/// analysis operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StreamError {
    /// A segment rate was negative.
    NegativeRate {
        /// The offending rate.
        rate: Rate,
    },
    /// Segment start times were not strictly increasing from zero.
    BadBreakpoints {
        /// The offending start time.
        at: Time,
    },
    /// The first segment did not start at time zero.
    MissingOrigin,
    /// No segments were supplied.
    Empty,
    /// Rates were not monotonically non-increasing (the bit-stream model
    /// of the paper requires worst-case envelopes to front-load traffic).
    NotMonotone {
        /// Time at which the rate increased.
        at: Time,
    },
    /// A demultiplex would produce a negative rate: the subtrahend is not
    /// a component of the aggregate.
    NotASubStream {
        /// Time at which the difference first went negative.
        at: Time,
    },
    /// The long-run load exceeds the available service rate, so the
    /// queueing delay is unbounded.
    Overload {
        /// Long-run arrival rate of the stream under analysis.
        arrival: Rate,
        /// Long-run service rate left over by higher priorities.
        service: Rate,
    },
    /// A higher-priority interference stream exceeded the link rate; it
    /// must be filtered (Algorithm 3.4) before use in Algorithm 4.1.
    UnfilteredInterference {
        /// The offending rate.
        rate: Rate,
    },
    /// A negative duration or delay variation was supplied.
    NegativeTime {
        /// The offending value.
        value: Time,
    },
    /// Exact arithmetic overflowed.
    Numeric(RatioError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::NegativeRate { rate } => {
                write!(f, "negative segment rate {rate}")
            }
            StreamError::BadBreakpoints { at } => {
                write!(f, "segment start times not strictly increasing at {at}")
            }
            StreamError::MissingOrigin => write!(f, "first segment must start at time 0"),
            StreamError::Empty => write!(f, "a bit stream needs at least one segment"),
            StreamError::NotMonotone { at } => {
                write!(f, "segment rates increase at time {at}")
            }
            StreamError::NotASubStream { at } => {
                write!(f, "demultiplex would go negative at time {at}")
            }
            StreamError::Overload { arrival, service } => write!(
                f,
                "unbounded delay: long-run arrival rate {arrival} exceeds available service rate {service}"
            ),
            StreamError::UnfilteredInterference { rate } => write!(
                f,
                "higher-priority stream exceeds link rate ({rate} > 1); filter it first"
            ),
            StreamError::NegativeTime { value } => {
                write!(f, "negative time value {value}")
            }
            StreamError::Numeric(e) => write!(f, "numeric failure: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RatioError> for StreamError {
    fn from(e: RatioError) -> Self {
        StreamError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_rational::ratio;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<StreamError> = vec![
            StreamError::NegativeRate {
                rate: Rate::new(ratio(-1, 2)),
            },
            StreamError::MissingOrigin,
            StreamError::Empty,
            StreamError::NotMonotone {
                at: Time::from_integer(3),
            },
            StreamError::Overload {
                arrival: Rate::FULL,
                service: Rate::new(ratio(1, 2)),
            },
            StreamError::Numeric(RatioError::Overflow),
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn numeric_error_has_source() {
        use std::error::Error;
        let e = StreamError::Numeric(RatioError::Overflow);
        assert!(e.source().is_some());
        assert!(StreamError::Empty.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StreamError>();
    }
}
