//! Worked examples from the paper, checked end to end: each figure of
//! §2–§4 is reconstructed with the public API and the numbers verified
//! by hand.

use rtcac_bitstream::{
    BitStream, CbrParams, Cells, Rate, Segment, Time, TrafficContract, VbrParams,
};
use rtcac_rational::{ratio, Ratio};

fn rate(n: i128, d: i128) -> Rate {
    Rate::new(ratio(n, d))
}

fn stream(pairs: &[(Ratio, Ratio)]) -> BitStream {
    BitStream::from_rate_breaks(pairs.iter().copied()).unwrap()
}

/// §2, Figure 2 / Algorithm 2.1: the bit stream bounding a VBR source.
#[test]
fn figure2_vbr_bit_stream_model() {
    // A VBR connection with PCR = 1/2, SCR = 1/8, MBS = 4:
    // S = {(1, 0), (PCR, 1), (SCR, 1 + (MBS-1)/PCR)} = {(1,0),(1/2,1),(1/8,7)}.
    let contract = TrafficContract::vbr(VbrParams::new(rate(1, 2), rate(1, 8), 4).unwrap());
    let s = contract.worst_case_stream();
    assert_eq!(
        s.segments(),
        &[
            Segment::new(rate(1, 1), Time::ZERO),
            Segment::new(rate(1, 2), Time::ONE),
            Segment::new(rate(1, 8), Time::from_integer(7)),
        ]
    );
    // The envelope covers the discrete worst case: cell k of the burst
    // completes by 1 + (k-1)/PCR.
    for k in 1..=4i128 {
        let t = Time::ONE + Cells::from_integer(k - 1) / rate(1, 2);
        assert!(s.cumulative(t) >= Cells::from_integer(k));
    }
}

/// §3.1, Figure 4 / Algorithm 3.1: jitter clumps a stream.
#[test]
fn figure4_delay_of_a_bit_stream() {
    // Original: full rate for 1 cell, then 1/4 (a CBR worst case).
    let s = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 4), ratio(1, 1))]);
    let cdv = Time::from_integer(4);
    let d = s.delay(cdv);
    // AREA1 = R(4) = 1 + 3/4 = 7/4 clumped cells; they drain against
    // the shifted stream's 1/4 rate at 3/4 per cell time:
    // t' - CDV = (7/4) / (3/4) = 7/3.
    assert_eq!(
        d.segments(),
        &[
            Segment::new(rate(1, 1), Time::ZERO),
            Segment::new(rate(1, 4), Time::new(ratio(7, 3))),
        ]
    );
    // AREA conservation (the figure's AREA1 = AREA2): the delayed
    // stream carries the same volume as the original, shifted by CDV,
    // once the clump has drained.
    for t in 5..12 {
        let t = Time::from_integer(t);
        assert_eq!(d.cumulative(t), s.cumulative(t + cdv));
    }
    // And the delayed envelope dominates the original.
    assert!(d.dominates(&s));
}

/// §3.2, Figure 5 / Algorithm 3.2: multiplexing sums rates pointwise.
#[test]
fn figure5_multiplexing() {
    let s1 = stream(&[(ratio(1, 2), ratio(0, 1)), (ratio(1, 8), ratio(4, 1))]);
    let s2 = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 4), ratio(2, 1))]);
    let s = s1.multiplex(&s2);
    assert_eq!(
        s.segments(),
        &[
            Segment::new(rate(3, 2), Time::ZERO),
            Segment::new(rate(3, 4), Time::from_integer(2)),
            Segment::new(rate(3, 8), Time::from_integer(4)),
        ]
    );
}

/// §3.3, Figure 6 / Algorithm 3.3: demultiplexing recovers a component.
#[test]
fn figure6_demultiplexing() {
    let s2 = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(1, 4), ratio(2, 1))]);
    let other = stream(&[(ratio(1, 2), ratio(0, 1)), (ratio(1, 8), ratio(4, 1))]);
    let s1 = s2.multiplex(&other);
    assert_eq!(s1.demultiplex(&s2).unwrap(), other);
    assert_eq!(s1.demultiplex(&other).unwrap(), s2);
}

/// §3.4, Figure 7 / Algorithm 3.4: link filtering caps the rate at 1
/// until the queue build-up drains.
#[test]
fn figure7_filtering() {
    // Aggregate above the link rate: 2 for 3 cell times, then 1/4.
    let s = stream(&[(ratio(2, 1), ratio(0, 1)), (ratio(1, 4), ratio(3, 1))]);
    // AREA1 (queue build-up) = (2-1)*3 = 3 cells; drains at 3/4 per
    // cell time after t=3: t' = 3 + 4 = 7.
    let f = s.filter();
    assert_eq!(
        f.segments(),
        &[
            Segment::new(rate(1, 1), Time::ZERO),
            Segment::new(rate(1, 4), Time::from_integer(7)),
        ]
    );
    // The maximum queue build-up equals the backlog bound.
    assert_eq!(s.backlog_bound(Rate::FULL), Some(Cells::from_integer(3)));
    // Filtering "smooths": the filtered envelope is dominated.
    assert!(s.dominates(&f));
}

/// §4.2, Figure 8 / Algorithm 4.1: queueing delay bound under
/// higher-priority interference.
#[test]
fn figure8_delay_bound_with_interference() {
    // Priority-p aggregate: bursts at 3/2 for 4 cell times, then 1/4.
    let s = stream(&[(ratio(3, 2), ratio(0, 1)), (ratio(1, 4), ratio(4, 1))]);
    // Filtered higher-priority stream: 1/2 for 8 cell times, then 1/8.
    let s1 = stream(&[(ratio(1, 2), ratio(0, 1)), (ratio(1, 8), ratio(8, 1))]);
    // Leftover service C(t) = t/2 on [0,8], then 7/8 rate.
    // A(t) = 3t/2 on [0,4] -> A(4) = 6; C reaches 6 at t = 8 + 2*8/7:
    // C(8) = 4, remaining 2 at 7/8 -> 16/7. g = 8 + 16/7 = 72/7.
    // D(4) = 72/7 - 4 = 44/7. That bit (the last of the burst) is the
    // worst off: D = 44/7 ≈ 6.29 cell times.
    let d = s.delay_bound(&s1).unwrap();
    assert_eq!(d, Time::new(ratio(44, 7)));
    // Sanity: the bound is tight against a brute-force scan.
    let mut best = Time::ZERO;
    for k in 0..200 {
        let t = Time::new(ratio(k, 10));
        let a = s.cumulative(t);
        // first g with C(g) >= a, scanning fine-grained.
        for j in 0..2_000 {
            let g = Time::new(ratio(j, 10));
            let c = Cells::new(g.as_ratio()) - s1.cumulative(g);
            if c >= a {
                if g - t > best {
                    best = g - t;
                }
                break;
            }
        }
    }
    // The grid scan overshoots g by up to one 1/10 step, so allow that
    // much slack on both sides.
    assert!(d >= best - Time::new(ratio(1, 10)));
    assert!(best >= d - Time::new(ratio(1, 10)));
}

/// §4.2: for the highest priority the bound degenerates to the queue
/// build-up of Figure 7 ("the maximum queueing delay can be simply
/// calculated as AREA1").
#[test]
fn highest_priority_bound_is_area1() {
    let s = stream(&[(ratio(2, 1), ratio(0, 1)), (ratio(1, 4), ratio(3, 1))]);
    let bound = s.delay_bound(&BitStream::zero()).unwrap();
    assert_eq!(
        Cells::new(bound.as_ratio()),
        s.backlog_bound(Rate::FULL).unwrap()
    );
}

/// §5 note under Figure 10: "the worst-case aggregated traffic from N
/// CBR connections with a peak cell rate R is the same as that of a
/// VBR connection with PCR = N, SCR = N·R and MBS = N."
#[test]
fn figure10_note_cbr_aggregate_equals_vbr() {
    let n: usize = 16;
    let r = ratio(1, 64);
    let cbr = TrafficContract::cbr(CbrParams::new(Rate::new(r)).unwrap());
    let aggregate = BitStream::multiplex_all(std::iter::repeat_n(&cbr.worst_case_stream(), n));
    // The equivalent VBR aggregate: N cells arriving simultaneously at
    // the combined rate N (one per access link), then N·R sustained —
    // the envelope {(N, 0), (N·R, 1)}.
    let vbr_envelope = stream(&[
        (ratio(n as i128, 1), ratio(0, 1)),
        (r * ratio(n as i128, 1), ratio(1, 1)),
    ]);
    assert_eq!(aggregate, vbr_envelope);
}

/// Delay bounds are conservative under envelope dominance: any stream
/// dominated by the analyzed envelope gets a no-worse bound.
#[test]
fn dominance_transfers_bounds() {
    let envelope = stream(&[(ratio(2, 1), ratio(0, 1)), (ratio(1, 3), ratio(5, 1))]);
    let actual = stream(&[(ratio(3, 2), ratio(0, 1)), (ratio(1, 3), ratio(4, 1))]);
    assert!(envelope.dominates(&actual));
    let d_env = envelope.delay_bound(&BitStream::zero()).unwrap();
    let d_act = actual.delay_bound(&BitStream::zero()).unwrap();
    assert!(d_act <= d_env);
}

/// Dominance edge cases.
#[test]
fn dominance_edge_cases() {
    let a = stream(&[(ratio(1, 2), ratio(0, 1))]);
    let b = stream(&[(ratio(1, 3), ratio(0, 1))]);
    assert!(a.dominates(&b));
    assert!(!b.dominates(&a));
    assert!(a.dominates(&a));
    assert!(a.dominates(&BitStream::zero()));
    assert!(!BitStream::zero().dominates(&a));
    // Crossing envelopes: neither dominates.
    let fast_short = stream(&[(ratio(1, 1), ratio(0, 1)), (ratio(0, 1), ratio(2, 1))]);
    let slow_long = stream(&[(ratio(1, 4), ratio(0, 1))]);
    assert!(!fast_short.dominates(&slow_long));
    assert!(!slow_long.dominates(&fast_short));
}
