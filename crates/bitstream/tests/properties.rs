//! Randomized property tests for the bit-stream algebra.
//!
//! These check the mathematical laws the paper's CAC bookkeeping relies
//! on: multiplexing is a commutative monoid, demultiplexing inverts it,
//! filtering is an idempotent contraction, delaying only inflates
//! envelopes, and the delay bound is monotone and conservative.
//!
//! The registry is offline, so instead of proptest these run seeded
//! loops over a local SplitMix64 generator.

use rtcac_bitstream::{BitStream, Cells, Rate, Time, TrafficContract, VbrParams};
use rtcac_rational::{ratio, Ratio};

const CASES: u64 = 96;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: i128, hi: i128) -> i128 {
        let span = (hi - lo + 1) as u128;
        lo + (u128::from(self.next()) % span) as i128
    }
}

/// An arbitrary valid bit stream with small rational breakpoints (rates
/// non-increasing, possibly exceeding the link rate to model
/// aggregates).
fn arb_stream(rng: &mut Rng) -> BitStream {
    let n_drops = rng.range(1, 5) as usize;
    let n_gaps = rng.range(0, 4) as usize;
    let drops: Vec<(i128, i128)> = (0..n_drops)
        .map(|_| (rng.range(1, 8), rng.range(1, 4)))
        .collect();
    let gaps: Vec<(i128, i128)> = (0..n_gaps)
        .map(|_| (rng.range(1, 12), rng.range(1, 3)))
        .collect();
    let base = rng.range(0, 3);

    // Rates: partial sums of drops from the top, descending.
    let mut rates: Vec<Ratio> = Vec::new();
    let mut acc = ratio(base, 1);
    for &(n, d) in drops.iter().rev() {
        acc += ratio(n, d * 4);
        rates.push(acc);
    }
    rates.reverse(); // now non-increasing
    let mut t = ratio(0, 1);
    let mut pairs = Vec::new();
    for (i, r) in rates.iter().enumerate() {
        pairs.push((*r, t));
        if let Some(&(n, d)) = gaps.get(i) {
            t += ratio(n, d);
        } else {
            t += ratio(2, 1);
        }
    }
    BitStream::from_rate_breaks(pairs).expect("constructed valid")
}

/// A link-feasible stream (peak <= 1), like a real source.
fn arb_source(rng: &mut Rng) -> BitStream {
    let p = rng.range(1, 16);
    let s = rng.range(1, 16);
    let mbs = rng.range(1, 32) as u64;
    let pcr = ratio(1, p);
    let scr = ratio(1, s.max(p)); // scr <= pcr
    TrafficContract::vbr(VbrParams::new(Rate::new(pcr), Rate::new(scr), mbs).expect("valid"))
        .worst_case_stream()
}

fn sample_times() -> Vec<Time> {
    (0..60).map(|k| Time::new(ratio(k, 3))).collect()
}

#[test]
fn multiplex_commutative_associative_with_zero_identity() {
    let mut rng = Rng(101);
    for _ in 0..CASES {
        let (a, b, c) = (
            arb_stream(&mut rng),
            arb_stream(&mut rng),
            arb_stream(&mut rng),
        );
        assert_eq!(a.multiplex(&b), b.multiplex(&a));
        assert_eq!(a.multiplex(&b).multiplex(&c), a.multiplex(&b.multiplex(&c)));
        assert_eq!(a.multiplex(&BitStream::zero()), a);
    }
}

#[test]
fn multiplex_cumulative_additive() {
    let mut rng = Rng(102);
    for _ in 0..CASES {
        let (a, b) = (arb_stream(&mut rng), arb_stream(&mut rng));
        let s = a.multiplex(&b);
        for t in sample_times() {
            assert_eq!(s.cumulative(t), a.cumulative(t) + b.cumulative(t));
        }
    }
}

#[test]
fn demultiplex_inverts_multiplex() {
    let mut rng = Rng(103);
    for _ in 0..CASES {
        let (a, b) = (arb_stream(&mut rng), arb_stream(&mut rng));
        let sum = a.multiplex(&b);
        assert_eq!(sum.demultiplex(&b).unwrap(), a.clone());
        assert_eq!(sum.demultiplex(&a).unwrap(), b);
    }
}

#[test]
fn filter_never_exceeds_capacity_or_input() {
    let mut rng = Rng(104);
    for _ in 0..CASES {
        let a = arb_stream(&mut rng);
        let f = a.filter();
        assert!(f.peak_rate() <= Rate::FULL);
        for t in sample_times() {
            assert!(f.cumulative(t) <= a.cumulative(t));
            assert!(f.cumulative(t) <= Cells::new(t.as_ratio()));
        }
    }
}

#[test]
fn filter_idempotent() {
    let mut rng = Rng(105);
    for _ in 0..CASES {
        let once = arb_stream(&mut rng).filter();
        assert_eq!(once.filter(), once);
    }
}

#[test]
fn filter_envelope_is_exact_min() {
    // filter(S) must equal min(t, R(t)) pointwise, not merely bound it.
    let mut rng = Rng(106);
    for _ in 0..CASES {
        let a = arb_stream(&mut rng);
        let f = a.filter();
        for t in sample_times() {
            let expect = a.cumulative(t).min(Cells::new(t.as_ratio()));
            assert_eq!(f.cumulative(t), expect);
        }
    }
}

#[test]
fn filter_long_run_rate_is_min_with_capacity() {
    // Stable inputs keep their long-run rate; overloaded inputs
    // saturate at the link rate forever.
    let mut rng = Rng(107);
    for _ in 0..CASES {
        let a = arb_stream(&mut rng);
        let expect = a.long_run_rate().min(Rate::FULL);
        assert_eq!(a.filter().long_run_rate(), expect);
    }
}

#[test]
fn coarsen_dominates_with_bounded_denominators() {
    let mut rng = Rng(108);
    for _ in 0..CASES {
        let a = arb_stream(&mut rng);
        let grid = rng.range(1, 128);
        let c = a.coarsen(grid).unwrap();
        assert!(c.dominates(&a));
        for seg in c.segments() {
            assert!(seg.rate.as_ratio().denom() <= grid);
            assert!(seg.start.as_ratio().denom() <= grid);
        }
        // Long-run rate inflates by at most one grid step.
        assert!(c.long_run_rate().as_ratio() - a.long_run_rate().as_ratio() <= ratio(1, grid));
    }
}

#[test]
fn delay_envelope_is_exact_min() {
    let mut rng = Rng(109);
    for _ in 0..CASES {
        let a = arb_source(&mut rng);
        let cdv = Time::from_integer(rng.range(0, 40));
        let d = a.delay(cdv);
        for t in sample_times() {
            let expect = a.cumulative(t + cdv).min(Cells::new(t.as_ratio()));
            assert_eq!(d.cumulative(t), expect, "at t = {t}");
        }
    }
}

#[test]
fn delay_monotone_in_cdv() {
    let mut rng = Rng(110);
    for _ in 0..CASES {
        let a = arb_source(&mut rng);
        let (c1, c2) = (rng.range(0, 20), rng.range(0, 20));
        let (lo, hi) = (c1.min(c2), c1.max(c2));
        let dl = a.delay(Time::from_integer(lo));
        let dh = a.delay(Time::from_integer(hi));
        for t in sample_times() {
            assert!(dh.cumulative(t) >= dl.cumulative(t));
        }
    }
}

#[test]
fn delay_additive_composition() {
    // delay(c1) then delay(c2) equals delay(c1 + c2) exactly:
    // min(t, min(t + c2, R(t + c1 + c2))) = min(t, R(t + c1 + c2)).
    let mut rng = Rng(111);
    for _ in 0..CASES {
        let a = arb_source(&mut rng);
        let (c1, c2) = (rng.range(1, 15), rng.range(1, 15));
        let split = a
            .delay(Time::from_integer(c1))
            .delay(Time::from_integer(c2));
        let joint = a.delay(Time::from_integer(c1 + c2));
        assert_eq!(split, joint);
    }
}

#[test]
fn delay_bound_conservative_vs_backlog() {
    // At top priority the delay bound equals the max backlog.
    let mut rng = Rng(112);
    for _ in 0..CASES {
        let a = arb_stream(&mut rng);
        match (
            a.delay_bound(&BitStream::zero()),
            a.backlog_bound(Rate::FULL),
        ) {
            (Ok(d), Some(b)) => assert_eq!(d.as_ratio(), b.as_ratio()),
            (Err(_), None) => {} // both agree: overload
            (d, b) => panic!("disagree: {d:?} vs {b:?}"),
        }
    }
}

#[test]
fn delay_bound_monotone_in_interference() {
    let mut rng = Rng(113);
    for _ in 0..CASES {
        let a = arb_source(&mut rng);
        let h = arb_source(&mut rng);
        let agg = BitStream::multiplex_all([&a, &a, &a]);
        let none = agg.delay_bound(&BitStream::zero());
        let some = agg.delay_bound(&h.filter());
        if let (Ok(d0), Ok(d1)) = (none, some) {
            assert!(d1 >= d0);
        }
    }
}

#[test]
fn delay_bound_superadditive_under_mux() {
    // Adding traffic never shrinks the bound.
    let mut rng = Rng(114);
    for _ in 0..CASES {
        let a = arb_source(&mut rng);
        let b = arb_source(&mut rng);
        let big = a.multiplex(&b);
        let small = a;
        if let (Ok(ds), Ok(db)) = (
            small.delay_bound(&BitStream::zero()),
            big.delay_bound(&BitStream::zero()),
        ) {
            assert!(db >= ds);
        }
    }
}

#[test]
fn source_streams_are_link_feasible() {
    let mut rng = Rng(115);
    for _ in 0..CASES {
        let s = arb_source(&mut rng);
        assert!(s.peak_rate() <= Rate::FULL);
        assert_eq!(s.delay_bound(&BitStream::zero()).unwrap(), Time::ZERO);
    }
}

#[test]
fn scale_matches_repeated_multiplex() {
    let mut rng = Rng(116);
    for _ in 0..CASES {
        let s = arb_source(&mut rng);
        let n = rng.range(1, 8) as usize;
        let muxed = BitStream::multiplex_all(std::iter::repeat_n(&s, n));
        let scaled = s.scale(ratio(n as i128, 1)).unwrap();
        assert_eq!(muxed, scaled);
    }
}

/// Brute-force cross-check of Algorithm 4.1 on random streams: the
/// analytic horizontal deviation must match a fine-grid scan within
/// one grid step (the scan rounds its inverse upward).
#[test]
fn delay_bound_matches_brute_force_scan() {
    let mut rng = Rng(117);
    for _ in 0..40 {
        let arrival = arb_stream(&mut rng);
        let interference = arb_source(&mut rng).filter();
        let Ok(analytic) = arrival.delay_bound(&interference) else {
            continue; // overloaded: nothing to compare
        };
        // Fine-grid scan of D(t) = C^{-1}(A(t)) - t over t in [0, 120].
        let step = ratio(1, 8);
        let mut best = Time::ZERO;
        let mut g = Time::ZERO;
        for k in 0..(120 * 8) {
            let t = Time::new(ratio(k, 8));
            let a = arrival.cumulative(t);
            // Advance g until C(g) >= a (C and A are non-decreasing, so
            // g only moves forward).
            loop {
                let c = Cells::new(g.as_ratio()) - interference.cumulative(g);
                if c >= a {
                    break;
                }
                g = Time::new(g.as_ratio() + step);
            }
            if g - t > best {
                best = g - t;
            }
        }
        let slack = Time::new(ratio(1, 4));
        assert!(
            analytic >= best - slack,
            "analytic {analytic} far below scan {best} for {arrival} / {interference}"
        );
        assert!(
            best >= analytic - slack,
            "scan {best} far below analytic {analytic} for {arrival} / {interference}"
        );
    }
}
