//! Property-based tests for the bit-stream algebra.
//!
//! These check the mathematical laws the paper's CAC bookkeeping relies
//! on: multiplexing is a commutative monoid, demultiplexing inverts it,
//! filtering is an idempotent contraction, delaying only inflates
//! envelopes, and the delay bound is monotone and conservative.

use proptest::collection::vec;
use proptest::prelude::*;
use rtcac_bitstream::{BitStream, Cells, Rate, Time, TrafficContract, VbrParams};
use rtcac_rational::{ratio, Ratio};

/// Strategy: an arbitrary valid bit stream with small rational
/// breakpoints (rates non-increasing, possibly exceeding the link rate
/// to model aggregates).
fn arb_stream() -> impl Strategy<Value = BitStream> {
    // Generate up to 6 rate drops and 6 positive gaps, then integrate.
    (
        vec((1i128..=8, 1i128..=4), 1..6),
        vec((1i128..=12, 1i128..=3), 0..5),
        0i128..=3,
    )
        .prop_map(|(drops, gaps, base)| {
            // Rates: partial sums of drops from the top, descending.
            let mut rates: Vec<Ratio> = Vec::new();
            let mut acc = ratio(base, 1);
            for &(n, d) in drops.iter().rev() {
                acc += ratio(n, d * 4);
                rates.push(acc);
            }
            rates.reverse(); // now non-increasing
            let mut t = ratio(0, 1);
            let mut pairs = Vec::new();
            for (i, r) in rates.iter().enumerate() {
                pairs.push((*r, t));
                if let Some(&(n, d)) = gaps.get(i) {
                    t += ratio(n, d);
                } else {
                    t += ratio(2, 1);
                }
            }
            BitStream::from_rate_breaks(pairs).expect("constructed valid")
        })
}

/// Strategy: a link-feasible stream (peak <= 1), like a real source.
fn arb_source() -> impl Strategy<Value = BitStream> {
    (1i128..=16, 1i128..=16, 1u64..=32).prop_map(|(p, s, mbs)| {
        let pcr = ratio(1, p);
        let scr = ratio(1, s.max(p)); // scr <= pcr
        TrafficContract::vbr(
            VbrParams::new(Rate::new(pcr), Rate::new(scr), mbs).expect("valid"),
        )
        .worst_case_stream()
    })
}

fn sample_times() -> Vec<Time> {
    (0..60).map(|k| Time::new(ratio(k, 3))).collect()
}

proptest! {
    #[test]
    fn multiplex_commutative(a in arb_stream(), b in arb_stream()) {
        prop_assert_eq!(a.multiplex(&b), b.multiplex(&a));
    }

    #[test]
    fn multiplex_associative(a in arb_stream(), b in arb_stream(), c in arb_stream()) {
        prop_assert_eq!(
            a.multiplex(&b).multiplex(&c),
            a.multiplex(&b.multiplex(&c))
        );
    }

    #[test]
    fn multiplex_zero_identity(a in arb_stream()) {
        prop_assert_eq!(a.multiplex(&BitStream::zero()), a);
    }

    #[test]
    fn multiplex_cumulative_additive(a in arb_stream(), b in arb_stream()) {
        let s = a.multiplex(&b);
        for t in sample_times() {
            prop_assert_eq!(s.cumulative(t), a.cumulative(t) + b.cumulative(t));
        }
    }

    #[test]
    fn demultiplex_inverts_multiplex(a in arb_stream(), b in arb_stream()) {
        let sum = a.multiplex(&b);
        prop_assert_eq!(sum.demultiplex(&b).unwrap(), a.clone());
        prop_assert_eq!(sum.demultiplex(&a).unwrap(), b);
    }

    #[test]
    fn filter_never_exceeds_capacity_or_input(a in arb_stream()) {
        let f = a.filter();
        prop_assert!(f.peak_rate() <= Rate::FULL);
        for t in sample_times() {
            prop_assert!(f.cumulative(t) <= a.cumulative(t));
            prop_assert!(f.cumulative(t) <= Cells::new(t.as_ratio()));
        }
    }

    #[test]
    fn filter_idempotent(a in arb_stream()) {
        let once = a.filter();
        prop_assert_eq!(once.filter(), once);
    }

    #[test]
    fn filter_envelope_is_exact_min(a in arb_stream()) {
        // filter(S) must equal min(t, R(t)) pointwise, not merely bound it.
        let f = a.filter();
        for t in sample_times() {
            let expect = a.cumulative(t).min(Cells::new(t.as_ratio()));
            prop_assert_eq!(f.cumulative(t), expect);
        }
    }

    #[test]
    fn filter_long_run_rate_is_min_with_capacity(a in arb_stream()) {
        // Stable inputs keep their long-run rate; overloaded inputs
        // saturate at the link rate forever.
        let expect = a.long_run_rate().min(Rate::FULL);
        prop_assert_eq!(a.filter().long_run_rate(), expect);
    }

    #[test]
    fn coarsen_dominates_with_bounded_denominators(a in arb_stream(), grid in 1i128..=128) {
        let c = a.coarsen(grid).unwrap();
        prop_assert!(c.dominates(&a));
        for seg in c.segments() {
            prop_assert!(seg.rate.as_ratio().denom() <= grid);
            prop_assert!(seg.start.as_ratio().denom() <= grid);
        }
        // Long-run rate inflates by at most one grid step.
        prop_assert!(
            c.long_run_rate().as_ratio() - a.long_run_rate().as_ratio()
                <= rtcac_rational::ratio(1, grid)
        );
    }

    #[test]
    fn delay_envelope_is_exact_min(a in arb_source(), cdv in 0i128..=40) {
        let cdv = Time::from_integer(cdv);
        let d = a.delay(cdv);
        for t in sample_times() {
            let expect = a.cumulative(t + cdv).min(Cells::new(t.as_ratio()));
            prop_assert_eq!(d.cumulative(t), expect, "at t = {}", t);
        }
    }

    #[test]
    fn delay_monotone_in_cdv(a in arb_source(), c1 in 0i128..=20, c2 in 0i128..=20) {
        let (lo, hi) = (c1.min(c2), c1.max(c2));
        let dl = a.delay(Time::from_integer(lo));
        let dh = a.delay(Time::from_integer(hi));
        for t in sample_times() {
            prop_assert!(dh.cumulative(t) >= dl.cumulative(t));
        }
    }

    #[test]
    fn delay_additive_composition(a in arb_source(), c1 in 1i128..=15, c2 in 1i128..=15) {
        // delay(c1) then delay(c2) equals delay(c1 + c2) exactly:
        // min(t, min(t + c2, R(t + c1 + c2))) = min(t, R(t + c1 + c2)).
        let split = a
            .delay(Time::from_integer(c1))
            .delay(Time::from_integer(c2));
        let joint = a.delay(Time::from_integer(c1 + c2));
        prop_assert_eq!(split, joint);
    }

    #[test]
    fn delay_bound_conservative_vs_backlog(a in arb_stream()) {
        // At top priority the delay bound equals the max backlog.
        match (a.delay_bound(&BitStream::zero()), a.backlog_bound(Rate::FULL)) {
            (Ok(d), Some(b)) => prop_assert_eq!(d.as_ratio(), b.as_ratio()),
            (Err(_), None) => {} // both agree: overload
            (d, b) => prop_assert!(false, "disagree: {:?} vs {:?}", d, b),
        }
    }

    #[test]
    fn delay_bound_monotone_in_interference(a in arb_source(), h in arb_source()) {
        let agg = BitStream::multiplex_all([&a, &a, &a]);
        let none = agg.delay_bound(&BitStream::zero());
        let some = agg.delay_bound(&h.filter());
        if let (Ok(d0), Ok(d1)) = (none, some) {
            prop_assert!(d1 >= d0);
        }
    }

    #[test]
    fn delay_bound_superadditive_under_mux(a in arb_source(), b in arb_source()) {
        // Adding traffic never shrinks the bound.
        let big = a.multiplex(&b);
        let small = a;
        if let (Ok(ds), Ok(db)) = (
            small.delay_bound(&BitStream::zero()),
            big.delay_bound(&BitStream::zero()),
        ) {
            prop_assert!(db >= ds);
        }
    }

    #[test]
    fn source_streams_are_link_feasible(s in arb_source()) {
        prop_assert!(s.peak_rate() <= Rate::FULL);
        prop_assert_eq!(s.delay_bound(&BitStream::zero()).unwrap(), Time::ZERO);
    }

    #[test]
    fn scale_matches_repeated_multiplex(s in arb_source(), n in 1usize..=8) {
        let muxed = BitStream::multiplex_all(std::iter::repeat_n(&s, n));
        let scaled = s.scale(ratio(n as i128, 1)).unwrap();
        prop_assert_eq!(muxed, scaled);
    }
}

/// Brute-force cross-check of Algorithm 4.1 on random streams: the
/// analytic horizontal deviation must match a fine-grid scan within
/// one grid step (the scan rounds its inverse upward).
#[test]
fn delay_bound_matches_brute_force_scan() {
    use proptest::strategy::{Strategy, ValueTree};
    use proptest::test_runner::TestRunner;

    let mut runner = TestRunner::deterministic();
    for _ in 0..40 {
        let arrival = arb_stream()
            .new_tree(&mut runner)
            .expect("generate")
            .current();
        let interference = arb_source()
            .new_tree(&mut runner)
            .expect("generate")
            .current()
            .filter();
        let Ok(analytic) = arrival.delay_bound(&interference) else {
            continue; // overloaded: nothing to compare
        };
        // Fine-grid scan of D(t) = C^{-1}(A(t)) - t over t in [0, 120].
        let step = ratio(1, 8);
        let mut best = Time::ZERO;
        let mut g = Time::ZERO;
        for k in 0..(120 * 8) {
            let t = Time::new(ratio(k, 8));
            let a = arrival.cumulative(t);
            // Advance g until C(g) >= a (C and A are non-decreasing, so
            // g only moves forward).
            loop {
                let c = Cells::new(g.as_ratio()) - interference.cumulative(g);
                if c >= a {
                    break;
                }
                g = Time::new(g.as_ratio() + step);
            }
            if g - t > best {
                best = g - t;
            }
        }
        let slack = Time::new(ratio(1, 4));
        assert!(
            analytic >= best - slack,
            "analytic {analytic} far below scan {best} for {arrival} / {interference}"
        );
        assert!(
            best >= analytic - slack,
            "scan {best} far below analytic {analytic} for {arrival} / {interference}"
        );
    }
}
