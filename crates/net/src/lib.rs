//! Network topology substrate for ATM connection admission control.
//!
//! The paper's CAC scheme (§4.3) and its RTnet evaluation (§5) operate
//! on a network of switches and end systems joined by unidirectional
//! transmission links. This crate provides that substrate:
//!
//! - [`Topology`]: a validated graph of [`Node`]s (switches and end
//!   systems) and [`Link`]s with normalized capacities;
//! - [`Route`]: a validated, contiguous path of links from a source end
//!   system to a destination;
//! - [`builders`]: canonical topologies — [`builders::line`],
//!   [`builders::ring`], [`builders::star`], and the paper's RTnet
//!   [`builders::star_ring`] (Figure 9).
//!
//! # Examples
//!
//! ```
//! use rtcac_net::builders;
//!
//! // The RTnet of the paper's evaluation: 16 ring nodes, 4 terminals
//! // each (Figure 9).
//! let sr = builders::star_ring(16, 4)?;
//! assert_eq!(sr.ring_nodes().len(), 16);
//! assert_eq!(sr.terminals(0)?.len(), 4);
//!
//! // A broadcast route from the first terminal all the way around
//! // the ring:
//! let route = sr.ring_route_from_terminal(0, 0, 15)?;
//! assert_eq!(route.links().len(), 16); // access link + 15 ring hops
//! # Ok::<(), rtcac_net::NetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
mod error;
mod ids;
mod multicast;
mod route;
mod topology;

pub use builders::StarRing;
pub use error::NetError;
pub use ids::{LinkId, NodeId};
pub use multicast::MulticastTree;
pub use route::Route;
pub use topology::{Link, Node, NodeKind, Topology};
