//! The [`Topology`] graph: nodes and unidirectional links.

use rtcac_bitstream::Rate;

use crate::{LinkId, NetError, NodeId};

/// The role a node plays in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A switching node with priority FIFO output queues; runs CAC.
    Switch,
    /// A terminal / end system: sources and sinks traffic, shapes at
    /// the source, does not queue transit traffic.
    EndSystem,
}

/// A node of the topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    id: NodeId,
    name: String,
    kind: NodeKind,
}

impl Node {
    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's role.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Whether the node is a switch.
    pub fn is_switch(&self) -> bool {
        self.kind == NodeKind::Switch
    }
}

/// A unidirectional transmission link.
///
/// Capacities are normalized to the reference link bandwidth of the
/// network (1 = e.g. 155 Mbps in RTnet), matching the paper's units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    id: LinkId,
    from: NodeId,
    to: NodeId,
    capacity: Rate,
}

impl Link {
    /// The link's identifier.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// The sending node.
    pub fn from(&self) -> NodeId {
        self.from
    }

    /// The receiving node.
    pub fn to(&self) -> NodeId {
        self.to
    }

    /// The link capacity, normalized to the reference bandwidth.
    pub fn capacity(&self) -> Rate {
        self.capacity
    }
}

/// A validated directed graph of switches, end systems and links.
///
/// # Examples
///
/// ```
/// use rtcac_net::{NodeKind, Topology};
///
/// let mut t = Topology::new();
/// let host = t.add_end_system("host");
/// let sw = t.add_switch("sw0");
/// let up = t.add_link(host, sw)?;
/// assert_eq!(t.link(up)?.to(), sw);
/// assert_eq!(t.node(sw)?.kind(), NodeKind::Switch);
/// # Ok::<(), rtcac_net::NetError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    node_up: Vec<bool>,
    link_up: Vec<bool>,
    health_epoch: u64,
}

/// Two topologies are equal when they have the same graph *and* the
/// same element health; the health epoch (a change counter) is
/// deliberately excluded so a failed-then-healed topology compares
/// equal to a pristine clone.
impl PartialEq for Topology {
    fn eq(&self, other: &Topology) -> bool {
        self.nodes == other.nodes
            && self.links == other.links
            && self.node_up == other.node_up
            && self.link_up == other.link_up
    }
}

impl Eq for Topology {}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a switch node and returns its id.
    pub fn add_switch(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, NodeKind::Switch)
    }

    /// Adds an end-system node and returns its id.
    pub fn add_end_system(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, NodeKind::EndSystem)
    }

    /// Adds a node of the given kind and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            name: name.into(),
            kind,
        });
        self.node_up.push(true);
        id
    }

    /// Adds a full-rate unidirectional link.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`], [`NetError::SelfLoop`], or
    /// [`NetError::DuplicateLink`].
    pub fn add_link(&mut self, from: NodeId, to: NodeId) -> Result<LinkId, NetError> {
        self.add_link_with_capacity(from, to, Rate::FULL)
    }

    /// Adds a unidirectional link with an explicit capacity.
    ///
    /// # Errors
    ///
    /// As [`Topology::add_link`], plus [`NetError::BadCapacity`] for a
    /// non-positive capacity.
    pub fn add_link_with_capacity(
        &mut self,
        from: NodeId,
        to: NodeId,
        capacity: Rate,
    ) -> Result<LinkId, NetError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Err(NetError::SelfLoop(from));
        }
        if !capacity.is_positive() {
            return Err(NetError::BadCapacity);
        }
        if self.find_link(from, to).is_ok() {
            return Err(NetError::DuplicateLink { from, to });
        }
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            from,
            to,
            capacity,
        });
        self.link_up.push(true);
        Ok(id)
    }

    /// Adds a pair of opposite links (a "duplex" connection).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Topology::add_link`].
    pub fn add_duplex(&mut self, a: NodeId, b: NodeId) -> Result<(LinkId, LinkId), NetError> {
        let ab = self.add_link(a, b)?;
        let ba = self.add_link(b, a)?;
        Ok((ab, ba))
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for an id from another
    /// topology.
    pub fn node(&self, id: NodeId) -> Result<&Node, NetError> {
        self.nodes.get(id.index()).ok_or(NetError::UnknownNode(id))
    }

    /// Looks up a link.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] for an id from another
    /// topology.
    pub fn link(&self, id: LinkId) -> Result<&Link, NetError> {
        self.links.get(id.index()).ok_or(NetError::UnknownLink(id))
    }

    /// The link from `from` to `to`, if one exists.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoSuchLink`] if the nodes are not adjacent.
    pub fn find_link(&self, from: NodeId, to: NodeId) -> Result<LinkId, NetError> {
        self.links
            .iter()
            .find(|l| l.from == from && l.to == to)
            .map(|l| l.id)
            .ok_or(NetError::NoSuchLink { from, to })
    }

    /// All links departing `node`.
    pub fn links_from(&self, node: NodeId) -> impl Iterator<Item = &Link> + '_ {
        self.links.iter().filter(move |l| l.from == node)
    }

    /// All links arriving at `node`.
    pub fn links_into(&self, node: NodeId) -> impl Iterator<Item = &Link> + '_ {
        self.links.iter().filter(move |l| l.to == node)
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All switch nodes.
    pub fn switches(&self) -> impl Iterator<Item = &Node> + '_ {
        self.nodes.iter().filter(|n| n.is_switch())
    }

    /// All end-system nodes.
    pub fn end_systems(&self) -> impl Iterator<Item = &Node> + '_ {
        self.nodes.iter().filter(|n| !n.is_switch())
    }

    /// The health epoch: a counter bumped every time any element's
    /// health actually changes. Admission layers snapshot it before a
    /// multi-step operation and re-check afterwards to detect a
    /// failure that raced the operation.
    pub fn health_epoch(&self) -> u64 {
        self.health_epoch
    }

    /// Whether every node and link is up.
    pub fn all_healthy(&self) -> bool {
        self.node_up.iter().all(|&u| u) && self.link_up.iter().all(|&u| u)
    }

    /// Whether a link is administratively up (ignores endpoint health;
    /// see [`Topology::link_usable`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] for a foreign id.
    pub fn link_is_up(&self, id: LinkId) -> Result<bool, NetError> {
        self.link_up
            .get(id.index())
            .copied()
            .ok_or(NetError::UnknownLink(id))
    }

    /// Whether a node is up.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for a foreign id.
    pub fn node_is_up(&self, id: NodeId) -> Result<bool, NetError> {
        self.node_up
            .get(id.index())
            .copied()
            .ok_or(NetError::UnknownNode(id))
    }

    /// Whether a link can carry traffic: the link itself and both of
    /// its endpoints are up.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] for a foreign id.
    pub fn link_usable(&self, id: LinkId) -> Result<bool, NetError> {
        let link = self.link(id)?;
        Ok(self.link_up[id.index()]
            && self.node_up[link.from().index()]
            && self.node_up[link.to().index()])
    }

    /// Marks a link down. Returns whether the state changed (failing an
    /// already-failed link is a no-op and does not bump the health
    /// epoch).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] for a foreign id.
    pub fn fail_link(&mut self, id: LinkId) -> Result<bool, NetError> {
        self.set_link_health(id, false)
    }

    /// Marks a link up again. Returns whether the state changed.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] for a foreign id.
    pub fn heal_link(&mut self, id: LinkId) -> Result<bool, NetError> {
        self.set_link_health(id, true)
    }

    /// Marks a node down (its attached links become unusable). Returns
    /// whether the state changed.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for a foreign id.
    pub fn fail_node(&mut self, id: NodeId) -> Result<bool, NetError> {
        self.set_node_health(id, false)
    }

    /// Marks a node up again. Returns whether the state changed.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for a foreign id.
    pub fn heal_node(&mut self, id: NodeId) -> Result<bool, NetError> {
        self.set_node_health(id, true)
    }

    fn set_link_health(&mut self, id: LinkId, up: bool) -> Result<bool, NetError> {
        let slot = self
            .link_up
            .get_mut(id.index())
            .ok_or(NetError::UnknownLink(id))?;
        let changed = *slot != up;
        *slot = up;
        if changed {
            self.health_epoch += 1;
        }
        Ok(changed)
    }

    fn set_node_health(&mut self, id: NodeId, up: bool) -> Result<bool, NetError> {
        let slot = self
            .node_up
            .get_mut(id.index())
            .ok_or(NetError::UnknownNode(id))?;
        let changed = *slot != up;
        *slot = up;
        if changed {
            self.health_epoch += 1;
        }
        Ok(changed)
    }

    /// The shortest route (fewest links) from `from` to `to`, found by
    /// breadth-first search. Intermediate nodes are restricted to
    /// switches (end systems do not forward), and dead links and nodes
    /// are excluded — on an all-healthy topology this is the classic
    /// shortest path.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for foreign ids and
    /// [`NetError::NoSuchLink`] when no forwarding path exists.
    ///
    /// ```
    /// use rtcac_net::Topology;
    ///
    /// let mut t = Topology::new();
    /// let a = t.add_end_system("a");
    /// let s1 = t.add_switch("s1");
    /// let s2 = t.add_switch("s2");
    /// let b = t.add_end_system("b");
    /// t.add_link(a, s1)?;
    /// t.add_link(s1, s2)?;
    /// t.add_link(s2, b)?;
    /// let route = t.shortest_route(a, b)?;
    /// assert_eq!(route.hops(), 3);
    /// # Ok::<(), rtcac_net::NetError>(())
    /// ```
    pub fn shortest_route(&self, from: NodeId, to: NodeId) -> Result<crate::Route, NetError> {
        self.shortest_route_avoiding(from, to, &[], &[])
    }

    /// [`Topology::shortest_route`] with an additional exclusion set:
    /// the returned route crosses none of `excluded_links` and forwards
    /// through none of `excluded_nodes` (dead elements are always
    /// excluded). This is the search crankback rerouting uses to retry
    /// a setup around the element that failed it.
    ///
    /// # Errors
    ///
    /// As [`Topology::shortest_route`]; a fully excluded or partitioned
    /// pair yields [`NetError::NoSuchLink`].
    pub fn shortest_route_avoiding(
        &self,
        from: NodeId,
        to: NodeId,
        excluded_links: &[LinkId],
        excluded_nodes: &[NodeId],
    ) -> Result<crate::Route, NetError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Err(NetError::NoSuchLink { from, to });
        }
        let usable = |node: NodeId| self.node_up[node.index()] && !excluded_nodes.contains(&node);
        if !usable(from) || !usable(to) {
            return Err(NetError::NoSuchLink { from, to });
        }
        // BFS over nodes; predecessors remember the link used.
        let mut pred: Vec<Option<LinkId>> = vec![None; self.nodes.len()];
        let mut visited = vec![false; self.nodes.len()];
        visited[from.index()] = true;
        let mut queue = std::collections::VecDeque::from([from]);
        'search: while let Some(node) = queue.pop_front() {
            // Only the source and switches may forward.
            if node != from && !self.nodes[node.index()].is_switch() {
                continue;
            }
            for link in self.links_from(node) {
                let next = link.to();
                if !self.link_up[link.id().index()]
                    || excluded_links.contains(&link.id())
                    || !usable(next)
                {
                    continue;
                }
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    pred[next.index()] = Some(link.id());
                    if next == to {
                        break 'search;
                    }
                    queue.push_back(next);
                }
            }
        }
        let mut links = Vec::new();
        let mut current = to;
        while current != from {
            let Some(link) = pred[current.index()] else {
                return Err(NetError::NoSuchLink { from, to });
            };
            links.push(link);
            current = self.links[link.index()].from;
        }
        links.reverse();
        crate::Route::new(self, links)
    }

    fn check_node(&self, id: NodeId) -> Result<(), NetError> {
        if id.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(NetError::UnknownNode(id))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_rational::ratio;

    #[test]
    fn build_and_query() {
        let mut t = Topology::new();
        let a = t.add_end_system("a");
        let s = t.add_switch("s");
        let b = t.add_end_system("b");
        let l1 = t.add_link(a, s).unwrap();
        let l2 = t.add_link(s, b).unwrap();
        assert_eq!(t.nodes().len(), 3);
        assert_eq!(t.links().len(), 2);
        assert_eq!(t.node(s).unwrap().name(), "s");
        assert!(t.node(s).unwrap().is_switch());
        assert!(!t.node(a).unwrap().is_switch());
        assert_eq!(t.link(l1).unwrap().from(), a);
        assert_eq!(t.link(l2).unwrap().to(), b);
        assert_eq!(t.find_link(a, s).unwrap(), l1);
        assert_eq!(t.links_from(s).count(), 1);
        assert_eq!(t.links_into(s).count(), 1);
        assert_eq!(t.switches().count(), 1);
        assert_eq!(t.end_systems().count(), 2);
    }

    #[test]
    fn default_capacity_is_full() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let b = t.add_switch("b");
        let l = t.add_link(a, b).unwrap();
        assert_eq!(t.link(l).unwrap().capacity(), Rate::FULL);
    }

    #[test]
    fn custom_capacity() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let b = t.add_switch("b");
        let l = t
            .add_link_with_capacity(a, b, Rate::new(ratio(1, 4)))
            .unwrap();
        assert_eq!(t.link(l).unwrap().capacity(), Rate::new(ratio(1, 4)));
    }

    #[test]
    fn rejects_self_loop() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        assert_eq!(t.add_link(a, a), Err(NetError::SelfLoop(a)));
    }

    #[test]
    fn rejects_duplicate() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let b = t.add_switch("b");
        t.add_link(a, b).unwrap();
        assert!(matches!(
            t.add_link(a, b),
            Err(NetError::DuplicateLink { .. })
        ));
        // The reverse direction is a different link.
        assert!(t.add_link(b, a).is_ok());
    }

    #[test]
    fn rejects_unknown_node() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let ghost = NodeId(99);
        assert_eq!(t.add_link(a, ghost), Err(NetError::UnknownNode(ghost)));
        assert_eq!(t.node(ghost).unwrap_err(), NetError::UnknownNode(ghost));
        assert_eq!(
            t.link(LinkId(0)).unwrap_err(),
            NetError::UnknownLink(LinkId(0))
        );
    }

    #[test]
    fn rejects_bad_capacity() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let b = t.add_switch("b");
        assert_eq!(
            t.add_link_with_capacity(a, b, Rate::ZERO),
            Err(NetError::BadCapacity)
        );
    }

    #[test]
    fn duplex_creates_both_directions() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let b = t.add_switch("b");
        let (ab, ba) = t.add_duplex(a, b).unwrap();
        assert_eq!(t.link(ab).unwrap().from(), a);
        assert_eq!(t.link(ba).unwrap().from(), b);
    }

    #[test]
    fn shortest_route_bfs() {
        // Diamond with a shortcut: a -> s1 -> {s2 -> s4, s3} -> d, and
        // s1 -> s4 directly.
        let mut t = Topology::new();
        let a = t.add_end_system("a");
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let s4 = t.add_switch("s4");
        let d = t.add_end_system("d");
        t.add_link(a, s1).unwrap();
        t.add_link(s1, s2).unwrap();
        t.add_link(s2, s4).unwrap();
        let shortcut = t.add_link(s1, s4).unwrap();
        t.add_link(s4, d).unwrap();
        let route = t.shortest_route(a, d).unwrap();
        assert_eq!(route.hops(), 3);
        assert!(route.links().contains(&shortcut));
    }

    #[test]
    fn shortest_route_does_not_forward_through_end_systems() {
        // a -> b (end system) -> c: no forwarding path.
        let mut t = Topology::new();
        let a = t.add_end_system("a");
        let b = t.add_end_system("b");
        let c = t.add_end_system("c");
        t.add_link(a, b).unwrap();
        t.add_link(b, c).unwrap();
        assert!(matches!(
            t.shortest_route(a, c),
            Err(NetError::NoSuchLink { .. })
        ));
        // The direct hop is fine (the source may be an end system).
        assert_eq!(t.shortest_route(a, b).unwrap().hops(), 1);
    }

    #[test]
    fn shortest_route_rejects_self_and_unknown() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        assert!(t.shortest_route(a, a).is_err());
        assert!(t.shortest_route(a, NodeId(9)).is_err());
    }

    #[test]
    fn no_such_link() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let b = t.add_switch("b");
        assert!(matches!(
            t.find_link(a, b),
            Err(NetError::NoSuchLink { .. })
        ));
    }

    /// A diamond: a -> s1 -> {s2, s3} -> s4 -> d, where both middle
    /// paths have the same length.
    fn diamond() -> (Topology, [NodeId; 6], [LinkId; 6]) {
        let mut t = Topology::new();
        let a = t.add_end_system("a");
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let s3 = t.add_switch("s3");
        let s4 = t.add_switch("s4");
        let d = t.add_end_system("d");
        let up = t.add_link(a, s1).unwrap();
        let via2 = t.add_link(s1, s2).unwrap();
        let via3 = t.add_link(s1, s3).unwrap();
        let m2 = t.add_link(s2, s4).unwrap();
        let m3 = t.add_link(s3, s4).unwrap();
        let down = t.add_link(s4, d).unwrap();
        (t, [a, s1, s2, s3, s4, d], [up, via2, via3, m2, m3, down])
    }

    #[test]
    fn health_defaults_up_and_epoch_counts_changes() {
        let (mut t, _, [up, ..]) = diamond();
        assert!(t.all_healthy());
        assert_eq!(t.health_epoch(), 0);
        assert!(t.link_is_up(up).unwrap());
        assert!(t.fail_link(up).unwrap());
        assert!(!t.all_healthy());
        assert!(!t.link_usable(up).unwrap());
        assert_eq!(t.health_epoch(), 1);
        // Failing an already-failed link is a no-op.
        assert!(!t.fail_link(up).unwrap());
        assert_eq!(t.health_epoch(), 1);
        assert!(t.heal_link(up).unwrap());
        assert!(t.all_healthy());
        assert_eq!(t.health_epoch(), 2);
        // Foreign ids are rejected.
        assert!(t.fail_link(LinkId(99)).is_err());
        assert!(t.fail_node(NodeId(99)).is_err());
        assert!(t.link_is_up(LinkId(99)).is_err());
        assert!(t.node_is_up(NodeId(99)).is_err());
    }

    #[test]
    fn node_failure_kills_attached_links() {
        let (mut t, [_, _, s2, ..], [_, via2, ..]) = diamond();
        assert!(t.fail_node(s2).unwrap());
        assert!(!t.node_is_up(s2).unwrap());
        // The link itself is administratively up but unusable.
        assert!(t.link_is_up(via2).unwrap());
        assert!(!t.link_usable(via2).unwrap());
        t.heal_node(s2).unwrap();
        assert!(t.link_usable(via2).unwrap());
    }

    #[test]
    fn route_search_excludes_dead_elements() {
        let (mut t, [a, _, s2, s3, _, d], [_, via2, _, m2, m3, _]) = diamond();
        // Healthy: some 4-hop path exists.
        assert_eq!(t.shortest_route(a, d).unwrap().hops(), 4);
        // Kill one middle path: the other is found.
        t.fail_link(via2).unwrap();
        let route = t.shortest_route(a, d).unwrap();
        assert_eq!(route.hops(), 4);
        assert!(route.links().contains(&m3));
        assert!(!route.links().contains(&m2));
        // Kill the other middle switch too: no path remains.
        t.fail_node(s3).unwrap();
        assert!(matches!(
            t.shortest_route(a, d),
            Err(NetError::NoSuchLink { .. })
        ));
        // Heal everything: the search recovers.
        t.heal_link(via2).unwrap();
        t.heal_node(s3).unwrap();
        assert_eq!(t.shortest_route(a, d).unwrap().hops(), 4);
        // A dead endpoint has no routes at all.
        t.fail_node(s2).unwrap();
        assert!(t.shortest_route(a, s2).is_err());
    }

    #[test]
    fn route_search_avoids_excluded_elements() {
        let (t, [a, _, s2, _, _, d], [_, _, _, m2, m3, _]) = diamond();
        let route = t.shortest_route_avoiding(a, d, &[m3], &[]).unwrap();
        assert!(route.links().contains(&m2));
        let route = t.shortest_route_avoiding(a, d, &[], &[s2]).unwrap();
        assert!(route.links().contains(&m3));
        // Excluding both middle paths partitions the pair.
        assert!(t.shortest_route_avoiding(a, d, &[m2, m3], &[]).is_err());
    }

    #[test]
    fn equality_ignores_health_epoch_but_not_health() {
        let (mut t, _, [up, ..]) = diamond();
        let pristine = t.clone();
        t.fail_link(up).unwrap();
        assert_ne!(t, pristine);
        t.heal_link(up).unwrap();
        // Same graph, same health, different epoch history: equal.
        assert_eq!(t, pristine);
        assert_ne!(t.health_epoch(), pristine.health_epoch());
    }
}
