//! Error type for topology and route validation.

use core::fmt;

use crate::{LinkId, NodeId};

/// Error produced by topology construction and route validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum NetError {
    /// A node id did not exist in the topology.
    UnknownNode(NodeId),
    /// A link id did not exist in the topology.
    UnknownLink(LinkId),
    /// A link's endpoints were the same node.
    SelfLoop(NodeId),
    /// A link with the same endpoints already exists.
    DuplicateLink {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
    },
    /// No link connects the two nodes.
    NoSuchLink {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
    },
    /// Consecutive route links did not share a node.
    DisconnectedRoute {
        /// The link whose source does not match the previous link's
        /// destination.
        at: LinkId,
    },
    /// A route must contain at least one link.
    EmptyRoute,
    /// A link capacity was zero or negative.
    BadCapacity,
    /// An operation required a switch but the node is an end system.
    NotASwitch(NodeId),
    /// A builder parameter was out of range (e.g. a ring of one node).
    BadParameter(&'static str),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(id) => write!(f, "unknown node {id}"),
            NetError::UnknownLink(id) => write!(f, "unknown link {id}"),
            NetError::SelfLoop(id) => write!(f, "link endpoints are both {id}"),
            NetError::DuplicateLink { from, to } => {
                write!(f, "link {from} -> {to} already exists")
            }
            NetError::NoSuchLink { from, to } => {
                write!(f, "no link connects {from} -> {to}")
            }
            NetError::DisconnectedRoute { at } => {
                write!(f, "route is not contiguous at link {at}")
            }
            NetError::EmptyRoute => write!(f, "route has no links"),
            NetError::BadCapacity => write!(f, "link capacity must be positive"),
            NetError::NotASwitch(id) => write!(f, "node {id} is not a switch"),
            NetError::BadParameter(what) => write!(f, "invalid builder parameter: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_nonempty() {
        let cases = [
            NetError::UnknownNode(NodeId(1)),
            NetError::UnknownLink(LinkId(2)),
            NetError::SelfLoop(NodeId(0)),
            NetError::DuplicateLink {
                from: NodeId(0),
                to: NodeId(1),
            },
            NetError::NoSuchLink {
                from: NodeId(0),
                to: NodeId(1),
            },
            NetError::DisconnectedRoute { at: LinkId(3) },
            NetError::EmptyRoute,
            NetError::BadCapacity,
            NetError::NotASwitch(NodeId(9)),
            NetError::BadParameter("n must be >= 2"),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
