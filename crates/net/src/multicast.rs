//! Point-to-multipoint routes (ATM p2mp VCs).
//!
//! RTnet's cyclic transmission is a *broadcast*: one source terminal
//! updates every other terminal. ATM implements this with
//! point-to-multipoint virtual connections — a tree of links rooted at
//! the source, with cells duplicated at branch switches. A
//! [`MulticastTree`] is the validated route object for such a
//! connection; the signaling layer admits it at every `(switch, out
//! link)` of the tree and the simulator duplicates cells at branches.

use std::collections::{BTreeMap, BTreeSet};

use crate::{LinkId, NetError, NodeId, Topology};

/// A validated point-to-multipoint route: a set of links forming a
/// tree rooted at a source node.
///
/// Invariants (checked at construction):
///
/// - non-empty, no duplicate links;
/// - exactly one node (the root) has outgoing tree links but no
///   incoming tree link;
/// - every other link's tail is reached by exactly one tree link (no
///   cycles, no diamonds);
/// - every intermediate (forwarding) node is a switch.
///
/// # Examples
///
/// ```
/// use rtcac_net::{MulticastTree, Topology};
///
/// let mut t = Topology::new();
/// let src = t.add_end_system("src");
/// let sw = t.add_switch("sw");
/// let a = t.add_end_system("a");
/// let b = t.add_end_system("b");
/// let up = t.add_link(src, sw)?;
/// let da = t.add_link(sw, a)?;
/// let db = t.add_link(sw, b)?;
///
/// let tree = MulticastTree::new(&t, [up, da, db])?;
/// assert_eq!(tree.root(), src);
/// assert_eq!(tree.leaves().len(), 2);
/// assert_eq!(tree.queueing_points(&t)?.len(), 2); // sw's two ports
/// # Ok::<(), rtcac_net::NetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulticastTree {
    root: NodeId,
    links: Vec<LinkId>,
    /// Depth of each link in the tree: the number of links on the path
    /// from the root up to and including it.
    depths: Vec<usize>,
    /// The tree link entering each link's tail (None for root links).
    parents: Vec<Option<LinkId>>,
    leaves: Vec<NodeId>,
}

impl MulticastTree {
    /// Builds and validates a multicast tree from a set of links.
    ///
    /// # Errors
    ///
    /// - [`NetError::EmptyRoute`] for an empty set;
    /// - [`NetError::UnknownLink`] for foreign links;
    /// - [`NetError::DisconnectedRoute`] if the links do not form a
    ///   single tree rooted at one node (duplicates, cycles, joins, or
    ///   disconnected pieces);
    /// - [`NetError::NotASwitch`] if a forwarding node is an end
    ///   system.
    pub fn new<I>(topology: &Topology, links: I) -> Result<MulticastTree, NetError>
    where
        I: IntoIterator<Item = LinkId>,
    {
        let links: Vec<LinkId> = links.into_iter().collect();
        if links.is_empty() {
            return Err(NetError::EmptyRoute);
        }
        let mut seen = BTreeSet::new();
        // in-tree incoming link per node.
        let mut parent: BTreeMap<NodeId, LinkId> = BTreeMap::new();
        let mut tails: BTreeSet<NodeId> = BTreeSet::new();
        for &id in &links {
            let link = topology.link(id)?;
            if !seen.insert(id) {
                return Err(NetError::DisconnectedRoute { at: id });
            }
            if parent.insert(link.to(), id).is_some() {
                // Two tree links enter the same node: not a tree.
                return Err(NetError::DisconnectedRoute { at: id });
            }
            tails.insert(link.from());
        }
        // The root: a tail that no tree link enters.
        let parent_of_tail = parent.clone();
        let mut roots = tails.iter().copied().filter(|n| !parent.contains_key(n));
        let root = roots
            .next()
            .ok_or(NetError::DisconnectedRoute { at: links[0] })?;
        if roots.next().is_some() {
            return Err(NetError::DisconnectedRoute { at: links[0] });
        }
        // Depth-first from the root to confirm connectivity, compute
        // depths, and verify forwarding nodes are switches.
        let mut out_links: BTreeMap<NodeId, Vec<LinkId>> = BTreeMap::new();
        for &id in &links {
            let link = topology.link(id)?;
            out_links.entry(link.from()).or_default().push(id);
        }
        for (&node, outs) in &out_links {
            if node != root && !outs.is_empty() && !topology.node(node)?.is_switch() {
                return Err(NetError::NotASwitch(node));
            }
        }
        let mut depths: BTreeMap<LinkId, usize> = BTreeMap::new();
        let mut leaves = Vec::new();
        let mut stack = vec![(root, 0usize)];
        let mut visited_links = 0usize;
        while let Some((node, depth)) = stack.pop() {
            match out_links.get(&node) {
                Some(outs) => {
                    for &id in outs {
                        depths.insert(id, depth + 1);
                        visited_links += 1;
                        stack.push((topology.link(id)?.to(), depth + 1));
                    }
                }
                None => leaves.push(node),
            }
        }
        if visited_links != links.len() {
            // Some links were unreachable from the root.
            return Err(NetError::DisconnectedRoute { at: links[0] });
        }
        leaves.sort();
        let parents = links
            .iter()
            .map(|&id| {
                let tail = topology.link(id).expect("validated").from();
                parent_of_tail.get(&tail).copied()
            })
            .collect();
        let depths = links.iter().map(|id| depths[id]).collect();
        Ok(MulticastTree {
            root,
            links,
            depths,
            parents,
            leaves,
        })
    }

    /// Builds a shortest point-to-multipoint tree from `root` to every
    /// node of `leaves`, as the union of the per-leaf shortest routes
    /// (dead links and nodes are avoided, and only the root and
    /// switches forward). The underlying search is deterministic, so
    /// the per-leaf paths agree on shared prefixes and their union is
    /// a valid tree.
    ///
    /// # Errors
    ///
    /// - [`NetError::EmptyRoute`] when `leaves` is empty;
    /// - [`NetError::UnknownNode`] for foreign nodes;
    /// - [`NetError::NoSuchLink`] when some leaf is unreachable (or is
    ///   the root itself).
    pub fn shortest_tree(
        topology: &Topology,
        root: NodeId,
        leaves: &[NodeId],
    ) -> Result<MulticastTree, NetError> {
        if leaves.is_empty() {
            return Err(NetError::EmptyRoute);
        }
        let mut links: Vec<LinkId> = Vec::new();
        let mut seen: BTreeSet<LinkId> = BTreeSet::new();
        for &leaf in leaves {
            let route = topology.shortest_route(root, leaf)?;
            for &id in route.links() {
                if seen.insert(id) {
                    links.push(id);
                }
            }
        }
        MulticastTree::new(topology, links)
    }

    /// The source node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The tree's links (construction order).
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// The destination nodes (tree nodes with no outgoing tree link).
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// The depth of a link: links on the root path up to and including
    /// it.
    pub fn depth(&self, link: LinkId) -> Option<usize> {
        self.links
            .iter()
            .position(|&l| l == link)
            .map(|i| self.depths[i])
    }

    /// The `(switch, out link, upstream queueing points)` admission
    /// points of the tree: every tree link departing a switch, with the
    /// number of switch ports crossed before it on its root path.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] if the tree belongs to a
    /// different topology.
    pub fn queueing_points(
        &self,
        topology: &Topology,
    ) -> Result<Vec<(NodeId, LinkId, usize)>, NetError> {
        let mut out = Vec::new();
        for (idx, &id) in self.links.iter().enumerate() {
            let from = topology.link(id)?.from();
            if topology.node(from)?.is_switch() {
                // Upstream queueing points = switch-departing links on
                // the root path before this one. The root access link
                // (depth 1) is not a queueing point when the root is an
                // end system, so subtract it from the depth count.
                let depth = self.depths[idx];
                let root_is_switch = topology.node(self.root)?.is_switch();
                let upstream = if root_is_switch { depth - 1 } else { depth - 2 };
                out.push((from, id, upstream));
            }
        }
        Ok(out)
    }

    /// The tree link entering `link`'s tail node, or `None` for a link
    /// departing the root.
    pub fn parent(&self, link: LinkId) -> Option<LinkId> {
        self.links
            .iter()
            .position(|&l| l == link)
            .and_then(|i| self.parents[i])
    }

    /// The root path of a link: every tree link from the root down to
    /// and including `link`. `None` if the link is not in the tree.
    pub fn root_path(&self, link: LinkId) -> Option<Vec<LinkId>> {
        if !self.links.contains(&link) {
            return None;
        }
        let mut path = vec![link];
        let mut current = link;
        while let Some(p) = self.parent(current) {
            path.push(p);
            current = p;
        }
        path.reverse();
        Some(path)
    }

    /// The leaf at the end of each root-to-leaf path, with the path's
    /// links (used for per-destination delay guarantees).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] for a foreign topology.
    pub fn leaf_paths(&self, topology: &Topology) -> Result<Vec<(NodeId, Vec<LinkId>)>, NetError> {
        let mut out = Vec::with_capacity(self.leaves.len());
        for &id in &self.links {
            let to = topology.link(id)?.to();
            if self.leaves.contains(&to) {
                out.push((to, self.root_path(id).expect("own link")));
            }
        }
        out.sort_by_key(|(n, _)| *n);
        Ok(out)
    }

    /// The links departing `node` within the tree (used by the
    /// simulator to duplicate cells at branches).
    pub fn links_from(&self, topology: &Topology, node: NodeId) -> Vec<LinkId> {
        self.links
            .iter()
            .copied()
            .filter(|&id| topology.link(id).map(|l| l.from() == node).unwrap_or(false))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// src -> sw1 -> {a, sw2 -> {b, c}}.
    fn two_level() -> (Topology, Vec<NodeId>, Vec<LinkId>) {
        let mut t = Topology::new();
        let src = t.add_end_system("src");
        let sw1 = t.add_switch("sw1");
        let sw2 = t.add_switch("sw2");
        let a = t.add_end_system("a");
        let b = t.add_end_system("b");
        let c = t.add_end_system("c");
        let up = t.add_link(src, sw1).unwrap();
        let da = t.add_link(sw1, a).unwrap();
        let trunk = t.add_link(sw1, sw2).unwrap();
        let db = t.add_link(sw2, b).unwrap();
        let dc = t.add_link(sw2, c).unwrap();
        (t, vec![src, sw1, sw2, a, b, c], vec![up, da, trunk, db, dc])
    }

    #[test]
    fn builds_two_level_tree() {
        let (t, nodes, links) = two_level();
        let tree = MulticastTree::new(&t, links.clone()).unwrap();
        assert_eq!(tree.root(), nodes[0]);
        assert_eq!(tree.leaves(), &[nodes[3], nodes[4], nodes[5]]);
        assert_eq!(tree.depth(links[0]), Some(1)); // up
        assert_eq!(tree.depth(links[2]), Some(2)); // trunk
        assert_eq!(tree.depth(links[3]), Some(3)); // db
        let qps = tree.queueing_points(&t).unwrap();
        assert_eq!(qps.len(), 4); // da, trunk, db, dc
                                  // da and trunk have 0 upstream switch ports; db/dc have 1.
        let upstream: BTreeMap<LinkId, usize> = qps.iter().map(|&(_, l, u)| (l, u)).collect();
        assert_eq!(upstream[&links[1]], 0);
        assert_eq!(upstream[&links[2]], 0);
        assert_eq!(upstream[&links[3]], 1);
        assert_eq!(upstream[&links[4]], 1);
    }

    #[test]
    fn root_paths_and_leaf_paths() {
        let (t, nodes, links) = two_level();
        let tree = MulticastTree::new(&t, links.clone()).unwrap();
        assert_eq!(tree.root_path(links[0]), Some(vec![links[0]]));
        assert_eq!(
            tree.root_path(links[3]),
            Some(vec![links[0], links[2], links[3]])
        );
        assert_eq!(tree.parent(links[2]), Some(links[0]));
        assert_eq!(tree.parent(links[0]), None);
        let lp = tree.leaf_paths(&t).unwrap();
        assert_eq!(lp.len(), 3);
        assert_eq!(lp[0], (nodes[3], vec![links[0], links[1]]));
        assert_eq!(lp[1], (nodes[4], vec![links[0], links[2], links[3]]));
    }

    #[test]
    fn links_from_finds_branches() {
        let (t, nodes, links) = two_level();
        let tree = MulticastTree::new(&t, links.clone()).unwrap();
        let from_sw1 = tree.links_from(&t, nodes[1]);
        assert_eq!(from_sw1.len(), 2);
        assert!(from_sw1.contains(&links[1]) && from_sw1.contains(&links[2]));
        assert!(tree.links_from(&t, nodes[3]).is_empty());
    }

    #[test]
    fn shortest_tree_unions_per_leaf_paths() {
        let (t, nodes, links) = two_level();
        let tree =
            MulticastTree::shortest_tree(&t, nodes[0], &[nodes[3], nodes[4], nodes[5]]).unwrap();
        assert_eq!(tree.root(), nodes[0]);
        assert_eq!(tree.leaves(), &[nodes[3], nodes[4], nodes[5]]);
        let expected: BTreeSet<LinkId> = links.iter().copied().collect();
        assert_eq!(
            tree.links().iter().copied().collect::<BTreeSet<_>>(),
            expected
        );
        // Duplicate leaves collapse; shared prefixes are not repeated.
        let dup = MulticastTree::shortest_tree(&t, nodes[0], &[nodes[4], nodes[4]]).unwrap();
        assert_eq!(dup.links().len(), 3); // up, trunk, db
    }

    #[test]
    fn shortest_tree_rejects_empty_and_unreachable() {
        let (t, nodes, _) = two_level();
        assert_eq!(
            MulticastTree::shortest_tree(&t, nodes[0], &[]),
            Err(NetError::EmptyRoute)
        );
        // The root itself is not a reachable leaf.
        assert!(MulticastTree::shortest_tree(&t, nodes[0], &[nodes[0]]).is_err());
        // Leaves behind a dead link are unreachable.
        let mut t = t;
        let dead = t.links_from(nodes[2]).next().map(|l| l.id()).unwrap();
        t.fail_link(dead).unwrap();
        assert!(MulticastTree::shortest_tree(&t, nodes[0], &[nodes[4]]).is_err());
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        let (t, _, links) = two_level();
        assert_eq!(
            MulticastTree::new(&t, std::iter::empty()),
            Err(NetError::EmptyRoute)
        );
        assert!(matches!(
            MulticastTree::new(&t, [links[0], links[0]]),
            Err(NetError::DisconnectedRoute { .. })
        ));
    }

    #[test]
    fn rejects_disconnected_pieces() {
        let (t, _, links) = two_level();
        // up + db: db's tail (sw2) is not reached by the tree.
        assert!(matches!(
            MulticastTree::new(&t, [links[0], links[3]]),
            Err(NetError::DisconnectedRoute { .. })
        ));
    }

    #[test]
    fn rejects_joins() {
        // Two links entering the same node.
        let mut t = Topology::new();
        let a = t.add_end_system("a");
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let d = t.add_end_system("d");
        let l1 = t.add_link(a, s1).unwrap();
        let l2 = t.add_link(a, s2).unwrap();
        let l3 = t.add_link(s1, d).unwrap();
        let l4 = t.add_link(s2, d).unwrap();
        assert!(matches!(
            MulticastTree::new(&t, [l1, l2, l3, l4]),
            Err(NetError::DisconnectedRoute { .. })
        ));
    }

    #[test]
    fn rejects_forwarding_end_system() {
        let mut t = Topology::new();
        let a = t.add_end_system("a");
        let b = t.add_end_system("b");
        let c = t.add_end_system("c");
        let l1 = t.add_link(a, b).unwrap();
        let l2 = t.add_link(b, c).unwrap();
        assert_eq!(
            MulticastTree::new(&t, [l1, l2]),
            Err(NetError::NotASwitch(b))
        );
    }

    #[test]
    fn single_link_tree() {
        let mut t = Topology::new();
        let a = t.add_end_system("a");
        let b = t.add_end_system("b");
        let l = t.add_link(a, b).unwrap();
        let tree = MulticastTree::new(&t, [l]).unwrap();
        assert_eq!(tree.root(), a);
        assert_eq!(tree.leaves(), &[b]);
        // No switch ports: direct wire.
        assert!(tree.queueing_points(&t).unwrap().is_empty());
    }

    #[test]
    fn switch_rooted_tree() {
        let mut t = Topology::new();
        let sw = t.add_switch("sw");
        let a = t.add_end_system("a");
        let b = t.add_end_system("b");
        let la = t.add_link(sw, a).unwrap();
        let lb = t.add_link(sw, b).unwrap();
        let tree = MulticastTree::new(&t, [la, lb]).unwrap();
        assert_eq!(tree.root(), sw);
        let qps = tree.queueing_points(&t).unwrap();
        assert_eq!(qps.len(), 2);
        assert!(qps.iter().all(|&(_, _, upstream)| upstream == 0));
    }
}
