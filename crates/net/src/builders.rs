//! Canonical topology builders: line, ring, star, and the paper's
//! RTnet star-ring (Figure 9).

use crate::{LinkId, MulticastTree, NetError, NodeId, Route, Topology};

/// A line of `n` switches `s0 -> s1 -> … -> s(n-1)`, with an end system
/// feeding `s0` and another fed by `s(n-1)`.
///
/// Returns the topology, the source end system, the switches in order,
/// and the sink end system.
///
/// # Errors
///
/// Returns [`NetError::BadParameter`] if `n == 0`.
pub fn line(n: usize) -> Result<(Topology, NodeId, Vec<NodeId>, NodeId), NetError> {
    if n == 0 {
        return Err(NetError::BadParameter("line needs at least one switch"));
    }
    let mut t = Topology::new();
    let src = t.add_end_system("src");
    let switches: Vec<NodeId> = (0..n).map(|i| t.add_switch(format!("s{i}"))).collect();
    let dst = t.add_end_system("dst");
    t.add_link(src, switches[0])?;
    for w in switches.windows(2) {
        t.add_link(w[0], w[1])?;
    }
    t.add_link(switches[n - 1], dst)?;
    Ok((t, src, switches, dst))
}

/// A unidirectional ring of `n` switches, `s(i) -> s((i+1) mod n)`.
///
/// Returns the topology, the switches, and the ring links in order
/// (`links[i]` goes from `switches[i]`).
///
/// # Errors
///
/// Returns [`NetError::BadParameter`] if `n < 2`.
pub fn ring(n: usize) -> Result<(Topology, Vec<NodeId>, Vec<LinkId>), NetError> {
    if n < 2 {
        return Err(NetError::BadParameter("ring needs at least two switches"));
    }
    let mut t = Topology::new();
    let switches: Vec<NodeId> = (0..n).map(|i| t.add_switch(format!("ring{i}"))).collect();
    let mut links = Vec::with_capacity(n);
    for i in 0..n {
        links.push(t.add_link(switches[i], switches[(i + 1) % n])?);
    }
    Ok((t, switches, links))
}

/// A star: one central switch with `n` end systems attached by duplex
/// links.
///
/// Returns the topology, the center, and the leaves.
///
/// # Errors
///
/// Returns [`NetError::BadParameter`] if `n == 0`.
pub fn star(n: usize) -> Result<(Topology, NodeId, Vec<NodeId>), NetError> {
    if n == 0 {
        return Err(NetError::BadParameter("star needs at least one leaf"));
    }
    let mut t = Topology::new();
    let center = t.add_switch("center");
    let mut leaves = Vec::with_capacity(n);
    for i in 0..n {
        let leaf = t.add_end_system(format!("h{i}"));
        t.add_duplex(leaf, center)?;
        leaves.push(leaf);
    }
    Ok((t, center, leaves))
}

/// The RTnet star-ring topology of the paper's Figure 9, with handles
/// to every element needed by the §5 experiments.
#[derive(Debug, Clone)]
pub struct StarRing {
    topology: Topology,
    ring: Vec<NodeId>,
    ring_links: Vec<LinkId>,
    reverse_links: Vec<LinkId>,
    terminals: Vec<Vec<NodeId>>,
    uplinks: Vec<Vec<LinkId>>,
    downlinks: Vec<Vec<LinkId>>,
}

/// Builds an RTnet star-ring: `ring_nodes` switches on a unidirectional
/// ring, each with `terminals_per_node` end systems attached by duplex
/// access links (paper Figure 9; the paper's RTnet uses up to 16 ring
/// nodes and up to 16 terminals per node).
///
/// # Errors
///
/// Returns [`NetError::BadParameter`] unless `ring_nodes >= 2` and
/// `terminals_per_node >= 1`.
///
/// ```
/// use rtcac_net::builders::star_ring;
/// let sr = star_ring(16, 16)?;
/// assert_eq!(sr.topology().switches().count(), 16);
/// assert_eq!(sr.topology().end_systems().count(), 256);
/// # Ok::<(), rtcac_net::NetError>(())
/// ```
pub fn star_ring(ring_nodes: usize, terminals_per_node: usize) -> Result<StarRing, NetError> {
    star_ring_impl(ring_nodes, terminals_per_node, false)
}

/// [`star_ring`] with the secondary (counter-rotating) ring of the
/// paper's dual-link design (Figure 9: "dual 155 Mbps links"), enabling
/// FDDI-style wrap-around after a link failure — see
/// [`StarRing::reverse_link`] and the `rtcac-rtnet` failover module.
///
/// # Errors
///
/// Same conditions as [`star_ring`].
pub fn dual_star_ring(ring_nodes: usize, terminals_per_node: usize) -> Result<StarRing, NetError> {
    star_ring_impl(ring_nodes, terminals_per_node, true)
}

fn star_ring_impl(
    ring_nodes: usize,
    terminals_per_node: usize,
    dual: bool,
) -> Result<StarRing, NetError> {
    if ring_nodes < 2 {
        return Err(NetError::BadParameter(
            "star_ring needs at least two ring nodes",
        ));
    }
    if terminals_per_node == 0 {
        return Err(NetError::BadParameter(
            "star_ring needs at least one terminal per node",
        ));
    }
    let mut t = Topology::new();
    let ring: Vec<NodeId> = (0..ring_nodes)
        .map(|i| t.add_switch(format!("ring{i}")))
        .collect();
    let mut ring_links = Vec::with_capacity(ring_nodes);
    for i in 0..ring_nodes {
        ring_links.push(t.add_link(ring[i], ring[(i + 1) % ring_nodes])?);
    }
    let mut reverse_links = Vec::new();
    if dual {
        // reverse_links[i]: the secondary link departing node i towards
        // node (i - 1) mod n.
        for i in 0..ring_nodes {
            let prev = (i + ring_nodes - 1) % ring_nodes;
            reverse_links.push(t.add_link(ring[i], ring[prev])?);
        }
    }
    let mut terminals = Vec::with_capacity(ring_nodes);
    let mut uplinks = Vec::with_capacity(ring_nodes);
    let mut downlinks = Vec::with_capacity(ring_nodes);
    for (i, &node) in ring.iter().enumerate() {
        let mut terms = Vec::with_capacity(terminals_per_node);
        let mut ups = Vec::with_capacity(terminals_per_node);
        let mut downs = Vec::with_capacity(terminals_per_node);
        for j in 0..terminals_per_node {
            let term = t.add_end_system(format!("t{i}.{j}"));
            let (up, down) = t.add_duplex(term, node)?;
            terms.push(term);
            ups.push(up);
            downs.push(down);
        }
        terminals.push(terms);
        uplinks.push(ups);
        downlinks.push(downs);
    }
    Ok(StarRing {
        topology: t,
        ring,
        ring_links,
        reverse_links,
        terminals,
        uplinks,
        downlinks,
    })
}

impl StarRing {
    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of ring nodes.
    pub fn ring_len(&self) -> usize {
        self.ring.len()
    }

    /// Number of terminals attached to each ring node.
    pub fn terminals_per_node(&self) -> usize {
        self.terminals[0].len()
    }

    /// The ring switches, in ring order.
    pub fn ring_nodes(&self) -> &[NodeId] {
        &self.ring
    }

    /// The ring link departing ring node `i` (towards `(i+1) mod n`).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadParameter`] if `i` is out of range.
    pub fn ring_link(&self, i: usize) -> Result<LinkId, NetError> {
        self.ring_links
            .get(i)
            .copied()
            .ok_or(NetError::BadParameter("ring node index out of range"))
    }

    /// Whether this star-ring was built with the secondary
    /// (counter-rotating) ring ([`dual_star_ring`]).
    pub fn is_dual(&self) -> bool {
        !self.reverse_links.is_empty()
    }

    /// The secondary ring link departing node `i` (towards
    /// `(i-1) mod n`).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadParameter`] if `i` is out of range or the
    /// topology was built without the secondary ring.
    pub fn reverse_link(&self, i: usize) -> Result<LinkId, NetError> {
        self.reverse_links
            .get(i)
            .copied()
            .ok_or(NetError::BadParameter(
                "no secondary ring (build with dual_star_ring) or index out of range",
            ))
    }

    /// A route from terminal `j` of ring node `i` travelling `hops`
    /// *secondary* ring links backward, ending at node
    /// `(i - hops) mod n`. Used for wrap-around failover.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadParameter`] for out-of-range indices,
    /// `hops == 0`, `hops >= ring_len`, or a single-ring topology.
    pub fn reverse_route_from_terminal(
        &self,
        i: usize,
        j: usize,
        hops: usize,
    ) -> Result<Route, NetError> {
        if hops == 0 || hops >= self.ring.len() {
            return Err(NetError::BadParameter("hops must be in 1..ring_len"));
        }
        let n = self.ring.len();
        let mut links = vec![self.uplink(i, j)?];
        for k in 0..hops {
            links.push(self.reverse_link((i + n - k) % n)?);
        }
        Route::new(&self.topology, links)
    }

    /// The terminals attached to ring node `i`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadParameter`] if `i` is out of range.
    pub fn terminals(&self, i: usize) -> Result<&[NodeId], NetError> {
        self.terminals
            .get(i)
            .map(|v| v.as_slice())
            .ok_or(NetError::BadParameter("ring node index out of range"))
    }

    /// The access link from terminal `j` of ring node `i` up to the
    /// ring node.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadParameter`] if an index is out of range.
    pub fn uplink(&self, i: usize, j: usize) -> Result<LinkId, NetError> {
        self.uplinks
            .get(i)
            .and_then(|v| v.get(j))
            .copied()
            .ok_or(NetError::BadParameter("terminal index out of range"))
    }

    /// The access link from ring node `i` down to its terminal `j`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadParameter`] if an index is out of range.
    pub fn downlink(&self, i: usize, j: usize) -> Result<LinkId, NetError> {
        self.downlinks
            .get(i)
            .and_then(|v| v.get(j))
            .copied()
            .ok_or(NetError::BadParameter("terminal index out of range"))
    }

    /// A route from terminal `j` of ring node `i` that travels `hops`
    /// ring links forward, ending at ring node `(i + hops) mod n`.
    ///
    /// This is the transit path of a cyclic-transmission broadcast: a
    /// cell injected at the terminal crosses the source node's ring
    /// output port and `hops - 1` further ring ports (paper §5).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadParameter`] for out-of-range indices,
    /// `hops == 0`, or `hops >= ring_len` (the cell would lap itself).
    pub fn ring_route_from_terminal(
        &self,
        i: usize,
        j: usize,
        hops: usize,
    ) -> Result<Route, NetError> {
        if hops == 0 || hops >= self.ring.len() {
            return Err(NetError::BadParameter("hops must be in 1..ring_len"));
        }
        let mut links = vec![self.uplink(i, j)?];
        for k in 0..hops {
            links.push(self.ring_link((i + k) % self.ring.len())?);
        }
        Route::new(&self.topology, links)
    }

    /// The cyclic-transmission broadcast tree of terminal `(i, j)`: up
    /// its access link, forward around the whole ring, and down to
    /// every other terminal (a point-to-multipoint VC reaching all
    /// `ring_len × terminals − 1` receivers).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadParameter`] for out-of-range indices.
    pub fn broadcast_tree(&self, i: usize, j: usize) -> Result<MulticastTree, NetError> {
        let n = self.ring.len();
        let terms = self.terminals_per_node();
        let mut links = vec![self.uplink(i, j)?];
        // Ring chain: n - 1 links reach every other ring node.
        for k in 0..n - 1 {
            links.push(self.ring_link((i + k) % n)?);
        }
        // Drop-offs: every terminal except the source.
        for node in 0..n {
            for term in 0..terms {
                if (node, term) != (i, j) {
                    links.push(self.downlink(node, term)?);
                }
            }
        }
        MulticastTree::new(&self.topology, links)
    }

    /// A full terminal-to-terminal route: up from the source terminal,
    /// forward around the ring, and down to the destination terminal.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadParameter`] for out-of-range indices or a
    /// source and destination on the same ring node position with the
    /// same index (self-route).
    pub fn terminal_route(
        &self,
        src: (usize, usize),
        dst: (usize, usize),
    ) -> Result<Route, NetError> {
        if src == dst {
            return Err(NetError::BadParameter("route to self"));
        }
        let n = self.ring.len();
        let mut links = vec![self.uplink(src.0, src.1)?];
        let hops = (dst.0 + n - src.0) % n;
        for k in 0..hops {
            links.push(self.ring_link((src.0 + k) % n)?);
        }
        links.push(self.downlink(dst.0, dst.1)?);
        Route::new(&self.topology, links)
    }
}

/// Joins `nodes` into a bidirectional ring of duplex links. A ring of
/// two collapses to a single duplex pair (the closing link would
/// duplicate it).
fn ring_duplex(t: &mut Topology, nodes: &[NodeId]) -> Result<(), NetError> {
    for i in 0..nodes.len() {
        if nodes.len() == 2 && i == 1 {
            break;
        }
        t.add_duplex(nodes[i], nodes[(i + 1) % nodes.len()])?;
    }
    Ok(())
}

/// A two-level "metro of campuses" topology: `regions` hub switches on
/// a bidirectional top-level ring, each hub feeding its own
/// bidirectional sub-ring of `ring_nodes` campus switches (one duplex
/// uplink from the hub into the sub-ring), and every campus switch
/// carrying `terminals_per_node` end systems on duplex access links.
/// All links are duplex, so breadth-first routing reaches every
/// terminal pair. Scales linearly: `star_of_star_rings(40, 50, 1)` is
/// a 2 040-switch network.
///
/// # Errors
///
/// Returns [`NetError::BadParameter`] unless `regions >= 2`,
/// `ring_nodes >= 2` and `terminals_per_node >= 1`.
pub fn star_of_star_rings(
    regions: usize,
    ring_nodes: usize,
    terminals_per_node: usize,
) -> Result<Topology, NetError> {
    if regions < 2 {
        return Err(NetError::BadParameter(
            "star_of_star_rings needs at least two regions",
        ));
    }
    if ring_nodes < 2 {
        return Err(NetError::BadParameter(
            "star_of_star_rings needs at least two ring nodes per region",
        ));
    }
    if terminals_per_node == 0 {
        return Err(NetError::BadParameter(
            "star_of_star_rings needs at least one terminal per node",
        ));
    }
    let mut t = Topology::new();
    let hubs: Vec<NodeId> = (0..regions)
        .map(|r| t.add_switch(format!("hub{r}")))
        .collect();
    ring_duplex(&mut t, &hubs)?;
    for (r, &hub) in hubs.iter().enumerate() {
        let ring: Vec<NodeId> = (0..ring_nodes)
            .map(|i| t.add_switch(format!("r{r}s{i}")))
            .collect();
        ring_duplex(&mut t, &ring)?;
        t.add_duplex(hub, ring[0])?;
        for (i, &sw) in ring.iter().enumerate() {
            for j in 0..terminals_per_node {
                let h = t.add_end_system(format!("r{r}s{i}h{j}"));
                t.add_duplex(h, sw)?;
            }
        }
    }
    Ok(t)
}

/// A `k`-ary fat-tree (the classic three-tier Clos): `k` pods of `k/2`
/// edge and `k/2` aggregation switches, `(k/2)²` core switches, and
/// `k/2` end systems per edge switch — `5k²/4` switches and `k³/4`
/// hosts in total, all links duplex. `fat_tree(64)` is a 5 120-switch
/// network.
///
/// # Errors
///
/// Returns [`NetError::BadParameter`] unless `k` is even and `>= 2`.
pub fn fat_tree(k: usize) -> Result<Topology, NetError> {
    if k < 2 || !k.is_multiple_of(2) {
        return Err(NetError::BadParameter("fat_tree needs an even k >= 2"));
    }
    let half = k / 2;
    let mut t = Topology::new();
    let cores: Vec<NodeId> = (0..half * half)
        .map(|c| t.add_switch(format!("core{c}")))
        .collect();
    for p in 0..k {
        let aggs: Vec<NodeId> = (0..half)
            .map(|a| t.add_switch(format!("p{p}a{a}")))
            .collect();
        let edges: Vec<NodeId> = (0..half)
            .map(|e| t.add_switch(format!("p{p}e{e}")))
            .collect();
        for (a, &agg) in aggs.iter().enumerate() {
            for &edge in &edges {
                t.add_duplex(agg, edge)?;
            }
            for c in 0..half {
                t.add_duplex(cores[a * half + c], agg)?;
            }
        }
        for (e, &edge) in edges.iter().enumerate() {
            for h in 0..half {
                let host = t.add_end_system(format!("p{p}e{e}h{h}"));
                t.add_duplex(host, edge)?;
            }
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_builder() {
        let (t, src, switches, dst) = line(3).unwrap();
        assert_eq!(switches.len(), 3);
        assert_eq!(t.links().len(), 4);
        let r = Route::from_nodes(
            &t,
            std::iter::once(src)
                .chain(switches.iter().copied())
                .chain(std::iter::once(dst)),
        )
        .unwrap();
        assert_eq!(r.hops(), 4);
        assert_eq!(r.switch_hops(&t).unwrap(), switches);
        assert!(line(0).is_err());
    }

    #[test]
    fn ring_builder() {
        let (t, switches, links) = ring(4).unwrap();
        assert_eq!(switches.len(), 4);
        assert_eq!(links.len(), 4);
        // Each switch has exactly one ring in-link and one out-link.
        for &s in &switches {
            assert_eq!(t.links_from(s).count(), 1);
            assert_eq!(t.links_into(s).count(), 1);
        }
        // The ring closes: link i goes i -> (i+1) mod n.
        assert_eq!(t.link(links[3]).unwrap().to(), switches[0]);
        assert!(ring(1).is_err());
    }

    #[test]
    fn star_builder() {
        let (t, center, leaves) = star(5).unwrap();
        assert_eq!(leaves.len(), 5);
        assert_eq!(t.links_from(center).count(), 5);
        assert_eq!(t.links_into(center).count(), 5);
        assert!(star(0).is_err());
    }

    #[test]
    fn star_ring_shape() {
        let sr = star_ring(4, 3).unwrap();
        assert_eq!(sr.ring_len(), 4);
        assert_eq!(sr.terminals_per_node(), 3);
        assert_eq!(sr.topology().switches().count(), 4);
        assert_eq!(sr.topology().end_systems().count(), 12);
        // links: 4 ring + 12 duplex * 2.
        assert_eq!(sr.topology().links().len(), 4 + 24);
        assert!(star_ring(1, 1).is_err());
        assert!(star_ring(4, 0).is_err());
    }

    #[test]
    fn star_ring_routes() {
        let sr = star_ring(4, 2).unwrap();
        let r = sr.ring_route_from_terminal(1, 0, 3).unwrap();
        // Access link + 3 ring links; queueing at 3 ring output ports.
        assert_eq!(r.hops(), 4);
        let qps = r.queueing_points(sr.topology()).unwrap();
        assert_eq!(qps.len(), 3);
        assert_eq!(qps[0].0, sr.ring_nodes()[1]);
        assert_eq!(qps[2].0, sr.ring_nodes()[3]);
        assert_eq!(r.destination(sr.topology()).unwrap(), sr.ring_nodes()[0]);
        assert!(sr.ring_route_from_terminal(0, 0, 0).is_err());
        assert!(sr.ring_route_from_terminal(0, 0, 4).is_err());
    }

    #[test]
    fn star_ring_terminal_route() {
        let sr = star_ring(4, 2).unwrap();
        // Same-node different terminal: up then down, no ring hops.
        let r = sr.terminal_route((2, 0), (2, 1)).unwrap();
        assert_eq!(r.hops(), 2);
        assert_eq!(r.switch_hops(sr.topology()).unwrap().len(), 1);
        // Wrap-around route 3 -> 1 crosses 2 ring links.
        let r = sr.terminal_route((3, 0), (1, 1)).unwrap();
        assert_eq!(r.hops(), 4);
        assert_eq!(
            r.destination(sr.topology()).unwrap(),
            sr.terminals(1).unwrap()[1]
        );
        assert!(sr.terminal_route((0, 0), (0, 0)).is_err());
    }

    #[test]
    fn broadcast_tree_reaches_every_other_terminal() {
        let sr = star_ring(4, 2).unwrap();
        let tree = sr.broadcast_tree(1, 0).unwrap();
        assert_eq!(tree.root(), sr.terminals(1).unwrap()[0]);
        // Leaves: all 8 terminals minus the source.
        assert_eq!(tree.leaves().len(), 7);
        // Links: 1 uplink + 3 ring + 7 downlinks.
        assert_eq!(tree.links().len(), 11);
        // Queueing points: all tree links departing switches.
        let qps = tree.queueing_points(sr.topology()).unwrap();
        assert_eq!(qps.len(), 10);
        assert!(sr.broadcast_tree(9, 0).is_err());
    }

    #[test]
    fn star_of_star_rings_routes_across_regions() {
        let t = star_of_star_rings(3, 4, 2).unwrap();
        // 3 hubs + 3*4 campus switches; 3*4*2 terminals.
        assert_eq!(t.switches().count(), 15);
        assert_eq!(t.end_systems().count(), 24);
        let hosts: Vec<NodeId> = t.end_systems().map(|n| n.id()).collect();
        // Any terminal reaches any other (all links duplex).
        let r = t.shortest_route(hosts[0], *hosts.last().unwrap()).unwrap();
        assert!(r.hops() >= 4, "cross-region route crosses both rings");
        assert!(star_of_star_rings(1, 4, 1).is_err());
        assert!(star_of_star_rings(2, 1, 1).is_err());
        assert!(star_of_star_rings(2, 2, 0).is_err());
    }

    #[test]
    fn star_of_star_rings_scales_to_thousands_of_switches() {
        let t = star_of_star_rings(40, 50, 1).unwrap();
        assert_eq!(t.switches().count(), 40 + 40 * 50);
        // Routing still works at this scale.
        let hosts: Vec<NodeId> = t.end_systems().map(|n| n.id()).take(2).collect();
        assert!(t.shortest_route(hosts[0], hosts[1]).is_ok());
    }

    #[test]
    fn fat_tree_structure_and_routing() {
        let k = 4;
        let t = fat_tree(k).unwrap();
        assert_eq!(t.switches().count(), 5 * k * k / 4);
        assert_eq!(t.end_systems().count(), k * k * k / 4);
        let hosts: Vec<NodeId> = t.end_systems().map(|n| n.id()).collect();
        // Same-pod route stays under the core; cross-pod goes through it.
        let cross = t.shortest_route(hosts[0], *hosts.last().unwrap()).unwrap();
        assert_eq!(cross.hops(), 6, "host-edge-agg-core-agg-edge-host");
        assert!(fat_tree(3).is_err());
        assert!(fat_tree(0).is_err());
    }

    #[test]
    fn star_ring_link_accessors() {
        let sr = star_ring(3, 2).unwrap();
        let up = sr.uplink(1, 1).unwrap();
        let down = sr.downlink(1, 1).unwrap();
        let t = sr.topology();
        assert_eq!(t.link(up).unwrap().to(), sr.ring_nodes()[1]);
        assert_eq!(t.link(down).unwrap().from(), sr.ring_nodes()[1]);
        assert_eq!(
            t.link(sr.ring_link(2).unwrap()).unwrap().to(),
            sr.ring_nodes()[0]
        );
        assert!(sr.uplink(9, 0).is_err());
        assert!(sr.downlink(0, 9).is_err());
        assert!(sr.ring_link(5).is_err());
    }
}
