//! Validated routes through a [`Topology`].

use crate::{LinkId, NetError, NodeId, Topology};

/// A contiguous directed path of links.
///
/// The paper's connection setup (§4.1) sends a SETUP message along a
/// preselected route; every link on the route is a potential queueing
/// point at its sending node's output port.
///
/// # Examples
///
/// ```
/// use rtcac_net::{Route, Topology};
///
/// let mut t = Topology::new();
/// let a = t.add_end_system("a");
/// let s1 = t.add_switch("s1");
/// let s2 = t.add_switch("s2");
/// let b = t.add_end_system("b");
/// t.add_link(a, s1)?;
/// t.add_link(s1, s2)?;
/// t.add_link(s2, b)?;
///
/// let route = Route::from_nodes(&t, [a, s1, s2, b])?;
/// assert_eq!(route.source(&t)?, a);
/// assert_eq!(route.destination(&t)?, b);
/// assert_eq!(route.switch_hops(&t)?, vec![s1, s2]);
/// # Ok::<(), rtcac_net::NetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Route {
    links: Vec<LinkId>,
}

impl Route {
    /// Builds a route from an ordered list of link ids, validating that
    /// consecutive links share a node.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyRoute`], [`NetError::UnknownLink`], or
    /// [`NetError::DisconnectedRoute`].
    pub fn new<I>(topology: &Topology, links: I) -> Result<Route, NetError>
    where
        I: IntoIterator<Item = LinkId>,
    {
        let links: Vec<LinkId> = links.into_iter().collect();
        if links.is_empty() {
            return Err(NetError::EmptyRoute);
        }
        let mut prev_to: Option<NodeId> = None;
        for &id in &links {
            let link = topology.link(id)?;
            if let Some(expected) = prev_to {
                if link.from() != expected {
                    return Err(NetError::DisconnectedRoute { at: id });
                }
            }
            prev_to = Some(link.to());
        }
        Ok(Route { links })
    }

    /// Builds a route from an ordered list of nodes, resolving each
    /// consecutive pair to a link.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyRoute`] for fewer than two nodes and
    /// [`NetError::NoSuchLink`] for non-adjacent consecutive nodes.
    pub fn from_nodes<I>(topology: &Topology, nodes: I) -> Result<Route, NetError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let nodes: Vec<NodeId> = nodes.into_iter().collect();
        if nodes.len() < 2 {
            return Err(NetError::EmptyRoute);
        }
        let mut links = Vec::with_capacity(nodes.len() - 1);
        for pair in nodes.windows(2) {
            links.push(topology.find_link(pair[0], pair[1])?);
        }
        Ok(Route { links })
    }

    /// The links of the route, in travel order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Number of links (hops) on the route.
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// The node the route starts from.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] if the route belongs to a
    /// different topology.
    pub fn source(&self, topology: &Topology) -> Result<NodeId, NetError> {
        Ok(topology.link(self.links[0])?.from())
    }

    /// The node the route ends at.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] if the route belongs to a
    /// different topology.
    pub fn destination(&self, topology: &Topology) -> Result<NodeId, NetError> {
        Ok(topology.link(self.links[self.links.len() - 1])?.to())
    }

    /// The ordered nodes the route visits (source, intermediates,
    /// destination).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] if the route belongs to a
    /// different topology.
    pub fn nodes(&self, topology: &Topology) -> Result<Vec<NodeId>, NetError> {
        let mut out = Vec::with_capacity(self.links.len() + 1);
        out.push(self.source(topology)?);
        for &id in &self.links {
            out.push(topology.link(id)?.to());
        }
        Ok(out)
    }

    /// The switches the route crosses, in order — the nodes that run a
    /// CAC check and contribute queueing delay.
    ///
    /// A switch is counted when the route *departs* from it (its output
    /// port queues the connection's cells), so the destination is never
    /// included and the source is included only if it is itself a
    /// switch.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] if the route belongs to a
    /// different topology.
    pub fn switch_hops(&self, topology: &Topology) -> Result<Vec<NodeId>, NetError> {
        let mut out = Vec::new();
        for &id in &self.links {
            let from = topology.link(id)?.from();
            if topology.node(from)?.is_switch() {
                out.push(from);
            }
        }
        Ok(out)
    }

    /// The `(switch, outgoing link)` queueing points of the route, in
    /// order. Each pair identifies one output port whose FIFO queue the
    /// connection's cells traverse.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] if the route belongs to a
    /// different topology.
    pub fn queueing_points(&self, topology: &Topology) -> Result<Vec<(NodeId, LinkId)>, NetError> {
        let mut out = Vec::new();
        for &id in &self.links {
            let from = topology.link(id)?.from();
            if topology.node(from)?.is_switch() {
                out.push((from, id));
            }
        }
        Ok(out)
    }

    /// The first link of the route that cannot carry traffic (the link
    /// itself or one of its endpoints is down), if any. `None` means
    /// the whole route is healthy.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] if the route belongs to a
    /// different topology.
    pub fn first_dead_link(&self, topology: &Topology) -> Result<Option<LinkId>, NetError> {
        for &id in &self.links {
            if !topology.link_usable(id)? {
                return Ok(Some(id));
            }
        }
        Ok(None)
    }

    /// The link by which the route *enters* the given node, if any.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownLink`] if the route belongs to a
    /// different topology.
    pub fn incoming_link(
        &self,
        topology: &Topology,
        node: NodeId,
    ) -> Result<Option<LinkId>, NetError> {
        for &id in &self.links {
            if topology.link(id)?.to() == node {
                return Ok(Some(id));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> (Topology, Vec<NodeId>, Vec<LinkId>) {
        let mut t = Topology::new();
        let a = t.add_end_system("a");
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let b = t.add_end_system("b");
        let l1 = t.add_link(a, s1).unwrap();
        let l2 = t.add_link(s1, s2).unwrap();
        let l3 = t.add_link(s2, b).unwrap();
        (t, vec![a, s1, s2, b], vec![l1, l2, l3])
    }

    #[test]
    fn route_from_links() {
        let (t, nodes, links) = line3();
        let r = Route::new(&t, links.clone()).unwrap();
        assert_eq!(r.hops(), 3);
        assert_eq!(r.source(&t).unwrap(), nodes[0]);
        assert_eq!(r.destination(&t).unwrap(), nodes[3]);
        assert_eq!(r.nodes(&t).unwrap(), nodes);
    }

    #[test]
    fn route_from_nodes() {
        let (t, nodes, links) = line3();
        let r = Route::from_nodes(&t, nodes).unwrap();
        assert_eq!(r.links(), links.as_slice());
    }

    #[test]
    fn empty_route_rejected() {
        let (t, _, _) = line3();
        assert_eq!(
            Route::new(&t, core::iter::empty()),
            Err(NetError::EmptyRoute)
        );
        assert_eq!(
            Route::from_nodes(&t, [NodeId(0)]),
            Err(NetError::EmptyRoute)
        );
    }

    #[test]
    fn disconnected_route_rejected() {
        let (t, _, links) = line3();
        assert!(matches!(
            Route::new(&t, [links[0], links[2]]),
            Err(NetError::DisconnectedRoute { .. })
        ));
    }

    #[test]
    fn nonadjacent_nodes_rejected() {
        let (t, nodes, _) = line3();
        assert!(matches!(
            Route::from_nodes(&t, [nodes[0], nodes[2]]),
            Err(NetError::NoSuchLink { .. })
        ));
    }

    #[test]
    fn switch_hops_exclude_end_systems() {
        let (t, nodes, links) = line3();
        let r = Route::new(&t, links.clone()).unwrap();
        assert_eq!(r.switch_hops(&t).unwrap(), vec![nodes[1], nodes[2]]);
        let qp = r.queueing_points(&t).unwrap();
        assert_eq!(qp, vec![(nodes[1], links[1]), (nodes[2], links[2])]);
    }

    #[test]
    fn first_dead_link_scans_in_order() {
        let (mut t, nodes, links) = line3();
        let r = Route::new(&t, links.clone()).unwrap();
        assert_eq!(r.first_dead_link(&t).unwrap(), None);
        t.fail_link(links[2]).unwrap();
        assert_eq!(r.first_dead_link(&t).unwrap(), Some(links[2]));
        // A dead node upstream shadows the later dead link.
        t.fail_node(nodes[1]).unwrap();
        assert_eq!(r.first_dead_link(&t).unwrap(), Some(links[0]));
    }

    #[test]
    fn incoming_link_lookup() {
        let (t, nodes, links) = line3();
        let r = Route::new(&t, links.clone()).unwrap();
        assert_eq!(r.incoming_link(&t, nodes[1]).unwrap(), Some(links[0]));
        assert_eq!(r.incoming_link(&t, nodes[2]).unwrap(), Some(links[1]));
        assert_eq!(r.incoming_link(&t, nodes[0]).unwrap(), None);
    }
}
