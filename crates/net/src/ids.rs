//! Typed identifiers for topology elements.

use core::fmt;

/// Identifier of a node (switch or end system) within a [`Topology`].
///
/// [`Topology`]: crate::Topology
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of the node.
    pub const fn index(&self) -> usize {
        self.0 as usize
    }

    /// Creates an id that is not tied to any [`Topology`] — useful when
    /// driving a standalone switch or simulator component whose ports
    /// are pure labels.
    ///
    /// Ids created this way are only valid for topology lookups if a
    /// node with this index actually exists there.
    ///
    /// [`Topology`]: crate::Topology
    pub const fn external(index: u32) -> NodeId {
        NodeId(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a unidirectional link within a [`Topology`].
///
/// [`Topology`]: crate::Topology
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// The raw index of the link.
    pub const fn index(&self) -> usize {
        self.0 as usize
    }

    /// Creates an id that is not tied to any [`Topology`] — useful when
    /// driving a standalone switch whose ports are pure labels.
    ///
    /// Ids created this way are only valid for topology lookups if a
    /// link with this index actually exists there.
    ///
    /// [`Topology`]: crate::Topology
    pub const fn external(index: u32) -> LinkId {
        LinkId(index)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(7).to_string(), "l7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(LinkId(0) < LinkId(5));
        assert_eq!(NodeId(4).index(), 4);
        assert_eq!(LinkId(9).index(), 9);
    }
}
