//! Dual-GCRA source shaping — the conformance definition behind the
//! paper's Equation 1 and Figure 1.
//!
//! A naive token bucket whose burst tokens keep refilling *during* the
//! peak-rate burst emits slightly more than the paper's Algorithm 2.1
//! worst-case envelope. The ATM Forum conformance definition — a dual
//! Generic Cell Rate Algorithm, `GCRA(1/PCR, 0)` plus
//! `GCRA(1/SCR, BT)` with burst tolerance
//! `BT = (MBS − 1) · (1/SCR − 1/PCR)` — reproduces the paper's
//! worst-case pattern *exactly*: `MBS` cells at `PCR`, then cells at
//! `SCR`. Its greedy trace majorizes every conformant trace, so all
//! shaped traffic stays within the analytic envelope.

use rtcac_bitstream::TrafficContract;
use rtcac_rational::Ratio;

/// A dual-GCRA shaper enforcing a [`TrafficContract`].
///
/// The shaper is exact: all state is rational, so no drift accumulates
/// over long simulations.
///
/// # Examples
///
/// ```
/// use rtcac_bitstream::{Rate, TrafficContract, VbrParams};
/// use rtcac_rational::ratio;
/// use rtcac_sim::Shaper;
///
/// let contract = TrafficContract::vbr(VbrParams::new(
///     Rate::new(ratio(1, 2)),
///     Rate::new(ratio(1, 8)),
///     4,
/// )?);
/// let mut shaper = Shaper::new(&contract);
/// let sent: Vec<u64> = (0..64).filter(|&slot| shaper.try_send(slot)).collect();
/// // First burst: 4 cells at PCR spacing (every 2 slots), then the
/// // SCR period of 8 slots.
/// assert_eq!(&sent[..6], &[0, 2, 4, 6, 14, 22]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Shaper {
    /// Peak emission interval `1/PCR`.
    peak_interval: Ratio,
    /// Sustained emission interval `1/SCR`.
    sustained_interval: Ratio,
    /// Burst tolerance `(MBS − 1)(1/SCR − 1/PCR)`.
    burst_tolerance: Ratio,
    /// Theoretical arrival time of the peak-rate GCRA.
    tat_peak: Ratio,
    /// Theoretical arrival time of the sustained-rate GCRA.
    tat_sustained: Ratio,
    /// Slot of the last query (shaping is causal).
    last_slot: u64,
}

impl Shaper {
    /// Creates a shaper for a traffic contract in the reset state (a
    /// fresh source may emit its full burst immediately — the worst
    /// case).
    pub fn new(contract: &TrafficContract) -> Shaper {
        let peak_interval = Ratio::ONE / contract.pcr().as_ratio();
        let sustained_interval = Ratio::ONE / contract.scr().as_ratio();
        let mbs_minus_one = Ratio::from_integer(contract.mbs() as i128 - 1);
        Shaper {
            peak_interval,
            sustained_interval,
            burst_tolerance: mbs_minus_one * (sustained_interval - peak_interval),
            tat_peak: Ratio::ZERO,
            tat_sustained: Ratio::ZERO,
            last_slot: 0,
        }
    }

    /// Whether a cell may be sent in `slot`; if so, the GCRA state
    /// advances. Slots must be queried in non-decreasing order.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is smaller than a previously queried slot.
    pub fn try_send(&mut self, slot: u64) -> bool {
        if self.conforms(slot) {
            let t = Ratio::from_integer(slot as i128);
            self.tat_peak = t.max(self.tat_peak) + self.peak_interval;
            self.tat_sustained = t.max(self.tat_sustained) + self.sustained_interval;
            true
        } else {
            false
        }
    }

    /// Whether a cell could be sent in `slot` without consuming the
    /// allowance.
    pub fn can_send(&mut self, slot: u64) -> bool {
        self.conforms(slot)
    }

    fn conforms(&mut self, slot: u64) -> bool {
        assert!(
            slot >= self.last_slot,
            "shaper queried with a past slot ({slot} < {})",
            self.last_slot
        );
        self.last_slot = slot;
        let t = Ratio::from_integer(slot as i128);
        t >= self.tat_peak && t >= self.tat_sustained - self.burst_tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_bitstream::{CbrParams, Rate, VbrParams};
    use rtcac_rational::ratio;

    fn vbr(pn: i128, pd: i128, sn: i128, sd: i128, mbs: u64) -> TrafficContract {
        TrafficContract::vbr(
            VbrParams::new(Rate::new(ratio(pn, pd)), Rate::new(ratio(sn, sd)), mbs).unwrap(),
        )
    }

    fn greedy_emissions(contract: &TrafficContract, slots: u64) -> Vec<u64> {
        let mut s = Shaper::new(contract);
        (0..slots).filter(|&t| s.try_send(t)).collect()
    }

    #[test]
    fn cbr_spacing_is_period() {
        let c = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 4))).unwrap());
        let sent = greedy_emissions(&c, 40);
        assert_eq!(sent, vec![0, 4, 8, 12, 16, 20, 24, 28, 32, 36]);
    }

    #[test]
    fn vbr_burst_then_sustained() {
        // PCR 1/2, SCR 1/8, MBS 4: burst of 4 at spacing 2, then the
        // SCR period of 8 (the paper's Figure 1 worst case).
        let c = vbr(1, 2, 1, 8, 4);
        let sent = greedy_emissions(&c, 80);
        assert_eq!(&sent[..4], &[0, 2, 4, 6]);
        let gaps: Vec<u64> = sent.windows(2).map(|w| w[1] - w[0]).skip(3).collect();
        assert!(gaps.iter().all(|&gap| gap == 8), "{gaps:?}");
    }

    #[test]
    fn long_run_rate_respects_scr() {
        let c = vbr(1, 2, 1, 10, 8);
        let slots = 10_000;
        let sent = greedy_emissions(&c, slots);
        let max_cells = ratio(1, 10) * ratio(slots as i128, 1) + ratio(8, 1);
        assert!(ratio(sent.len() as i128, 1) <= max_cells);
        let min_cells = ratio(1, 10) * ratio(slots as i128, 1) - ratio(8, 1);
        assert!(ratio(sent.len() as i128, 1) >= min_cells);
    }

    #[test]
    fn never_exceeds_envelope() {
        // The cumulative emissions of a greedy shaped source must stay
        // within the analytic worst-case envelope at every slot — this
        // is what makes simulator-vs-bound validation sound.
        for contract in [
            vbr(1, 3, 1, 9, 5),
            vbr(1, 2, 1, 8, 4),
            vbr(1, 1, 1, 16, 12),
            vbr(1, 5, 1, 5, 1),
        ] {
            let envelope = contract.worst_case_stream();
            let mut shaper = Shaper::new(&contract);
            let mut count: i128 = 0;
            for t in 0..3_000u64 {
                if shaper.try_send(t) {
                    count += 1;
                }
                let bound = envelope.cumulative(rtcac_bitstream::Time::from_integer(t as i128 + 1));
                assert!(
                    rtcac_bitstream::Cells::from_integer(count) <= bound,
                    "slot {t}: {count} cells exceeds envelope {bound} for {contract:?}"
                );
            }
        }
    }

    #[test]
    fn greedy_achieves_envelope_at_burst_boundaries() {
        // Tightness: at the end of the burst the greedy trace touches
        // the envelope exactly.
        let c = vbr(1, 3, 1, 9, 5);
        let sent = greedy_emissions(&c, 200);
        // Burst of 5 at spacing 3, then spacing 9.
        assert_eq!(&sent[..7], &[0, 3, 6, 9, 12, 21, 30]);
        let envelope = c.worst_case_stream();
        // Cell 5 completes by envelope time 13 = 1 + 4/(1/3).
        assert_eq!(
            envelope.cumulative(rtcac_bitstream::Time::from_integer(13)),
            rtcac_bitstream::Cells::from_integer(5)
        );
    }

    #[test]
    fn full_rate_cbr_sends_every_slot() {
        let c = TrafficContract::cbr(CbrParams::new(Rate::FULL).unwrap());
        let sent = greedy_emissions(&c, 10);
        assert_eq!(sent.len(), 10);
    }

    #[test]
    fn idle_source_regains_full_burst() {
        let c = vbr(1, 1, 1, 4, 3);
        let mut s = Shaper::new(&c);
        // Drain the burst allowance.
        assert!(s.try_send(0));
        assert!(s.try_send(1));
        assert!(s.try_send(2));
        assert!(!s.try_send(3));
        // After a long idle period the full back-to-back burst returns.
        let sent: Vec<u64> = (100..110).filter(|&t| s.try_send(t)).collect();
        assert_eq!(&sent[..3], &[100, 101, 102]);
    }

    #[test]
    #[should_panic(expected = "past slot")]
    fn rejects_time_travel() {
        let c = vbr(1, 2, 1, 8, 4);
        let mut s = Shaper::new(&c);
        s.try_send(10);
        s.try_send(5);
    }
}
