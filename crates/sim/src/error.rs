//! Error type for simulation construction.

use core::fmt;

use rtcac_cac::ConnectionId;
use rtcac_net::{LinkId, NodeId};

/// Error produced while assembling a [`Simulation`](crate::Simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A connection with this id is already registered.
    DuplicateConnection(ConnectionId),
    /// A route link does not exist in the simulated topology.
    UnknownLink(LinkId),
    /// A route forwards cells through an end system, which cannot
    /// switch traffic.
    ForwardThroughEndSystem(NodeId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DuplicateConnection(id) => {
                write!(f, "connection {id} is already registered")
            }
            SimError::UnknownLink(l) => write!(f, "link {l} is not in the simulated topology"),
            SimError::ForwardThroughEndSystem(n) => {
                write!(f, "route forwards through end system {n}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(!SimError::DuplicateConnection(ConnectionId::new(1))
            .to_string()
            .is_empty());
        assert!(!SimError::UnknownLink(LinkId::external(1))
            .to_string()
            .is_empty());
        assert!(!SimError::ForwardThroughEndSystem(NodeId::external(1))
            .to_string()
            .is_empty());
    }
}
