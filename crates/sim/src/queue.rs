//! Static-priority FIFO output port queues.

use std::collections::VecDeque;

use rtcac_cac::{ConnectionId, Priority};

/// A cell waiting in an output port queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct QueuedCell {
    /// The cell's connection.
    pub connection: ConnectionId,
    /// Routing position (interpreted by the engine: path hop index or
    /// tree link).
    pub via: crate::engine::Via,
    /// Slot at which the cell entered this queue.
    pub enqueued: u64,
    /// Slot at which the cell left its source.
    pub emitted: u64,
}

/// One output port: a FIFO queue per priority level, served highest
/// priority first (the paper's §4.1 queueing model). Optionally
/// bounded per queue, dropping on overflow (the RTnet ring nodes use
/// 32-cell queues).
///
/// Capacity semantics match the paper's "queue size = delay bound"
/// arithmetic: a `capacity`-cell queue accepts a cell that sees up to
/// `capacity` cells ahead of it (its queueing delay is then exactly
/// `capacity` slots, one of the cells ahead being in transmission);
/// a cell that would see more is lost.
#[derive(Debug, Clone)]
pub struct PriorityFifo {
    queues: Vec<VecDeque<QueuedCell>>,
    capacity: Option<usize>,
    max_occupancy: Vec<usize>,
    drops: u64,
}

impl PriorityFifo {
    /// Creates a port with `levels` priority queues, each bounded by
    /// `capacity` cells (`None` = unbounded).
    pub fn new(levels: u8, capacity: Option<usize>) -> PriorityFifo {
        let levels = levels.max(1) as usize;
        PriorityFifo {
            queues: vec![VecDeque::new(); levels],
            capacity,
            max_occupancy: vec![0; levels],
            drops: 0,
        }
    }

    /// Enqueues a cell at its priority; drops it (returning `false`) if
    /// the queue is full.
    pub(crate) fn enqueue(&mut self, priority: Priority, cell: QueuedCell) -> bool {
        let idx = (priority.level() as usize).min(self.queues.len() - 1);
        let q = &mut self.queues[idx];
        if let Some(cap) = self.capacity {
            // Drop only when the cell would see MORE than `cap` cells
            // ahead of it (delay > cap slots); see the type docs.
            if q.len() > cap {
                self.drops += 1;
                return false;
            }
        }
        q.push_back(cell);
        if q.len() > self.max_occupancy[idx] {
            self.max_occupancy[idx] = q.len();
        }
        true
    }

    /// Pops the next cell to transmit: head of the highest-priority
    /// non-empty queue.
    pub(crate) fn dequeue(&mut self) -> Option<(Priority, QueuedCell)> {
        for (idx, q) in self.queues.iter_mut().enumerate() {
            if let Some(cell) = q.pop_front() {
                return Some((Priority::new(idx as u8), cell));
            }
        }
        None
    }

    /// Total cells currently queued across all priorities.
    pub fn occupancy(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// The highest queue occupancy observed per priority level.
    pub fn max_occupancy(&self, priority: Priority) -> usize {
        self.max_occupancy
            .get(priority.level() as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Cells dropped due to full queues.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(conn: u64, enq: u64) -> QueuedCell {
        QueuedCell {
            connection: ConnectionId::new(conn),
            via: crate::engine::Via::Hop(0),
            enqueued: enq,
            emitted: enq,
        }
    }

    #[test]
    fn fifo_order_within_priority() {
        let mut p = PriorityFifo::new(1, None);
        p.enqueue(Priority::HIGHEST, cell(1, 0));
        p.enqueue(Priority::HIGHEST, cell(2, 1));
        assert_eq!(p.dequeue().unwrap().1.connection, ConnectionId::new(1));
        assert_eq!(p.dequeue().unwrap().1.connection, ConnectionId::new(2));
        assert!(p.dequeue().is_none());
    }

    #[test]
    fn higher_priority_served_first() {
        let mut p = PriorityFifo::new(2, None);
        p.enqueue(Priority::new(1), cell(1, 0));
        p.enqueue(Priority::new(0), cell(2, 1));
        let (prio, c) = p.dequeue().unwrap();
        assert_eq!(prio, Priority::HIGHEST);
        assert_eq!(c.connection, ConnectionId::new(2));
        let (prio, _) = p.dequeue().unwrap();
        assert_eq!(prio, Priority::new(1));
    }

    #[test]
    fn capacity_drops_overflow() {
        let mut p = PriorityFifo::new(1, Some(2));
        // A 2-cell queue admits cells seeing 0, 1 and 2 cells ahead
        // (delays 0, 1, 2 <= bound)...
        assert!(p.enqueue(Priority::HIGHEST, cell(1, 0)));
        assert!(p.enqueue(Priority::HIGHEST, cell(2, 0)));
        assert!(p.enqueue(Priority::HIGHEST, cell(3, 0)));
        // ...and drops the one that would wait 3 slots.
        assert!(!p.enqueue(Priority::HIGHEST, cell(4, 0)));
        assert_eq!(p.drops(), 1);
        assert_eq!(p.occupancy(), 3);
    }

    #[test]
    fn occupancy_tracking() {
        let mut p = PriorityFifo::new(2, None);
        p.enqueue(Priority::new(1), cell(1, 0));
        p.enqueue(Priority::new(1), cell(2, 0));
        p.enqueue(Priority::new(0), cell(3, 0));
        assert_eq!(p.occupancy(), 3);
        assert_eq!(p.max_occupancy(Priority::new(1)), 2);
        assert_eq!(p.max_occupancy(Priority::new(0)), 1);
        p.dequeue();
        assert_eq!(p.occupancy(), 2);
        // Max sticks.
        assert_eq!(p.max_occupancy(Priority::new(1)), 2);
    }

    #[test]
    fn out_of_range_priority_clamps_to_lowest() {
        let mut p = PriorityFifo::new(2, None);
        assert!(p.enqueue(Priority::new(9), cell(1, 0)));
        let (prio, _) = p.dequeue().unwrap();
        assert_eq!(prio, Priority::new(1));
    }
}
