//! A slotted, cell-level ATM network simulator with static-priority
//! FIFO output-queued switches.
//!
//! The analytic machinery of the sibling crates *bounds* worst-case
//! queueing delays; this crate *measures* them, so the bounds can be
//! validated empirically (an experiment the paper's authors ran on
//! RTnet hardware; here the hardware substrate is simulated, which the
//! CAC analysis treats identically — only link rates, queue sizes and
//! priorities matter).
//!
//! # Model
//!
//! Time advances in **cell slots**: the time to transmit one cell at
//! full link bandwidth (~2.7 µs at 155 Mbps). Per slot, each link
//! transmits at most one cell (store-and-forward: a cell transmitted in
//! slot `t` is available at the next node in slot `t + 1`). Every link
//! has an output port at its sending node holding one FIFO queue per
//! priority level; switches serve the highest non-empty priority first.
//!
//! Sources are token-bucket shaped ([`Shaper`], implementing the
//! paper's Equation 1) and can follow several [`TrafficPattern`]s:
//! greedy (the worst case of Figure 1), periodic, or seeded-random
//! on/off.
//!
//! # Examples
//!
//! ```
//! use rtcac_bitstream::{Rate, TrafficContract, VbrParams};
//! use rtcac_cac::{ConnectionId, Priority};
//! use rtcac_net::{builders, Route};
//! use rtcac_rational::ratio;
//! use rtcac_sim::{Simulation, TrafficPattern};
//!
//! let (topology, src, switches, dst) = builders::line(2)?;
//! let route = Route::from_nodes(&topology, [src, switches[0], switches[1], dst])?;
//!
//! let contract = TrafficContract::vbr(VbrParams::new(
//!     Rate::new(ratio(1, 4)),
//!     Rate::new(ratio(1, 16)),
//!     8,
//! )?);
//!
//! let mut sim = Simulation::new(&topology);
//! sim.add_connection(
//!     ConnectionId::new(1),
//!     route,
//!     Priority::HIGHEST,
//!     contract,
//!     TrafficPattern::Greedy,
//! )?;
//! let report = sim.run(10_000);
//! let conn = report.connection(ConnectionId::new(1)).unwrap();
//! assert!(conn.delivered > 0);
//! assert_eq!(conn.emitted, conn.delivered + conn.in_flight);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod queue;
mod rng;
mod shaper;
mod source;
mod stats;

pub use engine::Simulation;
pub use error::SimError;
pub use queue::PriorityFifo;
pub use rng::SimRng;
pub use shaper::Shaper;
pub use source::{ShapedSource, TrafficPattern};
pub use stats::{ConnectionStats, PortStats, SimReport};
