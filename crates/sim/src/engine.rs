//! The slotted simulation engine.

use std::collections::BTreeMap;
use std::sync::Arc;

use rtcac_bitstream::TrafficContract;
use rtcac_cac::{ConnectionId, Priority};
use rtcac_net::{LinkId, MulticastTree, NodeId, Route, Topology};
use rtcac_signaling::Network;

use crate::queue::QueuedCell;
use crate::rng::SimRng;
use crate::stats::{ConnectionStats, PortStats};
use crate::{PriorityFifo, ShapedSource, SimError, SimReport, TrafficPattern};

#[derive(Debug, Clone)]
struct SimConnection {
    forwarding: Forwarding,
    priority: Priority,
    source: ShapedSource,
}

/// How a connection's cells find their way.
#[derive(Debug, Clone)]
enum Forwarding {
    /// Unicast: an ordered list of links.
    Path(Vec<LinkId>),
    /// Point-to-multipoint: entry links from the source, and the tree
    /// links departing each forwarding node (cells duplicate there).
    Tree {
        entry: Vec<LinkId>,
        next: BTreeMap<NodeId, Vec<LinkId>>,
    },
}

/// A cell travelling between nodes.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    connection: ConnectionId,
    /// For paths: the index of the next link. For trees: the link just
    /// crossed (its head decides duplication or delivery).
    via: Via,
    emitted: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Via {
    Hop(usize),
    Link(LinkId),
}

/// A reproducible, slotted, cell-level simulation over a topology.
///
/// Assemble with [`Simulation::new`] (or [`Simulation::from_network`]
/// to mirror a set of CAC-established connections), add connections,
/// then [`Simulation::run`]. Running does not consume the scenario:
/// each run restarts from slot 0 with fresh source and queue state, so
/// parameter sweeps can reuse one `Simulation`.
#[derive(Debug, Clone)]
pub struct Simulation {
    link_to: Vec<NodeId>,
    link_from: Vec<NodeId>,
    node_is_switch: Vec<bool>,
    levels: u8,
    queue_capacity: Option<usize>,
    jitter: Option<Jitter>,
    connections: BTreeMap<ConnectionId, SimConnection>,
    registry: Option<Arc<rtcac_obs::Registry>>,
}

/// Bounded random propagation jitter injected on switch output links,
/// emulating the cell delay variation the CAC analysis budgets for.
#[derive(Debug, Clone, Copy)]
struct Jitter {
    max_slots: u64,
    seed: u64,
}

impl Simulation {
    /// Creates an empty scenario over a topology with unbounded queues
    /// and a single priority level (levels grow automatically as
    /// connections are added).
    pub fn new(topology: &Topology) -> Simulation {
        Simulation {
            link_to: topology.links().iter().map(|l| l.to()).collect(),
            link_from: topology.links().iter().map(|l| l.from()).collect(),
            node_is_switch: topology.nodes().iter().map(|n| n.is_switch()).collect(),
            levels: 1,
            queue_capacity: None,
            jitter: None,
            connections: BTreeMap::new(),
            registry: None,
        }
    }

    /// Publishes each run's aggregate counters and queue-depth gauges
    /// to an explicit [`rtcac_obs::Registry`] instead of the
    /// process-global one.
    pub fn set_registry(&mut self, registry: Arc<rtcac_obs::Registry>) {
        self.registry = Some(registry);
    }

    /// Mirrors all connections established in a CAC-managed network as
    /// greedy (worst-case) sources — the canonical bound-validation
    /// scenario.
    pub fn from_network(network: &Network) -> Simulation {
        let mut sim = Simulation::new(network.topology());
        for info in network.connections() {
            sim.add_connection(
                info.id(),
                info.route().clone(),
                info.request().priority(),
                info.request().contract(),
                TrafficPattern::Greedy,
            )
            .expect("established connections have valid routes");
        }
        sim
    }

    /// Bounds every priority queue at every port to `capacity` cells
    /// (cells overflowing are dropped and counted). `None` restores
    /// unbounded queues.
    pub fn set_queue_capacity(&mut self, capacity: Option<usize>) {
        self.queue_capacity = capacity;
    }

    /// Injects bounded, order-preserving random propagation jitter of
    /// up to `max_slots` extra slots on every *switch* output link
    /// (access links from end systems stay jitter-free: the analysis
    /// assumes sources are shaped with zero upstream CDV).
    ///
    /// This emulates the cell delay variation a real network exhibits,
    /// driving measured delays closer to the worst case the analysis
    /// budgets for. Runs remain deterministic for a given `seed`.
    pub fn set_link_jitter(&mut self, max_slots: u64, seed: u64) {
        self.jitter = if max_slots == 0 {
            None
        } else {
            Some(Jitter { max_slots, seed })
        };
    }

    /// Registers a connection: its route, priority, traffic contract
    /// and emission pattern.
    ///
    /// # Errors
    ///
    /// - [`SimError::DuplicateConnection`] for a reused id;
    /// - [`SimError::UnknownLink`] if the route references a link
    ///   outside the topology this simulation was built from;
    /// - [`SimError::ForwardThroughEndSystem`] if an intermediate node
    ///   is not a switch.
    pub fn add_connection(
        &mut self,
        id: ConnectionId,
        route: Route,
        priority: Priority,
        contract: TrafficContract,
        pattern: TrafficPattern,
    ) -> Result<(), SimError> {
        if self.connections.contains_key(&id) {
            return Err(SimError::DuplicateConnection(id));
        }
        let links = route.links().to_vec();
        for (i, &l) in links.iter().enumerate() {
            let to = *self
                .link_to
                .get(l.index())
                .ok_or(SimError::UnknownLink(l))?;
            let is_last = i + 1 == links.len();
            if !is_last && !self.node_is_switch[to.index()] {
                return Err(SimError::ForwardThroughEndSystem(to));
            }
        }
        self.levels = self.levels.max(priority.level() + 1);
        self.connections.insert(
            id,
            SimConnection {
                forwarding: Forwarding::Path(links),
                priority,
                source: ShapedSource::new(&contract, pattern),
            },
        );
        Ok(())
    }

    /// Registers a point-to-multipoint connection: cells duplicate at
    /// every tree branch switch and are delivered at every leaf.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::add_connection`].
    pub fn add_multicast(
        &mut self,
        id: ConnectionId,
        tree: &MulticastTree,
        priority: Priority,
        contract: TrafficContract,
        pattern: TrafficPattern,
    ) -> Result<(), SimError> {
        if self.connections.contains_key(&id) {
            return Err(SimError::DuplicateConnection(id));
        }
        let mut next: BTreeMap<NodeId, Vec<LinkId>> = BTreeMap::new();
        for &l in tree.links() {
            let from = *self
                .link_from
                .get(l.index())
                .ok_or(SimError::UnknownLink(l))?;
            next.entry(from).or_default().push(l);
        }
        for (&node, outs) in &next {
            if node != tree.root() && !outs.is_empty() && !self.node_is_switch[node.index()] {
                return Err(SimError::ForwardThroughEndSystem(node));
            }
        }
        let entry = next.remove(&tree.root()).unwrap_or_default();
        if entry.is_empty() {
            return Err(SimError::UnknownLink(tree.links()[0]));
        }
        self.levels = self.levels.max(priority.level() + 1);
        self.connections.insert(
            id,
            SimConnection {
                forwarding: Forwarding::Tree { entry, next },
                priority,
                source: ShapedSource::new(&contract, pattern),
            },
        );
        Ok(())
    }

    /// Runs the scenario for `slots` cell times from a cold start and
    /// returns the measurements.
    pub fn run(&self, slots: u64) -> SimReport {
        let mut sources: BTreeMap<ConnectionId, ShapedSource> = self
            .connections
            .iter()
            .map(|(&id, c)| (id, c.source.clone()))
            .collect();
        let mut ports: BTreeMap<LinkId, PriorityFifo> = BTreeMap::new();
        let mut arrivals: BTreeMap<u64, Vec<Arrival>> = BTreeMap::new();
        let mut jitter_rng = self.jitter.map(|j| SimRng::seed_from_u64(j.seed));
        // Earliest slot each link may next deliver a cell at, so that
        // jitter never reorders cells or exceeds one cell per slot.
        let mut link_free: BTreeMap<LinkId, u64> = BTreeMap::new();
        let mut port_stats: BTreeMap<(LinkId, Priority), PortStats> = BTreeMap::new();
        let mut conn_stats: BTreeMap<ConnectionId, ConnectionStats> = self
            .connections
            .keys()
            .map(|&id| (id, ConnectionStats::default()))
            .collect();

        for now in 0..slots {
            // 1. Deliver cells that finished crossing a link: sink them
            //    or enqueue at the next output port(s), duplicating at
            //    multicast branches.
            if let Some(batch) = arrivals.remove(&now) {
                for arrival in batch {
                    let conn = &self.connections[&arrival.connection];
                    let next_links: Vec<(LinkId, Via)> = match (&conn.forwarding, arrival.via) {
                        (Forwarding::Path(route), Via::Hop(k)) => {
                            if k == route.len() {
                                Vec::new()
                            } else {
                                vec![(route[k], Via::Hop(k))]
                            }
                        }
                        (Forwarding::Tree { next, .. }, Via::Link(l)) => {
                            let node = self.link_to[l.index()];
                            next.get(&node)
                                .map(|outs| outs.iter().map(|&o| (o, Via::Link(o))).collect())
                                .unwrap_or_default()
                        }
                        _ => unreachable!("forwarding kind matches arrival kind"),
                    };
                    if next_links.is_empty() {
                        let stats = conn_stats.get_mut(&arrival.connection).expect("known");
                        stats.delivered += 1;
                        let delay = now - arrival.emitted;
                        stats.total_delay += delay;
                        stats.max_delay = stats.max_delay.max(delay);
                        *stats.histogram.entry(delay).or_insert(0) += 1;
                    } else {
                        let copies = next_links.len() as u64 - 1;
                        if copies > 0 {
                            conn_stats
                                .get_mut(&arrival.connection)
                                .expect("known")
                                .duplicated += copies;
                        }
                        for (link, via) in next_links {
                            self.enqueue(
                                &mut ports,
                                &mut conn_stats,
                                link,
                                conn.priority,
                                QueuedCell {
                                    connection: arrival.connection,
                                    via,
                                    enqueued: now,
                                    emitted: arrival.emitted,
                                },
                            );
                        }
                    }
                }
            }

            // 2. Sources emit into their access link output port(s).
            for (&id, source) in sources.iter_mut() {
                if source.emit(now) {
                    let conn = &self.connections[&id];
                    conn_stats.get_mut(&id).expect("known").emitted += 1;
                    let entries: Vec<(LinkId, Via)> = match &conn.forwarding {
                        Forwarding::Path(route) => vec![(route[0], Via::Hop(0))],
                        Forwarding::Tree { entry, .. } => {
                            entry.iter().map(|&l| (l, Via::Link(l))).collect()
                        }
                    };
                    let copies = entries.len() as u64 - 1;
                    if copies > 0 {
                        conn_stats.get_mut(&id).expect("known").duplicated += copies;
                    }
                    for (link, via) in entries {
                        self.enqueue(
                            &mut ports,
                            &mut conn_stats,
                            link,
                            conn.priority,
                            QueuedCell {
                                connection: id,
                                via,
                                enqueued: now,
                                emitted: now,
                            },
                        );
                    }
                }
            }

            // 3. Every port transmits at most one cell; it arrives at
            //    the far end of the link in the next slot, plus any
            //    injected jitter (switch links only, order-preserving).
            for (&link, port) in ports.iter_mut() {
                if let Some((priority, cell)) = port.dequeue() {
                    let stats = port_stats.entry((link, priority)).or_default();
                    stats.transmitted += 1;
                    let delay = now - cell.enqueued;
                    stats.total_delay += delay;
                    stats.max_delay = stats.max_delay.max(delay);
                    let mut arrive = now + 1;
                    if let (Some(j), Some(rng)) = (self.jitter, jitter_rng.as_mut()) {
                        let from_is_switch = self
                            .link_from
                            .get(link.index())
                            .map(|n| self.node_is_switch[n.index()])
                            .unwrap_or(false);
                        if from_is_switch {
                            arrive += rng.gen_below(j.max_slots + 1);
                        }
                    }
                    let free = link_free.entry(link).or_insert(0);
                    let arrive = arrive.max(*free);
                    *free = arrive + 1;
                    let via = match cell.via {
                        Via::Hop(k) => Via::Hop(k + 1),
                        Via::Link(l) => Via::Link(l),
                    };
                    arrivals.entry(arrive).or_default().push(Arrival {
                        connection: cell.connection,
                        via,
                        emitted: cell.emitted,
                    });
                }
            }
        }

        // Fold queue-side counters into the report.
        for (&link, port) in &ports {
            for level in 0..self.levels {
                let p = Priority::new(level);
                let occupancy = port.max_occupancy(p);
                if occupancy > 0 {
                    port_stats.entry((link, p)).or_default().max_occupancy = occupancy;
                }
            }
            if port.drops() > 0 {
                // Attribute drops to the lowest level for accounting;
                // per-connection drops are already tracked exactly.
                port_stats
                    .entry((link, Priority::HIGHEST))
                    .or_default()
                    .drops += port.drops();
            }
        }
        for stats in conn_stats.values_mut() {
            stats.in_flight = stats.emitted + stats.duplicated - stats.delivered - stats.dropped;
        }

        self.publish_observability(&port_stats, &conn_stats, slots);

        SimReport {
            ports: port_stats,
            connections: conn_stats,
            slots,
        }
    }

    /// End-of-run observability fold (cold path: once per `run`, after
    /// the slot loop). Counters accumulate across runs; queue-depth
    /// gauges keep the maximum ever observed.
    fn publish_observability(
        &self,
        port_stats: &BTreeMap<(LinkId, Priority), PortStats>,
        conn_stats: &BTreeMap<ConnectionId, ConnectionStats>,
        slots: u64,
    ) {
        let registry: &rtcac_obs::Registry = match &self.registry {
            Some(r) => r,
            None => match rtcac_obs::global() {
                Some(r) => r,
                None => return,
            },
        };
        registry.counter("sim_runs_total").inc();
        registry.counter("sim_slots_total").add(slots);
        let mut emitted = 0u64;
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        for stats in conn_stats.values() {
            emitted += stats.emitted + stats.duplicated;
            delivered += stats.delivered;
            dropped += stats.dropped;
        }
        registry.counter("sim_cells_emitted_total").add(emitted);
        registry.counter("sim_cells_delivered_total").add(delivered);
        registry.counter("sim_cells_dropped_total").add(dropped);
        let delay = registry.histogram("sim_port_max_delay_slots");
        for (&(_, priority), stats) in port_stats {
            let label = priority.level().to_string();
            registry
                .gauge_with("sim_queue_depth_max_cells", &[("priority", &label)])
                .record_max(stats.max_occupancy as u64);
            delay.record(stats.max_delay);
        }
    }

    fn enqueue(
        &self,
        ports: &mut BTreeMap<LinkId, PriorityFifo>,
        conn_stats: &mut BTreeMap<ConnectionId, ConnectionStats>,
        link: LinkId,
        priority: Priority,
        cell: QueuedCell,
    ) {
        let port = ports
            .entry(link)
            .or_insert_with(|| PriorityFifo::new(self.levels, self.queue_capacity));
        if !port.enqueue(priority, cell) {
            conn_stats.get_mut(&cell.connection).expect("known").dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_bitstream::{CbrParams, Rate};
    use rtcac_net::builders;
    use rtcac_rational::ratio;

    fn cbr(n: i128, d: i128) -> TrafficContract {
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(n, d))).unwrap())
    }

    fn line_scenario() -> (Simulation, Route, Vec<LinkId>) {
        let (topology, src, sw, dst) = builders::line(2).unwrap();
        let route = Route::from_nodes(&topology, [src, sw[0], sw[1], dst]).unwrap();
        let links = route.links().to_vec();
        (Simulation::new(&topology), route, links)
    }

    #[test]
    fn single_cbr_flows_through_line() {
        let (mut sim, route, links) = line_scenario();
        sim.add_connection(
            ConnectionId::new(1),
            route,
            Priority::HIGHEST,
            cbr(1, 4),
            TrafficPattern::Greedy,
        )
        .unwrap();
        let report = sim.run(1_000);
        let c = report.connection(ConnectionId::new(1)).unwrap();
        // ~250 cells, three hops of one slot each.
        assert!(c.emitted >= 249);
        assert!(c.delivered >= c.emitted - 3);
        assert_eq!(c.dropped, 0);
        // One connection alone never queues: every hop delay is 0 and
        // end-to-end delay equals the 3 transmission slots.
        assert_eq!(c.max_delay, 3);
        for &l in &links {
            let p = report.port(l, Priority::HIGHEST).unwrap();
            assert_eq!(p.max_delay, 0, "unexpected queueing at {l}");
        }
    }

    #[test]
    fn two_sources_contend_at_shared_port() {
        // Two terminals feed one switch; both at rate 1/2 onto the same
        // output link: the link is exactly full and one cell of
        // queueing appears.
        let mut t = Topology::new();
        let a = t.add_end_system("a");
        let b = t.add_end_system("b");
        let s = t.add_switch("s");
        let d = t.add_end_system("d");
        t.add_link(a, s).unwrap();
        t.add_link(b, s).unwrap();
        let shared = t.add_link(s, d).unwrap();
        let ra = Route::from_nodes(&t, [a, s, d]).unwrap();
        let rb = Route::from_nodes(&t, [b, s, d]).unwrap();
        let mut sim = Simulation::new(&t);
        sim.add_connection(
            ConnectionId::new(1),
            ra,
            Priority::HIGHEST,
            cbr(1, 2),
            TrafficPattern::Greedy,
        )
        .unwrap();
        sim.add_connection(
            ConnectionId::new(2),
            rb,
            Priority::HIGHEST,
            cbr(1, 2),
            TrafficPattern::Greedy,
        )
        .unwrap();
        let report = sim.run(2_000);
        let port = report.port(shared, Priority::HIGHEST).unwrap();
        // Both sources emit in the same slots; one cell always waits.
        assert_eq!(port.max_delay, 1);
        assert!(report.total_drops() == 0);
        // Utilization: the shared link carries ~1 cell per slot.
        assert!(port.transmitted >= 1_990);
    }

    #[test]
    fn priority_preempts_lower_class() {
        // A full-rate high-priority source starves a low-priority one
        // at a shared port.
        let mut t = Topology::new();
        let a = t.add_end_system("a");
        let b = t.add_end_system("b");
        let s = t.add_switch("s");
        let d = t.add_end_system("d");
        t.add_link(a, s).unwrap();
        t.add_link(b, s).unwrap();
        t.add_link(s, d).unwrap();
        let ra = Route::from_nodes(&t, [a, s, d]).unwrap();
        let rb = Route::from_nodes(&t, [b, s, d]).unwrap();
        let mut sim = Simulation::new(&t);
        sim.add_connection(
            ConnectionId::new(1),
            ra,
            Priority::HIGHEST,
            cbr(9, 10),
            TrafficPattern::Greedy,
        )
        .unwrap();
        sim.add_connection(
            ConnectionId::new(2),
            rb,
            Priority::new(1),
            cbr(1, 10),
            TrafficPattern::Greedy,
        )
        .unwrap();
        let report = sim.run(5_000);
        let hi = report.connection(ConnectionId::new(1)).unwrap();
        let lo = report.connection(ConnectionId::new(2)).unwrap();
        // High priority keeps its delay tiny; low priority waits more.
        assert!(hi.max_delay <= 4);
        assert!(lo.max_delay >= hi.max_delay);
        assert_eq!(report.total_drops(), 0);
    }

    #[test]
    fn queue_capacity_causes_drops() {
        // Two full-rate sources into one output: 2 cells/slot arrive, 1
        // leaves; a 4-cell queue must overflow.
        let mut t = Topology::new();
        let a = t.add_end_system("a");
        let b = t.add_end_system("b");
        let s = t.add_switch("s");
        let d = t.add_end_system("d");
        t.add_link(a, s).unwrap();
        t.add_link(b, s).unwrap();
        t.add_link(s, d).unwrap();
        let ra = Route::from_nodes(&t, [a, s, d]).unwrap();
        let rb = Route::from_nodes(&t, [b, s, d]).unwrap();
        let mut sim = Simulation::new(&t);
        sim.set_queue_capacity(Some(4));
        for (id, r) in [(1, ra), (2, rb)] {
            sim.add_connection(
                ConnectionId::new(id),
                r,
                Priority::HIGHEST,
                cbr(1, 1),
                TrafficPattern::Greedy,
            )
            .unwrap();
        }
        let report = sim.run(200);
        assert!(report.total_drops() > 0);
        let dropped: u64 = report.connections().map(|(_, c)| c.dropped).sum();
        assert_eq!(dropped, report.total_drops());
    }

    #[test]
    fn run_publishes_drop_counters_and_depth_gauges() {
        // Same overloaded fan-in as `queue_capacity_causes_drops`, but
        // with an explicit registry: the published counters must match
        // the report exactly.
        let mut t = Topology::new();
        let a = t.add_end_system("a");
        let b = t.add_end_system("b");
        let s = t.add_switch("s");
        let d = t.add_end_system("d");
        t.add_link(a, s).unwrap();
        t.add_link(b, s).unwrap();
        t.add_link(s, d).unwrap();
        let ra = Route::from_nodes(&t, [a, s, d]).unwrap();
        let rb = Route::from_nodes(&t, [b, s, d]).unwrap();
        let mut sim = Simulation::new(&t);
        sim.set_queue_capacity(Some(4));
        for (id, r) in [(1, ra), (2, rb)] {
            sim.add_connection(
                ConnectionId::new(id),
                r,
                Priority::HIGHEST,
                cbr(1, 1),
                TrafficPattern::Greedy,
            )
            .unwrap();
        }
        let registry = Arc::new(rtcac_obs::Registry::new());
        sim.set_registry(Arc::clone(&registry));
        let report = sim.run(200);

        let snap = registry.snapshot();
        assert_eq!(snap.counter("sim_runs_total"), Some(1));
        assert_eq!(snap.counter("sim_slots_total"), Some(200));
        assert_eq!(
            snap.counter("sim_cells_dropped_total"),
            Some(report.total_drops())
        );
        let emitted: u64 = report
            .connections()
            .map(|(_, c)| c.emitted + c.duplicated)
            .sum();
        assert_eq!(snap.counter("sim_cells_emitted_total"), Some(emitted));
        // The bounded queue saturated: the depth gauge shows it.
        assert_eq!(
            snap.gauge("sim_queue_depth_max_cells"),
            None,
            "gauge is labelled"
        );
        let depth = snap
            .gauges
            .iter()
            .find(|(id, _)| id.name() == "sim_queue_depth_max_cells")
            .map(|&(_, v)| v)
            .unwrap();
        // A cell is admitted while at most `capacity` cells sit ahead
        // of it, so a saturated queue holds capacity + 1 cells.
        assert_eq!(depth, 5);
    }

    #[test]
    fn add_connection_validation() {
        let (mut sim, route, _) = line_scenario();
        sim.add_connection(
            ConnectionId::new(1),
            route.clone(),
            Priority::HIGHEST,
            cbr(1, 4),
            TrafficPattern::Greedy,
        )
        .unwrap();
        assert!(matches!(
            sim.add_connection(
                ConnectionId::new(1),
                route,
                Priority::HIGHEST,
                cbr(1, 4),
                TrafficPattern::Greedy,
            ),
            Err(SimError::DuplicateConnection(_))
        ));
    }

    #[test]
    fn run_is_deterministic_and_repeatable() {
        let (mut sim, route, _) = line_scenario();
        sim.add_connection(
            ConnectionId::new(1),
            route,
            Priority::HIGHEST,
            cbr(1, 3),
            TrafficPattern::Random {
                p_percent: 50,
                seed: 1234,
            },
        )
        .unwrap();
        let a = sim.run(3_000);
        let b = sim.run(3_000);
        let ca = a.connection(ConnectionId::new(1)).unwrap();
        let cb = b.connection(ConnectionId::new(1)).unwrap();
        assert_eq!(ca, cb);
        assert!(ca.emitted > 0);
    }

    #[test]
    fn conservation_of_cells() {
        let (mut sim, route, _) = line_scenario();
        sim.add_connection(
            ConnectionId::new(1),
            route,
            Priority::HIGHEST,
            cbr(1, 2),
            TrafficPattern::Greedy,
        )
        .unwrap();
        let report = sim.run(777);
        let c = report.connection(ConnectionId::new(1)).unwrap();
        assert_eq!(c.emitted, c.delivered + c.in_flight + c.dropped);
    }
}
