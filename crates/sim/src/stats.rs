//! Measurement results of a simulation run.

use std::collections::BTreeMap;

use rtcac_cac::{ConnectionId, Priority};
use rtcac_net::LinkId;

/// Per-(port, priority) queueing measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Largest queueing delay observed, in slots (cell times).
    pub max_delay: u64,
    /// Cells transmitted.
    pub transmitted: u64,
    /// Sum of queueing delays (for averaging).
    pub total_delay: u64,
    /// Largest queue occupancy observed, in cells.
    pub max_occupancy: usize,
    /// Cells dropped at this port (queue overflow).
    pub drops: u64,
}

impl PortStats {
    /// Mean queueing delay in slots, or 0 for an idle port.
    pub fn mean_delay(&self) -> f64 {
        if self.transmitted == 0 {
            0.0
        } else {
            self.total_delay as f64 / self.transmitted as f64
        }
    }

    /// Fraction of the run's slots this port spent transmitting (its
    /// link utilization by this priority class).
    pub fn utilization(&self, slots: u64) -> f64 {
        if slots == 0 {
            0.0
        } else {
            self.transmitted as f64 / slots as f64
        }
    }
}

/// Per-connection end-to-end measurements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnectionStats {
    /// Cells emitted by the source.
    pub emitted: u64,
    /// Cells delivered to the destination.
    pub delivered: u64,
    /// Cells still inside the network when the run ended.
    pub in_flight: u64,
    /// Cells dropped.
    pub dropped: u64,
    /// Extra cell copies created at multicast branches (0 for
    /// unicast).
    pub duplicated: u64,
    /// Largest end-to-end delay (delivery slot − emission slot), in
    /// slots; includes per-hop transmission times.
    pub max_delay: u64,
    /// Sum of end-to-end delays (for averaging).
    pub total_delay: u64,
    /// Histogram of end-to-end delays: `histogram[d]` = cells delivered
    /// with delay `d` slots. Supports the tail analysis behind the soft
    /// CAC scheme ("the worst case is very unlikely in practice").
    pub(crate) histogram: BTreeMap<u64, u64>,
}

impl ConnectionStats {
    /// Mean end-to-end delay in slots over delivered cells.
    pub fn mean_delay(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_delay as f64 / self.delivered as f64
        }
    }

    /// The `q`-quantile of the end-to-end delay distribution (e.g.
    /// `0.999` for p99.9), or `None` before any delivery.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn delay_quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.delivered == 0 {
            return None;
        }
        let rank = ((self.delivered as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (&delay, &count) in &self.histogram {
            seen += count;
            if seen >= rank {
                return Some(delay);
            }
        }
        self.histogram.keys().next_back().copied()
    }

    /// The full delay histogram (delay in slots → delivered cells).
    pub fn delay_histogram(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.histogram.iter().map(|(&d, &c)| (d, c))
    }
}

/// The full measurement report of a [`Simulation`](crate::Simulation)
/// run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    pub(crate) ports: BTreeMap<(LinkId, Priority), PortStats>,
    pub(crate) connections: BTreeMap<ConnectionId, ConnectionStats>,
    pub(crate) slots: u64,
}

impl SimReport {
    /// Slots simulated.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Measurements for one port and priority, if any cell crossed it.
    pub fn port(&self, link: LinkId, priority: Priority) -> Option<&PortStats> {
        self.ports.get(&(link, priority))
    }

    /// All per-port measurements.
    pub fn ports(&self) -> impl Iterator<Item = (&(LinkId, Priority), &PortStats)> + '_ {
        self.ports.iter()
    }

    /// Measurements for one connection.
    pub fn connection(&self, id: ConnectionId) -> Option<&ConnectionStats> {
        self.connections.get(&id)
    }

    /// All per-connection measurements.
    pub fn connections(&self) -> impl Iterator<Item = (&ConnectionId, &ConnectionStats)> + '_ {
        self.connections.iter()
    }

    /// The largest queueing delay observed at any port for a priority.
    pub fn max_port_delay(&self, priority: Priority) -> u64 {
        self.ports
            .iter()
            .filter(|((_, p), _)| *p == priority)
            .map(|(_, s)| s.max_delay)
            .max()
            .unwrap_or(0)
    }

    /// Total cells dropped anywhere in the network.
    pub fn total_drops(&self) -> u64 {
        self.ports.values().map(|s| s.drops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_delay_handles_idle() {
        assert_eq!(PortStats::default().mean_delay(), 0.0);
        assert_eq!(ConnectionStats::default().mean_delay(), 0.0);
        let p = PortStats {
            transmitted: 4,
            total_delay: 6,
            ..PortStats::default()
        };
        assert_eq!(p.mean_delay(), 1.5);
    }

    #[test]
    fn utilization_fraction() {
        let p = PortStats {
            transmitted: 250,
            ..PortStats::default()
        };
        assert_eq!(p.utilization(1_000), 0.25);
        assert_eq!(p.utilization(0), 0.0);
    }

    #[test]
    fn quantiles_from_histogram() {
        let c = ConnectionStats {
            delivered: 10,
            histogram: [(1u64, 5u64), (3, 4), (9, 1)].into_iter().collect(),
            ..ConnectionStats::default()
        };
        assert_eq!(c.delay_quantile(0.0), Some(1));
        assert_eq!(c.delay_quantile(0.5), Some(1));
        assert_eq!(c.delay_quantile(0.6), Some(3));
        assert_eq!(c.delay_quantile(0.9), Some(3));
        assert_eq!(c.delay_quantile(1.0), Some(9));
        assert_eq!(c.delay_histogram().count(), 3);
        assert_eq!(ConnectionStats::default().delay_quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_range_checked() {
        let _ = ConnectionStats::default().delay_quantile(1.5);
    }

    #[test]
    fn report_queries() {
        let mut r = SimReport::default();
        r.ports.insert(
            (LinkId::external(1), Priority::HIGHEST),
            PortStats {
                max_delay: 7,
                drops: 2,
                ..PortStats::default()
            },
        );
        r.ports.insert(
            (LinkId::external(2), Priority::HIGHEST),
            PortStats {
                max_delay: 3,
                drops: 1,
                ..PortStats::default()
            },
        );
        assert_eq!(r.max_port_delay(Priority::HIGHEST), 7);
        assert_eq!(r.max_port_delay(Priority::new(1)), 0);
        assert_eq!(r.total_drops(), 3);
        assert!(r.port(LinkId::external(1), Priority::HIGHEST).is_some());
        assert!(r.port(LinkId::external(9), Priority::HIGHEST).is_none());
        assert_eq!(r.ports().count(), 2);
    }
}
