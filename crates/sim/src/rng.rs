//! A tiny deterministic pseudo-random generator (SplitMix64).
//!
//! The workspace builds against an offline registry, so the `rand`
//! crate is unavailable; this generator covers everything the
//! simulator needs — reproducible seeded streams with uniform draws
//! from small ranges. SplitMix64 passes BigCrush and is the standard
//! seeding generator of the xoshiro family.

/// Deterministic SplitMix64 generator.
///
/// Identical seeds yield identical sequences on every platform, which
/// is what makes simulation runs reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// Returns the next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform draw from `0..bound` (`bound` must be > 0).
    ///
    /// Uses the widening-multiply method; the bias for the small bounds
    /// used here (≤ 2^32) is below 2^-32 and irrelevant for traffic
    /// patterns.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Splits off an independent child stream, advancing this
    /// generator by one draw. SplitMix64 is the standard seeding
    /// generator, so a forked stream is as well-mixed as the parent —
    /// the storm harness forks one stream per fuzz round so rounds
    /// stay reproducible in isolation (and resumable mid-run) without
    /// replaying every earlier round's draws.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SimRng::seed_from_u64(99);
        let mut b = SimRng::seed_from_u64(99);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_below_stays_in_range_and_covers_it() {
        let mut rng = SimRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn roughly_uniform_percentages() {
        // 60% draws should land near 600/1000.
        let mut rng = SimRng::seed_from_u64(42);
        let hits = (0..1_000).filter(|_| rng.gen_below(100) < 60).count();
        assert!((500..=700).contains(&hits), "hits = {hits}");
    }
}
