//! Traffic sources: patterns gated by the contract [`Shaper`].

use rtcac_bitstream::TrafficContract;

use crate::rng::SimRng;
use crate::Shaper;

/// How a source *wants* to emit; the [`Shaper`] decides what it *may*
/// emit.
#[derive(Debug, Clone)]
pub enum TrafficPattern {
    /// Emits whenever the shaper allows — exactly the worst-case
    /// pattern of the paper's Figure 1 (MBS cells at PCR, then SCR).
    Greedy,
    /// Emits one cell every `period` slots, starting at `phase`
    /// (a well-behaved CBR source; the shaper still polices it).
    Periodic {
        /// Slots between consecutive emission attempts.
        period: u64,
        /// Slot of the first attempt.
        phase: u64,
    },
    /// On/off: each slot wants a cell with probability `p_percent/100`,
    /// from a deterministic seeded generator.
    Random {
        /// Emission probability per slot, in percent (0–100).
        p_percent: u8,
        /// RNG seed (runs are reproducible).
        seed: u64,
    },
}

/// A traffic source: a [`TrafficPattern`] policed by a contract
/// [`Shaper`].
#[derive(Debug, Clone)]
pub struct ShapedSource {
    pattern: PatternState,
    shaper: Shaper,
}

#[derive(Debug, Clone)]
enum PatternState {
    Greedy,
    Periodic { period: u64, phase: u64 },
    Random { p_percent: u8, rng: SimRng },
}

impl ShapedSource {
    /// Creates a source for a contract and pattern.
    pub fn new(contract: &TrafficContract, pattern: TrafficPattern) -> ShapedSource {
        let pattern = match pattern {
            TrafficPattern::Greedy => PatternState::Greedy,
            TrafficPattern::Periodic { period, phase } => PatternState::Periodic {
                period: period.max(1),
                phase,
            },
            TrafficPattern::Random { p_percent, seed } => PatternState::Random {
                p_percent: p_percent.min(100),
                rng: SimRng::seed_from_u64(seed),
            },
        };
        ShapedSource {
            pattern,
            shaper: Shaper::new(contract),
        }
    }

    /// Whether the source emits a cell in `slot`. Must be called once
    /// per slot, in increasing slot order.
    pub fn emit(&mut self, slot: u64) -> bool {
        let wants = match &mut self.pattern {
            PatternState::Greedy => true,
            PatternState::Periodic { period, phase } => {
                slot >= *phase && (slot - *phase).is_multiple_of(*period)
            }
            PatternState::Random { p_percent, rng } => rng.gen_below(100) < u64::from(*p_percent),
        };
        wants && self.shaper.try_send(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_bitstream::{CbrParams, Rate, VbrParams};
    use rtcac_rational::ratio;

    fn cbr(n: i128, d: i128) -> TrafficContract {
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(n, d))).unwrap())
    }

    fn emissions(src: &mut ShapedSource, slots: u64) -> Vec<u64> {
        (0..slots).filter(|&t| src.emit(t)).collect()
    }

    #[test]
    fn greedy_matches_shaper() {
        let c = cbr(1, 5);
        let mut src = ShapedSource::new(&c, TrafficPattern::Greedy);
        assert_eq!(emissions(&mut src, 25), vec![0, 5, 10, 15, 20]);
    }

    #[test]
    fn periodic_respects_phase_and_period() {
        let c = cbr(1, 2);
        let mut src = ShapedSource::new(
            &c,
            TrafficPattern::Periodic {
                period: 4,
                phase: 3,
            },
        );
        assert_eq!(emissions(&mut src, 20), vec![3, 7, 11, 15, 19]);
    }

    #[test]
    fn periodic_faster_than_contract_is_policed() {
        // Pattern wants every slot; CBR 1/4 allows every 4th.
        let c = cbr(1, 4);
        let mut src = ShapedSource::new(
            &c,
            TrafficPattern::Periodic {
                period: 1,
                phase: 0,
            },
        );
        let sent = emissions(&mut src, 16);
        assert_eq!(sent, vec![0, 4, 8, 12]);
    }

    #[test]
    fn random_is_reproducible_and_policed() {
        let c = TrafficContract::vbr(
            VbrParams::new(Rate::new(ratio(1, 2)), Rate::new(ratio(1, 8)), 4).unwrap(),
        );
        let mut a = ShapedSource::new(
            &c,
            TrafficPattern::Random {
                p_percent: 60,
                seed: 42,
            },
        );
        let mut b = ShapedSource::new(
            &c,
            TrafficPattern::Random {
                p_percent: 60,
                seed: 42,
            },
        );
        let ea = emissions(&mut a, 500);
        let eb = emissions(&mut b, 500);
        assert_eq!(ea, eb);
        // Policed to the SCR in the long run (1/8 * 500 + MBS slack).
        assert!(ea.len() as u64 <= 500 / 8 + 4);
        assert!(!ea.is_empty());
    }

    #[test]
    fn zero_probability_random_is_silent() {
        let c = cbr(1, 2);
        let mut src = ShapedSource::new(
            &c,
            TrafficPattern::Random {
                p_percent: 0,
                seed: 7,
            },
        );
        assert!(emissions(&mut src, 100).is_empty());
    }
}
