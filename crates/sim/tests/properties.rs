//! Randomized property tests for the cell-level simulator.
//!
//! The registry is offline, so instead of proptest these run seeded
//! loops over a local SplitMix64 generator.

use rtcac_bitstream::{Rate, TrafficContract, VbrParams};
use rtcac_cac::{ConnectionId, Priority};
use rtcac_net::{Route, Topology};
use rtcac_rational::ratio;
use rtcac_sim::{Simulation, TrafficPattern};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: i128, hi: i128) -> i128 {
        let span = (hi - lo + 1) as u128;
        lo + (u128::from(self.next()) % span) as i128
    }
}

#[derive(Debug, Clone)]
struct ConnSpec {
    pcr_den: i128,
    scr_extra: i128,
    mbs: u64,
    priority: u8,
    pattern: u8,
    seed: u64,
}

fn arb_conn(rng: &mut Rng) -> ConnSpec {
    ConnSpec {
        pcr_den: rng.range(2, 16),
        scr_extra: rng.range(0, 48),
        mbs: rng.range(1, 8) as u64,
        priority: rng.range(0, 1) as u8,
        pattern: rng.range(0, 2) as u8,
        seed: rng.next(),
    }
}

fn arb_conns(rng: &mut Rng, max_len: usize) -> Vec<ConnSpec> {
    let len = rng.range(1, max_len as i128) as usize;
    (0..len).map(|_| arb_conn(rng)).collect()
}

fn contract(spec: &ConnSpec) -> TrafficContract {
    TrafficContract::vbr(
        VbrParams::new(
            Rate::new(ratio(1, spec.pcr_den)),
            Rate::new(ratio(1, spec.pcr_den + spec.scr_extra)),
            spec.mbs,
        )
        .unwrap(),
    )
}

fn pattern(spec: &ConnSpec) -> TrafficPattern {
    match spec.pattern {
        0 => TrafficPattern::Greedy,
        1 => TrafficPattern::Periodic {
            period: spec.pcr_den as u64 + 2,
            phase: (spec.seed % 7),
        },
        _ => TrafficPattern::Random {
            p_percent: 60,
            seed: spec.seed,
        },
    }
}

/// `n` terminals funneling into one switch and out to a sink.
fn funnel(n: usize) -> (Topology, Vec<Route>) {
    let mut t = Topology::new();
    let sources: Vec<_> = (0..n).map(|k| t.add_end_system(format!("s{k}"))).collect();
    let sw = t.add_switch("sw");
    let sink = t.add_end_system("sink");
    for &s in &sources {
        t.add_link(s, sw).unwrap();
    }
    t.add_link(sw, sink).unwrap();
    let routes = sources
        .iter()
        .map(|&s| Route::from_nodes(&t, [s, sw, sink]).unwrap())
        .collect();
    (t, routes)
}

/// Cells are conserved: emitted = delivered + in flight + dropped, for
/// every connection, in every scenario.
#[test]
fn conservation_of_cells() {
    let mut rng = Rng(401);
    for _ in 0..32 {
        let specs = arb_conns(&mut rng, 5);
        let slots = rng.range(500, 3_999) as u64;
        let (topology, routes) = funnel(specs.len());
        let mut sim = Simulation::new(&topology);
        for (k, spec) in specs.iter().enumerate() {
            sim.add_connection(
                ConnectionId::new(k as u64),
                routes[k].clone(),
                Priority::new(spec.priority),
                contract(spec),
                pattern(spec),
            )
            .unwrap();
        }
        let report = sim.run(slots);
        for (_, c) in report.connections() {
            assert_eq!(c.emitted, c.delivered + c.in_flight + c.dropped);
        }
        // Unbounded queues never drop.
        assert_eq!(report.total_drops(), 0);
    }
}

/// Runs are deterministic: identical scenarios measure identically.
#[test]
fn determinism() {
    let mut rng = Rng(402);
    for _ in 0..32 {
        let specs = arb_conns(&mut rng, 3);
        let (topology, routes) = funnel(specs.len());
        let mut sim = Simulation::new(&topology);
        for (k, spec) in specs.iter().enumerate() {
            sim.add_connection(
                ConnectionId::new(k as u64),
                routes[k].clone(),
                Priority::new(spec.priority),
                contract(spec),
                pattern(spec),
            )
            .unwrap();
        }
        let a = sim.run(2_000);
        let b = sim.run(2_000);
        for (id, ca) in a.connections() {
            assert_eq!(Some(ca), b.connection(*id));
        }
    }
}

/// Emission counts respect the contract: no source ever exceeds its
/// worst-case envelope volume.
#[test]
fn emissions_respect_contract() {
    let mut rng = Rng(403);
    for _ in 0..32 {
        let spec = arb_conn(&mut rng);
        let slots = rng.range(1_000, 4_999) as u64;
        let (topology, routes) = funnel(1);
        let mut sim = Simulation::new(&topology);
        sim.add_connection(
            ConnectionId::new(0),
            routes[0].clone(),
            Priority::HIGHEST,
            contract(&spec),
            pattern(&spec),
        )
        .unwrap();
        let report = sim.run(slots);
        let c = report.connection(ConnectionId::new(0)).unwrap();
        let envelope = contract(&spec).worst_case_stream();
        let max_cells = envelope
            .cumulative(rtcac_bitstream::Time::from_integer(slots as i128))
            .as_ratio();
        assert!(ratio(c.emitted as i128, 1) <= max_cells);
    }
}

/// Static priority is strict: in a two-class funnel, the measured max
/// delay of the high class never exceeds the low class's when both
/// share a saturated port with identical traffic.
#[test]
fn priority_ordering_of_delays() {
    let mut rng = Rng(404);
    for _ in 0..16 {
        let seed = rng.range(0, 999) as u64;
        let (topology, routes) = funnel(2);
        let mut sim = Simulation::new(&topology);
        let heavy = TrafficContract::vbr(
            VbrParams::new(Rate::new(ratio(3, 4)), Rate::new(ratio(1, 2)), 8).unwrap(),
        );
        for (k, prio) in [(0u64, Priority::HIGHEST), (1u64, Priority::new(1))] {
            sim.add_connection(
                ConnectionId::new(k),
                routes[k as usize].clone(),
                prio,
                heavy,
                TrafficPattern::Random {
                    p_percent: 90,
                    seed: seed + k,
                },
            )
            .unwrap();
        }
        let report = sim.run(20_000);
        let hi = report.connection(ConnectionId::new(0)).unwrap();
        let lo = report.connection(ConnectionId::new(1)).unwrap();
        assert!(hi.max_delay <= lo.max_delay + 1);
    }
}

/// Jitter preserves conservation and only ever delays cells.
#[test]
fn jitter_preserves_conservation() {
    let mut rng = Rng(405);
    for _ in 0..24 {
        let spec = arb_conn(&mut rng);
        let jit = rng.range(1, 11) as u64;
        let seed = rng.range(0, 998) as u64;
        let (topology, routes) = funnel(1);
        let mut plain = Simulation::new(&topology);
        plain
            .add_connection(
                ConnectionId::new(0),
                routes[0].clone(),
                Priority::HIGHEST,
                contract(&spec),
                TrafficPattern::Greedy,
            )
            .unwrap();
        let mut jittered = plain.clone();
        jittered.set_link_jitter(jit, seed);
        let a = plain.run(5_000);
        let b = jittered.run(5_000);
        let ca = a.connection(ConnectionId::new(0)).unwrap();
        let cb = b.connection(ConnectionId::new(0)).unwrap();
        assert_eq!(ca.emitted, cb.emitted);
        assert_eq!(cb.emitted, cb.delivered + cb.in_flight + cb.dropped);
        // Jitter can only increase the observed max delay.
        assert!(cb.max_delay >= ca.max_delay);
    }
}
