//! Property-based tests for the cell-level simulator.

use proptest::collection::vec;
use proptest::prelude::*;
use rtcac_bitstream::{Rate, TrafficContract, VbrParams};
use rtcac_cac::{ConnectionId, Priority};
use rtcac_net::{Route, Topology};
use rtcac_rational::ratio;
use rtcac_sim::{Simulation, TrafficPattern};

#[derive(Debug, Clone)]
struct ConnSpec {
    pcr_den: i128,
    scr_extra: i128,
    mbs: u64,
    priority: u8,
    pattern: u8,
    seed: u64,
}

fn arb_conn() -> impl Strategy<Value = ConnSpec> {
    (2i128..=16, 0i128..=48, 1u64..=8, 0u8..=1, 0u8..=2, 0u64..=u64::MAX).prop_map(
        |(pcr_den, scr_extra, mbs, priority, pattern, seed)| ConnSpec {
            pcr_den,
            scr_extra,
            mbs,
            priority,
            pattern,
            seed,
        },
    )
}

fn contract(spec: &ConnSpec) -> TrafficContract {
    TrafficContract::vbr(
        VbrParams::new(
            Rate::new(ratio(1, spec.pcr_den)),
            Rate::new(ratio(1, spec.pcr_den + spec.scr_extra)),
            spec.mbs,
        )
        .unwrap(),
    )
}

fn pattern(spec: &ConnSpec) -> TrafficPattern {
    match spec.pattern {
        0 => TrafficPattern::Greedy,
        1 => TrafficPattern::Periodic {
            period: spec.pcr_den as u64 + 2,
            phase: (spec.seed % 7),
        },
        _ => TrafficPattern::Random {
            p_percent: 60,
            seed: spec.seed,
        },
    }
}

/// `n` terminals funneling into one switch and out to a sink.
fn funnel(n: usize) -> (Topology, Vec<Route>) {
    let mut t = Topology::new();
    let sources: Vec<_> = (0..n)
        .map(|k| t.add_end_system(format!("s{k}")))
        .collect();
    let sw = t.add_switch("sw");
    let sink = t.add_end_system("sink");
    for &s in &sources {
        t.add_link(s, sw).unwrap();
    }
    t.add_link(sw, sink).unwrap();
    let routes = sources
        .iter()
        .map(|&s| Route::from_nodes(&t, [s, sw, sink]).unwrap())
        .collect();
    (t, routes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cells are conserved: emitted = delivered + in flight + dropped,
    /// for every connection, in every scenario.
    #[test]
    fn conservation_of_cells(specs in vec(arb_conn(), 1..6), slots in 500u64..4_000) {
        let (topology, routes) = funnel(specs.len());
        let mut sim = Simulation::new(&topology);
        for (k, spec) in specs.iter().enumerate() {
            sim.add_connection(
                ConnectionId::new(k as u64),
                routes[k].clone(),
                Priority::new(spec.priority),
                contract(spec),
                pattern(spec),
            )
            .unwrap();
        }
        let report = sim.run(slots);
        for (_, c) in report.connections() {
            prop_assert_eq!(c.emitted, c.delivered + c.in_flight + c.dropped);
        }
        // Unbounded queues never drop.
        prop_assert_eq!(report.total_drops(), 0);
    }

    /// Runs are deterministic: identical scenarios measure identically.
    #[test]
    fn determinism(specs in vec(arb_conn(), 1..4)) {
        let (topology, routes) = funnel(specs.len());
        let mut sim = Simulation::new(&topology);
        for (k, spec) in specs.iter().enumerate() {
            sim.add_connection(
                ConnectionId::new(k as u64),
                routes[k].clone(),
                Priority::new(spec.priority),
                contract(spec),
                pattern(spec),
            )
            .unwrap();
        }
        let a = sim.run(2_000);
        let b = sim.run(2_000);
        for (id, ca) in a.connections() {
            prop_assert_eq!(Some(ca), b.connection(*id));
        }
    }

    /// Emission counts respect the contract: no source ever exceeds its
    /// worst-case envelope volume.
    #[test]
    fn emissions_respect_contract(spec in arb_conn(), slots in 1_000u64..5_000) {
        let (topology, routes) = funnel(1);
        let mut sim = Simulation::new(&topology);
        sim.add_connection(
            ConnectionId::new(0),
            routes[0].clone(),
            Priority::HIGHEST,
            contract(&spec),
            pattern(&spec),
        )
        .unwrap();
        let report = sim.run(slots);
        let c = report.connection(ConnectionId::new(0)).unwrap();
        let envelope = contract(&spec).worst_case_stream();
        let max_cells = envelope
            .cumulative(rtcac_bitstream::Time::from_integer(slots as i128))
            .as_ratio();
        prop_assert!(ratio(c.emitted as i128, 1) <= max_cells);
    }

    /// Static priority is strict: in a two-class funnel, the measured
    /// max delay of the high class never exceeds the low class's when
    /// both share a saturated port with identical traffic.
    #[test]
    fn priority_ordering_of_delays(seed in 0u64..1_000) {
        let (topology, routes) = funnel(2);
        let mut sim = Simulation::new(&topology);
        let heavy = TrafficContract::vbr(
            VbrParams::new(
                Rate::new(ratio(3, 4)),
                Rate::new(ratio(1, 2)),
                8,
            )
            .unwrap(),
        );
        for (k, prio) in [(0u64, Priority::HIGHEST), (1u64, Priority::new(1))] {
            sim.add_connection(
                ConnectionId::new(k),
                routes[k as usize].clone(),
                prio,
                heavy,
                TrafficPattern::Random { p_percent: 90, seed: seed + k },
            )
            .unwrap();
        }
        let report = sim.run(20_000);
        let hi = report.connection(ConnectionId::new(0)).unwrap();
        let lo = report.connection(ConnectionId::new(1)).unwrap();
        prop_assert!(hi.max_delay <= lo.max_delay + 1);
    }

    /// Jitter preserves conservation and only ever delays cells.
    #[test]
    fn jitter_preserves_conservation(spec in arb_conn(), jit in 1u64..12, seed in 0u64..999) {
        let (topology, routes) = funnel(1);
        let mut plain = Simulation::new(&topology);
        plain
            .add_connection(
                ConnectionId::new(0),
                routes[0].clone(),
                Priority::HIGHEST,
                contract(&spec),
                TrafficPattern::Greedy,
            )
            .unwrap();
        let mut jittered = plain.clone();
        jittered.set_link_jitter(jit, seed);
        let a = plain.run(5_000);
        let b = jittered.run(5_000);
        let ca = a.connection(ConnectionId::new(0)).unwrap();
        let cb = b.connection(ConnectionId::new(0)).unwrap();
        prop_assert_eq!(ca.emitted, cb.emitted);
        prop_assert_eq!(cb.emitted, cb.delivered + cb.in_flight + cb.dropped);
        // Jitter can only increase the observed max delay.
        prop_assert!(cb.max_delay >= ca.max_delay);
    }
}
