//! Round-trip identity and decision parity.
//!
//! * `snapshot → encode → decode → restore → snapshot → encode` must be
//!   **byte-identical** — the format is lossless for everything that
//!   matters and deterministic in everything it writes.
//! * An engine restored from a snapshot must make **bit-identical
//!   admission decisions** to the uninterrupted original on the same
//!   subsequent submission stream.

use std::sync::Arc;

use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac_cac::{ConnectionId, Priority, SwitchConfig};
use rtcac_engine::{AdmissionEngine, EngineOutcome};
use rtcac_net::{builders, MulticastTree, NodeId, Topology};
use rtcac_rational::ratio;
use rtcac_signaling::{CdvPolicy, SetupRequest};
use rtcac_sim::SimRng;
use rtcac_snap::{
    adopt_into, decode, encode, load_file, restore_engine, save_atomic, snapshot_engine, SnapError,
};

const PRIORITIES: u8 = 2;

fn build_engine() -> (AdmissionEngine, Vec<NodeId>) {
    let sr = builders::star_ring(4, 2).unwrap();
    let config = SwitchConfig::uniform(PRIORITIES, Time::from_integer(64)).unwrap();
    let engine = AdmissionEngine::new(sr.topology().clone(), config, CdvPolicy::Hard);
    let terminals = engine.topology().end_systems().map(|n| n.id()).collect();
    (engine, terminals)
}

fn seeded_contract(rng: &mut SimRng) -> TrafficContract {
    if rng.gen_below(2) == 0 {
        let den = 8i128 << rng.gen_below(3);
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, den))).unwrap())
    } else {
        TrafficContract::vbr(
            VbrParams::new(
                Rate::new(ratio(1, 4 + i128::from(rng.gen_below(3)))),
                Rate::new(ratio(1, 16 + i128::from(rng.gen_below(8)))),
                2 + rng.gen_below(5),
            )
            .unwrap(),
        )
    }
}

/// One deterministic churn op against `engine`; returns a comparable
/// record of what happened.
fn churn_op(
    engine: &AdmissionEngine,
    terminals: &[NodeId],
    live: &mut Vec<ConnectionId>,
    rng: &mut SimRng,
) -> String {
    if !live.is_empty() && rng.gen_below(4) == 0 {
        let id = live.swap_remove(rng.gen_below(live.len() as u64) as usize);
        engine.release(id).unwrap();
        return format!("released {id}");
    }
    let request = SetupRequest::new(
        seeded_contract(rng),
        Priority::new(rng.gen_below(u64::from(PRIORITIES)) as u8),
        Time::from_integer(100_000),
    );
    let multicast = rng.gen_below(5) == 0 && terminals.len() >= 3;
    let outcome = if multicast {
        let root = terminals[rng.gen_below(terminals.len() as u64) as usize];
        let leaves: Vec<NodeId> = terminals
            .iter()
            .copied()
            .filter(|&t| t != root)
            .take(2)
            .collect();
        let tree = MulticastTree::shortest_tree(engine.topology(), root, &leaves).unwrap();
        engine.admit_multicast(&tree, request).unwrap()
    } else {
        let from = terminals[rng.gen_below(terminals.len() as u64) as usize];
        let to = terminals[rng.gen_below(terminals.len() as u64) as usize];
        if from == to {
            return "skipped".into();
        }
        let route = engine
            .topology()
            .shortest_route_avoiding(from, to, &[], &[])
            .unwrap();
        engine.admit(&route, request).unwrap()
    };
    match outcome {
        EngineOutcome::Admitted {
            id,
            guaranteed_delay,
        } => {
            live.push(id);
            format!("admitted {id} bound {guaranteed_delay:?}")
        }
        EngineOutcome::Rerouted {
            id,
            guaranteed_delay,
            attempts,
            ..
        } => {
            live.push(id);
            format!("rerouted {id} bound {guaranteed_delay:?} after {attempts}")
        }
        EngineOutcome::Rejected { id, rejection } => format!("rejected {id}: {rejection:?}"),
    }
}

/// A populated engine with unicast + multicast connections, some
/// released, and a link failure in the health overlay.
fn churned_engine(seed: u64, ops: usize) -> (AdmissionEngine, Vec<ConnectionId>, SimRng) {
    let (engine, terminals) = build_engine();
    let mut rng = SimRng::seed_from_u64(seed);
    let mut live = Vec::new();
    for _ in 0..ops {
        churn_op(&engine, &terminals, &mut live, &mut rng);
    }
    // Put the health overlay in a non-trivial state too.
    let link = engine.topology().links()[rng.gen_below(4) as usize].id();
    let impact = engine.fail_link(link).unwrap();
    live.retain(|id| !impact.torn_down().contains(id));
    (engine, live, rng)
}

#[test]
fn snapshot_restore_snapshot_is_byte_identical() {
    let (engine, _, _) = churned_engine(0xD0C, 120);
    let doc = snapshot_engine(&engine, "roundtrip-test");
    assert!(doc.state.total_legs() > 0, "churn must leave live state");
    let bytes = encode(&doc);

    let decoded = decode(&bytes).unwrap();
    assert_eq!(decoded, doc, "decode must invert encode");

    let restored = restore_engine(&decoded).unwrap();
    let again = encode(&snapshot_engine(&restored, "roundtrip-test"));
    assert_eq!(
        bytes, again,
        "snapshot -> restore -> snapshot must be byte-identical"
    );
}

#[test]
fn restored_engine_matches_uninterrupted_decisions() {
    let (original, mut live_a, rng_at_cut) = churned_engine(0xBEEF, 100);
    let doc = snapshot_engine(&original, "parity");
    let restored = restore_engine(&doc).unwrap();
    let terminals: Vec<NodeId> = original.topology().end_systems().map(|n| n.id()).collect();

    // Same stream, same RNG position, one engine uninterrupted and one
    // freshly restored: every decision (ids, bounds, reject reasons)
    // must match.
    let mut live_b = live_a.clone();
    let mut rng_a = rng_at_cut;
    let mut rng_b = rng_at_cut;
    for op in 0..150 {
        let a = churn_op(&original, &terminals, &mut live_a, &mut rng_a);
        let b = churn_op(&restored, &terminals, &mut live_b, &mut rng_b);
        assert_eq!(a, b, "decision diverged at op {op}");
    }

    // And the terminal states agree exactly (cache counters are forced
    // to zero in exports, so cold-vs-warm caches cannot differ here).
    assert_eq!(original.export_state(), restored.export_state());
}

#[test]
fn adopt_into_replaces_live_state_in_place() {
    let (source, _, _) = churned_engine(0xA0B, 80);
    let doc = snapshot_engine(&source, "adopt");

    let (target, terminals) = build_engine();
    // Dirty the target first so adoption provably replaces state.
    let mut rng = SimRng::seed_from_u64(99);
    let mut live = Vec::new();
    for _ in 0..40 {
        churn_op(&target, &terminals, &mut live, &mut rng);
    }
    adopt_into(&target, &doc).unwrap();
    assert_eq!(target.export_state(), source.export_state());
}

#[test]
fn adopt_into_refuses_topology_mismatch() {
    let (source, _, _) = churned_engine(0xA0C, 40);
    let doc = snapshot_engine(&source, "mismatch");
    let other = builders::star_ring(5, 2).unwrap();
    let config = SwitchConfig::uniform(PRIORITIES, Time::from_integer(64)).unwrap();
    let target = AdmissionEngine::new(other.topology().clone(), config, CdvPolicy::Hard);
    let before = target.export_state();
    assert!(matches!(
        adopt_into(&target, &doc),
        Err(SnapError::Refused(_))
    ));
    assert_eq!(
        target.export_state(),
        before,
        "refusal must not touch the engine"
    );
}

#[test]
fn inconsistent_state_is_refused_not_half_loaded() {
    let (engine, _, _) = churned_engine(0xA0D, 60);
    let mut doc = snapshot_engine(&engine, "tampered");
    let victim = doc
        .state
        .connections
        .first()
        .expect("churn admitted something")
        .id;
    // Strip the victim's shard legs but keep its registry entry: a
    // registry/shard inconsistency the restore audit must catch.
    for switch in &mut doc.state.switches {
        switch.legs.retain(|(id, _)| *id != victim);
    }
    assert!(matches!(restore_engine(&doc), Err(SnapError::Refused(_))));
}

#[test]
fn stale_id_allocator_is_refused() {
    let (engine, _, _) = churned_engine(0xA1D, 60);
    let mut doc = snapshot_engine(&engine, "tampered");
    let max = doc
        .state
        .connections
        .iter()
        .map(|c| c.id.raw())
        .max()
        .expect("churn admitted something");
    // next_id <= an established id would make post-restore setups fail
    // with duplicate-id errors until the allocator caught up.
    doc.state.next_id = max;
    assert!(matches!(restore_engine(&doc), Err(SnapError::Refused(_))));

    let target = restore_engine(&snapshot_engine(&engine, "target")).unwrap();
    let before = target.export_state();
    assert!(matches!(
        adopt_into(&target, &doc),
        Err(SnapError::Refused(_))
    ));
    assert_eq!(
        target.export_state(),
        before,
        "refusal must not touch the engine"
    );
}

#[test]
fn draining_flag_and_counters_survive() {
    let (engine, _, _) = churned_engine(0xA0E, 60);
    engine.set_draining(true);
    let doc = snapshot_engine(&engine, "drain");
    assert!(doc.state.draining);
    let restored = restore_engine(&doc).unwrap();
    assert!(restored.is_draining());
    let (mut a, mut b) = (engine.stats(), restored.stats());
    a.cache_hits = 0;
    a.cache_misses = 0;
    b.cache_hits = 0;
    b.cache_misses = 0;
    assert_eq!(a, b);
}

#[test]
fn save_atomic_and_load_file_roundtrip() {
    let dir = std::env::temp_dir().join(format!("rtcac-snap-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.rtsn");

    let (engine, _, _) = churned_engine(0xF11E, 80);
    let doc = snapshot_engine(&engine, "file-roundtrip");
    let size = save_atomic(&doc, &path).unwrap();
    assert_eq!(size, std::fs::metadata(&path).unwrap().len());
    assert_eq!(load_file(&path).unwrap(), doc);

    // Overwrite atomically with new state; no temp file left behind.
    engine.set_draining(true);
    let doc2 = snapshot_engine(&engine, "file-roundtrip");
    save_atomic(&doc2, &path).unwrap();
    assert_eq!(load_file(&path).unwrap(), doc2);
    assert!(!dir.join("state.rtsn.tmp").exists());

    let report = rtcac_snap::inspect(&path).unwrap();
    assert!(
        report.contains(&format!("version {}", rtcac_snap::VERSION)),
        "inspect must name the version:\n{report}"
    );
    assert!(
        report.contains("draining true"),
        "inspect must show state:\n{report}"
    );

    let path_b = dir.join("state-b.rtsn");
    save_atomic(&doc, &path_b).unwrap();
    let diff = rtcac_snap::diff(&path_b, &path).unwrap();
    assert!(
        diff.contains("draining: false -> true"),
        "diff must spot the drain:\n{diff}"
    );
    assert!(rtcac_snap::diff(&path, &path).unwrap().is_empty());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn restore_into_registry_engine_works() {
    let (engine, _, _) = churned_engine(0xCAFE, 50);
    let doc = snapshot_engine(&engine, "metrics");
    let registry = Arc::new(rtcac_obs::Registry::new());
    let restored = rtcac_snap::restore_engine_with_registry(&doc, registry).unwrap();
    assert_eq!(restored.export_state(), engine.export_state());
}

#[test]
fn topology_spec_rebuild_is_exact() {
    let (engine, _, _) = churned_engine(0x7070, 10);
    let spec = rtcac_snap::TopologySpec::of(engine.topology());
    let rebuilt: Topology = spec.build().unwrap();
    assert!(spec.matches(&rebuilt));
    assert_eq!(rebuilt.nodes().len(), engine.topology().nodes().len());
    assert_eq!(rebuilt.links().len(), engine.topology().links().len());
}

/// Version-1 files (full contract repeated per leg) must keep decoding
/// to the exact same document as the interned version-2 codec — old
/// snapshots on disk stay restorable across the format bump — and the
/// dedup must actually shrink the container when legs share contracts.
#[test]
fn v1_snapshots_stay_restorable_and_v2_is_smaller() {
    let (engine, _, _) = churned_engine(0x51AB, 120);
    let doc = snapshot_engine(&engine, "compat");

    let v2 = encode(&doc);
    let v1 = rtcac_snap::encode_with_version(&doc, 1).unwrap();
    assert_ne!(v1, v2, "the versions are distinct on the wire");
    assert_eq!(decode(&v1).unwrap(), doc, "v1 reader path");
    assert_eq!(decode(&v2).unwrap(), doc, "v2 reader path");
    assert!(
        v2.len() < v1.len(),
        "interned switches section must shrink the file: v1 {} <= v2 {}",
        v1.len(),
        v2.len()
    );

    // A restored engine is decision-identical regardless of which
    // version carried the state.
    let from_v1 = restore_engine(&decode(&v1).unwrap()).unwrap();
    let from_v2 = restore_engine(&decode(&v2).unwrap()).unwrap();
    assert_eq!(from_v1.export_state(), from_v2.export_state());

    // Unknown versions — past and future — are refused as versions.
    assert!(matches!(
        rtcac_snap::encode_with_version(&doc, 0),
        Err(SnapError::UnsupportedVersion { got: 0, .. })
    ));
    assert!(matches!(
        rtcac_snap::encode_with_version(&doc, rtcac_snap::VERSION + 1),
        Err(SnapError::UnsupportedVersion { .. })
    ));
}

/// A version-2 leg referencing past the end of its shard's contract
/// table is a payload error, not a panic or a silent default.
#[test]
fn v2_dangling_table_reference_is_refused() {
    let (engine, _, _) = churned_engine(0x0DD, 40);
    let doc = snapshot_engine(&engine, "dangling");
    let good = encode(&doc);
    let sections = rtcac_snap::parse_sections(&good).unwrap();
    // Corrupt the first leg's table index inside the switches section:
    // node u32 + config (levels u8 + bounds + grid flag) is variable,
    // so instead re-encode with a hostile document is not possible —
    // walk the real bytes: find the section, bump every plausible
    // index byte, and require decode to fail loudly rather than panic.
    let s = sections
        .iter()
        .find(|s| s.name == "switches")
        .expect("switches section present");
    let mut refused = 0;
    for off in s.offset..s.offset + s.len {
        let mut bytes = good.clone();
        bytes[off as usize] ^= 0x80;
        // Fix both checksums so only the payload semantics differ.
        let sum = rtcac_snap::fnv64(&bytes[s.offset as usize..(s.offset + s.len) as usize]);
        let dir_entry = 7 + 2 * 25; // third directory slot (switches)
        bytes[dir_entry + 1 + 8 + 8..dir_entry + 1 + 8 + 8 + 8].copy_from_slice(&sum.to_be_bytes());
        let body_end = bytes.len() - 8;
        let file_sum = rtcac_snap::fnv64(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&file_sum.to_be_bytes());
        // A flip may land on another valid encoding; every other
        // outcome must be a refusal, never a panic.
        if decode(&bytes).is_err() {
            refused += 1;
        }
    }
    assert!(refused > 0, "semantic corruption must be refusable");
}
