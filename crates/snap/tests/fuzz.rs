//! Seeded fuzz loop over hostile snapshot files: truncations, bit
//! flips, forged versions and forged section tables must always come
//! back as a typed [`SnapError`] — never a panic, and never a partially
//! restored engine.

use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
use rtcac_cac::{Priority, SwitchConfig};
use rtcac_engine::AdmissionEngine;
use rtcac_net::builders;
use rtcac_rational::ratio;
use rtcac_signaling::{CdvPolicy, SetupRequest};
use rtcac_sim::SimRng;
use rtcac_snap::{adopt_into, decode, encode, restore_engine, snapshot_engine, SnapError};

fn populated_engine() -> AdmissionEngine {
    let sr = builders::star_ring(3, 2).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
    let engine = AdmissionEngine::new(sr.topology().clone(), config, CdvPolicy::Hard);
    let terminals: Vec<_> = engine.topology().end_systems().map(|n| n.id()).collect();
    for pair in terminals.windows(2) {
        let route = engine
            .topology()
            .shortest_route_avoiding(pair[0], pair[1], &[], &[])
            .unwrap();
        let contract = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 32))).unwrap());
        let request = SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(100_000));
        engine.admit(&route, request).unwrap();
    }
    engine
}

/// `decode` on corrupted bytes must return a typed error (or, for a
/// mutation that happens to decode, the later restore must be
/// all-or-nothing). It must never panic.
#[test]
fn corrupted_snapshots_yield_typed_errors_never_panics() {
    let engine = populated_engine();
    let pristine = encode(&snapshot_engine(&engine, "fuzz"));
    assert!(decode(&pristine).is_ok());

    let mut rng = SimRng::seed_from_u64(0xF022);
    let mut truncations = 0u32;
    let mut flips = 0u32;
    let mut forged = 0u32;
    for round in 0..600 {
        let mut bytes = pristine.clone();
        match rng.gen_below(3) {
            0 => {
                // Truncate to a strictly shorter prefix.
                let keep = rng.gen_below(bytes.len() as u64) as usize;
                bytes.truncate(keep);
                truncations += 1;
            }
            1 => {
                // Flip one bit anywhere — header, directory, payload or
                // trailing checksum.
                let at = rng.gen_below(bytes.len() as u64) as usize;
                bytes[at] ^= 1 << rng.gen_below(8);
                flips += 1;
            }
            _ => {
                // Forge the format version (and nothing else: re-stamp
                // the whole-file checksum so only the version check can
                // object).
                let version = 2 + (rng.gen_below(u64::from(u16::MAX - 1)) as u16);
                bytes[4..6].copy_from_slice(&version.to_be_bytes());
                let body_end = bytes.len() - 8;
                let sum = rtcac_snap::fnv64(&bytes[..body_end]);
                bytes[body_end..].copy_from_slice(&sum.to_be_bytes());
                forged += 1;
            }
        }
        if bytes == pristine {
            continue;
        }
        let err = match decode(&bytes) {
            Err(e) => e,
            Ok(doc) => panic!("round {round}: corrupted bytes decoded cleanly: {doc:?}"),
        };
        // Every failure is one of the typed decode variants; forged
        // versions specifically must be refused *as versions*, proving
        // the reader is forward-refusing rather than checksum-lucky.
        match err {
            SnapError::BadMagic
            | SnapError::UnsupportedVersion { .. }
            | SnapError::Truncated { .. }
            | SnapError::Oversized { .. }
            | SnapError::BadSection(_)
            | SnapError::ChecksumMismatch { .. }
            | SnapError::BadPayload(_) => {}
            other => panic!("round {round}: unexpected error class: {other:?}"),
        }
    }
    assert!(truncations > 100 && flips > 100 && forged > 100);
}

#[test]
fn forged_version_is_refused_as_a_version() {
    let engine = populated_engine();
    let mut bytes = encode(&snapshot_engine(&engine, "fuzz"));
    bytes[4..6].copy_from_slice(&9u16.to_be_bytes());
    let body_end = bytes.len() - 8;
    let sum = rtcac_snap::fnv64(&bytes[..body_end]);
    bytes[body_end..].copy_from_slice(&sum.to_be_bytes());
    assert_eq!(
        decode(&bytes),
        Err(SnapError::UnsupportedVersion {
            got: 9,
            supported: rtcac_snap::VERSION
        })
    );
}

/// Semantically corrupted documents (valid container, hostile state)
/// must be refused by the restore audits with the live engine left
/// untouched — all-or-nothing, never half-loaded.
#[test]
fn hostile_state_never_partially_restores() {
    let engine = populated_engine();
    let pristine_doc = snapshot_engine(&engine, "fuzz");

    let mut rng = SimRng::seed_from_u64(0x5EED);
    for round in 0..100 {
        let mut doc = pristine_doc.clone();
        match rng.gen_below(5) {
            0 => {
                // Registry entry with no shard legs anywhere.
                let victim = doc.state.connections
                    [rng.gen_below(doc.state.connections.len() as u64) as usize]
                    .id;
                for switch in &mut doc.state.switches {
                    switch.legs.retain(|(id, _)| *id != victim);
                }
            }
            1 => {
                // Shard legs with no registry entry (an orphan).
                let victim = doc.state.connections
                    [rng.gen_below(doc.state.connections.len() as u64) as usize]
                    .id;
                doc.state.connections.retain(|c| c.id != victim);
            }
            2 => {
                // A switch section for a node the topology doesn't have.
                let extra = doc.state.switches[0].clone();
                doc.state.switches.push(extra);
            }
            3 => {
                // Id allocator at or behind an established connection:
                // post-restore setups would collide with stale ids.
                let max = doc
                    .state
                    .connections
                    .iter()
                    .map(|c| c.id.raw())
                    .max()
                    .expect("populated engine has connections");
                doc.state.next_id = rng.gen_below(max + 1);
            }
            _ => {
                // Health overlay naming a link beyond the topology.
                doc.state
                    .health
                    .down_links
                    .push(rtcac_net::LinkId::external(10_000));
            }
        }
        assert!(
            matches!(restore_engine(&doc), Err(SnapError::Refused(_))),
            "round {round}: hostile doc was not refused"
        );

        // In-place adoption must refuse too, leaving the target intact.
        let target = populated_engine();
        let before = target.export_state();
        assert!(adopt_into(&target, &doc).is_err(), "round {round}");
        assert_eq!(
            target.export_state(),
            before,
            "round {round}: refused adoption mutated the engine"
        );
    }

    // The pristine document still restores — the fuzz mutations above
    // worked on clones.
    assert!(restore_engine(&pristine_doc).is_ok());
}
