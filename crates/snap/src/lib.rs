//! `rtcac-snap` — versioned snapshot + warm restart of admission state.
//!
//! A running [`rtcac_engine::AdmissionEngine`] holds hard real-time
//! contracts: per-switch `Sia/Sif/Soa/Sof` tables, the connection
//! registry with admitted delay bounds, the link-health overlay and the
//! outcome counters. This crate serializes that state to a
//! length-prefixed, checksummed, **versioned** binary container and
//! restores it — either into a fresh engine or in place into a serving
//! one — so an admission service can be killed and brought back without
//! voiding a single guarantee.
//!
//! Design rules:
//!
//! * **Legs, not tables.** The snapshot stores each switch's admitted
//!   connection legs (exact contracts as `(i128, i128)` rationals), not
//!   the derived bit-stream tables; restore re-derives tables through
//!   the same arrival/multiplex path admission uses, so the rebuild is
//!   bit-identical and version skew in table internals cannot corrupt
//!   state.
//! * **All-or-nothing.** A snapshot that fails checksum verification,
//!   decoding, or the post-rebuild guarantee/orphan audits is refused
//!   with a typed [`SnapError`]; no partially restored engine ever
//!   becomes visible.
//! * **Forward-refusing.** An unknown format version is an error, never
//!   a best-effort parse.
//! * **Deterministic bytes.** Encoding contains no timestamps or
//!   randomness: `snapshot → restore → snapshot` is byte-identical
//!   (restored caches are cold, so cache counters are excluded).
//! * **Atomic writes.** [`save_atomic`] writes a temp sibling, fsyncs,
//!   and renames — a crash leaves the old snapshot or none.

#![forbid(unsafe_code)]

mod codec;
mod error;
mod format;
mod ops;

pub use codec::fnv64;
pub use error::SnapError;
pub use format::{
    encode_with_version, parse_header, parse_sections, SectionInfo, SnapMeta, SnapshotDoc,
    TopologySpec, MAGIC, MAX_SNAPSHOT, MIN_VERSION, VERSION,
};
pub use ops::{
    adopt_into, decode, diff, encode, inspect, load_file, recapture, restore_engine,
    restore_engine_with_registry, save_atomic, sections_of, snapshot_engine, topology_of,
};
