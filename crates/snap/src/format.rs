//! The versioned snapshot container and its section codecs.
//!
//! # Byte layout (format versions 1 and 2)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "RTSN"
//! 4       2     format version (u16 BE) — forward-refusing
//! 6       1     section count
//! 7       25×N  section directory: id u8, offset u64, len u64, fnv64 u64
//! …       …     section payloads (contiguous, directory order)
//! end-8   8     whole-file FNV-1a 64 over every preceding byte
//! ```
//!
//! Both versions have exactly six sections, all mandatory:
//!
//! | id | section  | contents |
//! |----|----------|----------|
//! | 1  | meta     | origin label, CDV policy, reroute budget, next id, drain flag |
//! | 2  | topology | every node (kind, name) and link (from, to, capacity) |
//! | 3  | switches | per shard: config, table epoch, admitted connection legs |
//! | 4  | registry | per connection: shape links, queueing points, bounds, per-leaf delays |
//! | 5  | health   | down links/nodes, health epoch |
//! | 6  | counters | the eleven outcome counters |
//!
//! Versions differ only in the switches section. Version 1 repeats the
//! full `(contract, CDV)` pair on every leg; version 2 mirrors the
//! switch's in-memory contract intern: each shard carries a dedup table
//! of its distinct `(contract, CDV)` pairs in first-use order, and each
//! leg references a table index — a shard with a million legs over a
//! handful of contracts shrinks by roughly the contract size per leg.
//! The table is derived from the legs at encode time, so the in-memory
//! state structs are version-free.
//!
//! **Version policy:** a reader refuses any version it does not know
//! (`SnapError::UnsupportedVersion`) rather than best-effort decoding —
//! admission state is a contract ledger, and guessing at it voids
//! guarantees. This build reads versions [`MIN_VERSION`]..=[`VERSION`]
//! and writes only [`VERSION`] (except [`encode_with_version`], for
//! downgrade tooling); readers are only ever written for explicit
//! versions.
//!
//! Encoding is a pure function of the document — no timestamps, no
//! randomness — so `snapshot → restore → snapshot` is byte-identical.

use rtcac_cac::{ConnectionId, ConnectionRequest, Priority, SwitchConfig};
use rtcac_engine::{ConnectionState, EngineState, EngineStats, HealthOverlayState, SwitchState};
use rtcac_net::{LinkId, NodeId, NodeKind, Topology};
use rtcac_rational::Ratio;
use rtcac_signaling::CdvPolicy;

use crate::codec::{fnv64, Dec, Enc};
use crate::SnapError;

/// The container magic.
pub const MAGIC: [u8; 4] = *b"RTSN";
/// The newest format version this build reads and the only one it
/// writes.
pub const VERSION: u16 = 2;
/// The oldest format version this build still reads.
pub const MIN_VERSION: u16 = 1;
/// Decode refuses files larger than this (a forged length can not
/// force a giant allocation).
pub const MAX_SNAPSHOT: u64 = 256 << 20;

const SECTION_IDS: [(u8, &str); 6] = [
    (1, "meta"),
    (2, "topology"),
    (3, "switches"),
    (4, "registry"),
    (5, "health"),
    (6, "counters"),
];

/// Snapshot metadata: who wrote it. Deliberately free of timestamps so
/// encoding stays deterministic; file age is the file's mtime.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapMeta {
    /// The writing process, e.g. `rtcac-serve` or `rtcac-cli`.
    pub origin: String,
}

/// A self-contained, rebuildable description of a [`Topology`]: node
/// and link ids are assigned sequentially by insertion, so replaying
/// the lists through the topology builder reproduces the graph with
/// identical ids.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TopologySpec {
    /// Every node in id order: `(is_switch, name)`.
    pub nodes: Vec<(bool, String)>,
    /// Every link in id order: `(from, to, capacity)`.
    pub links: Vec<(u32, u32, Ratio)>,
}

impl TopologySpec {
    /// Captures a topology.
    pub fn of(topology: &Topology) -> TopologySpec {
        TopologySpec {
            nodes: topology
                .nodes()
                .iter()
                .map(|n| (n.is_switch(), n.name().to_string()))
                .collect(),
            links: topology
                .links()
                .iter()
                .map(|l| {
                    (
                        l.from().index() as u32,
                        l.to().index() as u32,
                        l.capacity().as_ratio(),
                    )
                })
                .collect(),
        }
    }

    /// Rebuilds the topology.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::BadPayload`] when a link references a
    /// missing node or has a non-positive capacity.
    pub fn build(&self) -> Result<Topology, SnapError> {
        let mut topology = Topology::new();
        for (is_switch, name) in &self.nodes {
            let kind = if *is_switch {
                NodeKind::Switch
            } else {
                NodeKind::EndSystem
            };
            topology.add_node(name.clone(), kind);
        }
        for &(from, to, capacity) in &self.links {
            topology
                .add_link_with_capacity(
                    NodeId::external(from),
                    NodeId::external(to),
                    rtcac_bitstream::Rate::new(capacity),
                )
                .map_err(|_| SnapError::BadPayload("invalid topology link"))?;
        }
        Ok(topology)
    }

    /// Whether `topology` is structurally identical to this spec —
    /// the gate an in-place restore uses before adopting state.
    pub fn matches(&self, topology: &Topology) -> bool {
        *self == TopologySpec::of(topology)
    }
}

/// One decoded snapshot: metadata, the topology it was taken over, and
/// the full engine state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDoc {
    /// Writer metadata.
    pub meta: SnapMeta,
    /// The topology the state belongs to.
    pub topology: TopologySpec,
    /// The engine state at the cut.
    pub state: EngineState,
}

/// One section directory entry, as parsed from the container header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo {
    /// The section id.
    pub id: u8,
    /// The section name (`"meta"`, `"topology"`, …).
    pub name: &'static str,
    /// Absolute payload offset.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// The stored FNV-1a 64 checksum of the payload.
    pub checksum: u64,
}

// ── encode ──────────────────────────────────────────────────────────

/// Encodes a snapshot into its container bytes (a pure function of the
/// document), always at the newest format version.
pub fn encode(doc: &SnapshotDoc) -> Vec<u8> {
    encode_at(doc, VERSION)
}

/// Encodes a snapshot at an explicit supported format version — for
/// downgrade tooling and cross-version compatibility tests. Normal
/// writers use [`encode`].
///
/// # Errors
///
/// [`SnapError::UnsupportedVersion`] when `version` is outside
/// [`MIN_VERSION`]..=[`VERSION`].
pub fn encode_with_version(doc: &SnapshotDoc, version: u16) -> Result<Vec<u8>, SnapError> {
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(SnapError::UnsupportedVersion {
            got: version,
            supported: VERSION,
        });
    }
    Ok(encode_at(doc, version))
}

fn encode_at(doc: &SnapshotDoc, version: u16) -> Vec<u8> {
    let switches = match version {
        1 => encode_switches_v1(&doc.state.switches),
        _ => encode_switches(&doc.state.switches),
    };
    let payloads: Vec<(u8, Vec<u8>)> = vec![
        (1, encode_meta(&doc.meta, &doc.state)),
        (2, encode_topology(&doc.topology)),
        (3, switches),
        (4, encode_registry(&doc.state.connections)),
        (5, encode_health(&doc.state.health)),
        (6, encode_counters(&doc.state.counters)),
    ];
    let mut header = Enc::new();
    for &b in &MAGIC {
        header.u8(b);
    }
    header.u16(version);
    header.u8(payloads.len() as u8);
    let dir_start = 4 + 2 + 1;
    let mut offset = (dir_start + payloads.len() * 25) as u64;
    for (id, payload) in &payloads {
        header
            .u8(*id)
            .u64(offset)
            .u64(payload.len() as u64)
            .u64(fnv64(payload));
        offset += payload.len() as u64;
    }
    let mut bytes = header.finish();
    for (_, payload) in &payloads {
        bytes.extend_from_slice(payload);
    }
    let file_sum = fnv64(&bytes);
    bytes.extend_from_slice(&file_sum.to_be_bytes());
    bytes
}

fn encode_meta(meta: &SnapMeta, state: &EngineState) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.string(&meta.origin)
        .u8(match state.policy {
            CdvPolicy::Hard => 0,
            CdvPolicy::SoftSqrt => 1,
        })
        .u64(state.reroute_budget)
        .u64(state.next_id)
        .flag(state.draining);
    enc.finish()
}

fn encode_topology(spec: &TopologySpec) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u32(spec.nodes.len() as u32);
    for (is_switch, name) in &spec.nodes {
        enc.flag(*is_switch).string(name);
    }
    enc.u32(spec.links.len() as u32);
    for &(from, to, capacity) in &spec.links {
        enc.u32(from).u32(to).ratio(capacity);
    }
    enc.finish()
}

fn encode_config(enc: &mut Enc, config: &SwitchConfig) {
    enc.u8(config.levels());
    for priority in config.priorities() {
        enc.time(config.bound(priority).expect("listed priority has a bound"));
    }
    match config.quantization() {
        Some(grid) => enc.flag(true).i128(grid),
        None => enc.flag(false),
    };
}

/// The version-2 switches codec: per shard, a dedup table of distinct
/// `(contract, CDV)` pairs in first-use order, then legs referencing
/// table indices. Derived from the legs at encode time — first
/// occurrence assigns the index — so it is deterministic for a given
/// leg order.
fn encode_switches(switches: &[SwitchState]) -> Vec<u8> {
    use std::collections::BTreeMap;
    let mut enc = Enc::new();
    enc.u32(switches.len() as u32);
    for shard in switches {
        enc.u32(shard.node.index() as u32);
        encode_config(&mut enc, &shard.config);
        enc.u64(shard.epoch);
        let mut table: Vec<(rtcac_bitstream::TrafficContract, rtcac_bitstream::Time)> = Vec::new();
        let mut lookup = BTreeMap::new();
        let refs: Vec<u32> = shard
            .legs
            .iter()
            .map(|(_, request)| {
                let key = (request.contract(), request.cdv());
                *lookup.entry(key).or_insert_with(|| {
                    table.push(key);
                    (table.len() - 1) as u32
                })
            })
            .collect();
        enc.u32(table.len() as u32);
        for &(contract, cdv) in &table {
            encode_contract(&mut enc, contract);
            enc.time(cdv);
        }
        enc.u32(shard.legs.len() as u32);
        for ((id, request), entry) in shard.legs.iter().zip(refs) {
            enc.u64(id.raw())
                .u32(entry)
                .u32(request.in_link().index() as u32)
                .u32(request.out_link().index() as u32)
                .u8(request.priority().level());
        }
    }
    enc.finish()
}

/// The version-1 switches codec: the full `(contract, CDV)` pair
/// repeated on every leg. Kept for [`encode_with_version`] and its
/// cross-version tests.
fn encode_switches_v1(switches: &[SwitchState]) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u32(switches.len() as u32);
    for shard in switches {
        enc.u32(shard.node.index() as u32);
        encode_config(&mut enc, &shard.config);
        enc.u64(shard.epoch);
        enc.u32(shard.legs.len() as u32);
        for (id, request) in &shard.legs {
            enc.u64(id.raw());
            encode_contract(&mut enc, request.contract());
            enc.time(request.cdv())
                .u32(request.in_link().index() as u32)
                .u32(request.out_link().index() as u32)
                .u8(request.priority().level());
        }
    }
    enc.finish()
}

fn encode_contract(enc: &mut Enc, contract: rtcac_bitstream::TrafficContract) {
    use rtcac_bitstream::TrafficContract;
    match contract {
        TrafficContract::Cbr(p) => {
            enc.u8(0).rate(p.pcr());
        }
        TrafficContract::Vbr(p) => {
            enc.u8(1).rate(p.pcr()).rate(p.scr()).u64(p.mbs());
        }
    }
}

fn encode_registry(connections: &[ConnectionState]) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u32(connections.len() as u32);
    for conn in connections {
        enc.u64(conn.id.raw())
            .flag(conn.multicast)
            .u32_list(conn.links.iter().map(|l| l.index() as u32));
        enc.u32(conn.points.len() as u32);
        for &(node, link) in &conn.points {
            enc.u32(node.index() as u32).u32(link.index() as u32);
        }
        enc.u8(conn.priority.level())
            .time(conn.delay_bound)
            .time(conn.guaranteed_delay);
        enc.u32(conn.per_leaf.len() as u32);
        for &(leaf, delay) in &conn.per_leaf {
            enc.u32(leaf.index() as u32).time(delay);
        }
    }
    enc.finish()
}

fn encode_health(health: &HealthOverlayState) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u32_list(health.down_links.iter().map(|l| l.index() as u32))
        .u32_list(health.down_nodes.iter().map(|n| n.index() as u32))
        .u64(health.epoch);
    enc.finish()
}

fn encode_counters(counters: &EngineStats) -> Vec<u8> {
    let mut enc = Enc::new();
    for v in [
        counters.submitted,
        counters.admitted,
        counters.rejected,
        counters.aborted,
        counters.errored,
        counters.rerouted,
        counters.released,
        counters.failed_over,
        counters.mcast_submitted,
        counters.mcast_admitted,
        counters.mcast_rejected,
    ] {
        enc.u64(v);
    }
    enc.finish()
}

// ── decode ──────────────────────────────────────────────────────────

/// Parses and verifies the container header like [`parse_header`],
/// returning only the section directory.
pub fn parse_sections(bytes: &[u8]) -> Result<Vec<SectionInfo>, SnapError> {
    parse_header(bytes).map(|(_, sections)| sections)
}

/// Parses and verifies the container header: magic, version, section
/// directory bounds, per-section checksums and the whole-file checksum.
/// Returns the format version and the directory without decoding any
/// payload — `inspect` stops here.
pub fn parse_header(bytes: &[u8]) -> Result<(u16, Vec<SectionInfo>), SnapError> {
    if bytes.len() as u64 > MAX_SNAPSHOT {
        return Err(SnapError::Oversized {
            len: bytes.len() as u64,
            max: MAX_SNAPSHOT,
        });
    }
    if bytes.len() < 4 || bytes[..4] != MAGIC {
        return Err(SnapError::BadMagic);
    }
    if bytes.len() < 4 + 2 + 1 + 8 {
        return Err(SnapError::Truncated {
            needed: 4 + 2 + 1 + 8,
            remaining: bytes.len(),
        });
    }
    let mut head = Dec::new(&bytes[4..7]);
    let version = head.u16()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(SnapError::UnsupportedVersion {
            got: version,
            supported: VERSION,
        });
    }
    let body_end = bytes.len() - 8;
    let stored_sum = u64::from_be_bytes(bytes[body_end..].try_into().unwrap());
    if fnv64(&bytes[..body_end]) != stored_sum {
        return Err(SnapError::ChecksumMismatch { over: "file" });
    }
    let count = head.u8()? as usize;
    if count != SECTION_IDS.len() {
        return Err(SnapError::BadSection("snapshot has exactly six sections"));
    }
    let dir_end = 7 + count * 25;
    if dir_end > body_end {
        return Err(SnapError::Truncated {
            needed: dir_end + 8,
            remaining: bytes.len(),
        });
    }
    let mut dec = Dec::new(&bytes[7..dir_end]);
    let mut sections = Vec::with_capacity(count);
    let mut expected_offset = dir_end as u64;
    for &(expected_id, name) in &SECTION_IDS {
        let id = dec.u8()?;
        let offset = dec.u64()?;
        let len = dec.u64()?;
        let checksum = dec.u64()?;
        if id != expected_id {
            return Err(SnapError::BadSection("unknown or out-of-order section id"));
        }
        if offset != expected_offset {
            return Err(SnapError::BadSection("sections must be contiguous"));
        }
        let end = offset
            .checked_add(len)
            .ok_or(SnapError::BadSection("section extent overflows the file"))?;
        if end > body_end as u64 {
            return Err(SnapError::BadSection("section extends past the payload"));
        }
        let payload = &bytes[offset as usize..end as usize];
        if fnv64(payload) != checksum {
            return Err(SnapError::ChecksumMismatch { over: name });
        }
        expected_offset = end;
        sections.push(SectionInfo {
            id,
            name,
            offset,
            len,
            checksum,
        });
    }
    if expected_offset != body_end as u64 {
        return Err(SnapError::BadSection("payload bytes outside any section"));
    }
    Ok((version, sections))
}

/// Decodes a full snapshot: header and checksum verification via
/// [`parse_header`], then every section payload (each consumed
/// exactly) with the switches codec picked by the file's version.
pub fn decode(bytes: &[u8]) -> Result<SnapshotDoc, SnapError> {
    let (version, sections) = parse_header(bytes)?;
    let payload = |idx: usize| {
        &bytes[sections[idx].offset as usize..(sections[idx].offset + sections[idx].len) as usize]
    };
    let (meta, policy, reroute_budget, next_id, draining) = decode_meta(payload(0))?;
    let topology = decode_topology(payload(1))?;
    let switches = match version {
        1 => decode_switches_v1(payload(2))?,
        _ => decode_switches(payload(2))?,
    };
    let connections = decode_registry(payload(3))?;
    let health = decode_health(payload(4))?;
    let counters = decode_counters(payload(5))?;
    Ok(SnapshotDoc {
        meta,
        topology,
        state: EngineState {
            policy,
            reroute_budget,
            next_id,
            draining,
            health,
            switches,
            connections,
            counters,
        },
    })
}

type MetaFields = (SnapMeta, CdvPolicy, u64, u64, bool);

fn decode_meta(bytes: &[u8]) -> Result<MetaFields, SnapError> {
    let mut dec = Dec::new(bytes);
    let origin = dec.string()?;
    let policy = match dec.u8()? {
        0 => CdvPolicy::Hard,
        1 => CdvPolicy::SoftSqrt,
        _ => return Err(SnapError::BadPayload("unknown CDV policy tag")),
    };
    let reroute_budget = dec.u64()?;
    let next_id = dec.u64()?;
    let draining = dec.flag()?;
    dec.expect_end()?;
    Ok((
        SnapMeta { origin },
        policy,
        reroute_budget,
        next_id,
        draining,
    ))
}

fn decode_topology(bytes: &[u8]) -> Result<TopologySpec, SnapError> {
    let mut dec = Dec::new(bytes);
    let node_count = dec.u32()?;
    let node_count = dec.check_count(node_count, 5)?;
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let is_switch = dec.flag()?;
        let name = dec.string()?;
        nodes.push((is_switch, name));
    }
    let link_count = dec.u32()?;
    let link_count = dec.check_count(link_count, 4 + 4 + 32)?;
    let mut links = Vec::with_capacity(link_count);
    for _ in 0..link_count {
        let from = dec.u32()?;
        let to = dec.u32()?;
        let capacity = dec.ratio()?;
        links.push((from, to, capacity));
    }
    dec.expect_end()?;
    Ok(TopologySpec { nodes, links })
}

fn decode_config(dec: &mut Dec<'_>) -> Result<SwitchConfig, SnapError> {
    let levels = dec.u8()?;
    let mut bounds = Vec::with_capacity(dec.check_count(u32::from(levels), 32)?);
    for _ in 0..levels {
        bounds.push(dec.time()?);
    }
    let config = SwitchConfig::with_bounds(bounds)
        .map_err(|_| SnapError::BadPayload("invalid switch bounds"))?;
    if dec.flag()? {
        let grid = dec.i128()?;
        config
            .with_quantization(grid)
            .map_err(|_| SnapError::BadPayload("invalid quantization grid"))
    } else {
        Ok(config)
    }
}

fn decode_contract(dec: &mut Dec<'_>) -> Result<rtcac_bitstream::TrafficContract, SnapError> {
    use rtcac_bitstream::{CbrParams, TrafficContract, VbrParams};
    match dec.u8()? {
        0 => {
            let pcr = dec.rate()?;
            CbrParams::new(pcr)
                .map(TrafficContract::Cbr)
                .map_err(|_| SnapError::BadPayload("invalid CBR parameters"))
        }
        1 => {
            let pcr = dec.rate()?;
            let scr = dec.rate()?;
            let mbs = dec.u64()?;
            VbrParams::new(pcr, scr, mbs)
                .map(TrafficContract::Vbr)
                .map_err(|_| SnapError::BadPayload("invalid VBR parameters"))
        }
        _ => Err(SnapError::BadPayload("unknown contract tag")),
    }
}

/// The version-2 switches decoder: dedup table first, then legs
/// referencing table indices.
fn decode_switches(bytes: &[u8]) -> Result<Vec<SwitchState>, SnapError> {
    let mut dec = Dec::new(bytes);
    let count = dec.u32()?;
    let count = dec.check_count(count, 4 + 1 + 1 + 8 + 4 + 4)?;
    let mut switches = Vec::with_capacity(count);
    for _ in 0..count {
        let node = NodeId::external(dec.u32()?);
        let config = decode_config(&mut dec)?;
        let epoch = dec.u64()?;
        let table_count = dec.u32()?;
        let table_count = dec.check_count(table_count, 1 + 32 + 32)?;
        let mut table = Vec::with_capacity(table_count);
        for _ in 0..table_count {
            let contract = decode_contract(&mut dec)?;
            let cdv = dec.time()?;
            table.push((contract, cdv));
        }
        let leg_count = dec.u32()?;
        let leg_count = dec.check_count(leg_count, 8 + 4 + 4 + 4 + 1)?;
        let mut legs = Vec::with_capacity(leg_count);
        for _ in 0..leg_count {
            let id = ConnectionId::new(dec.u64()?);
            let entry = dec.u32()? as usize;
            let &(contract, cdv) = table
                .get(entry)
                .ok_or(SnapError::BadPayload("leg references a missing contract"))?;
            let in_link = LinkId::external(dec.u32()?);
            let out_link = LinkId::external(dec.u32()?);
            let priority = Priority::new(dec.u8()?);
            legs.push((
                id,
                ConnectionRequest::new(contract, cdv, in_link, out_link, priority),
            ));
        }
        switches.push(SwitchState {
            node,
            config,
            epoch,
            legs,
        });
    }
    dec.expect_end()?;
    Ok(switches)
}

/// The version-1 switches decoder: full contract on every leg.
fn decode_switches_v1(bytes: &[u8]) -> Result<Vec<SwitchState>, SnapError> {
    let mut dec = Dec::new(bytes);
    let count = dec.u32()?;
    let count = dec.check_count(count, 4 + 1 + 1 + 8 + 4)?;
    let mut switches = Vec::with_capacity(count);
    for _ in 0..count {
        let node = NodeId::external(dec.u32()?);
        let config = decode_config(&mut dec)?;
        let epoch = dec.u64()?;
        let leg_count = dec.u32()?;
        let leg_count = dec.check_count(leg_count, 8 + 1 + 32 + 32 + 4 + 4 + 1)?;
        let mut legs = Vec::with_capacity(leg_count);
        for _ in 0..leg_count {
            let id = ConnectionId::new(dec.u64()?);
            let contract = decode_contract(&mut dec)?;
            let cdv = dec.time()?;
            let in_link = LinkId::external(dec.u32()?);
            let out_link = LinkId::external(dec.u32()?);
            let priority = Priority::new(dec.u8()?);
            legs.push((
                id,
                ConnectionRequest::new(contract, cdv, in_link, out_link, priority),
            ));
        }
        switches.push(SwitchState {
            node,
            config,
            epoch,
            legs,
        });
    }
    dec.expect_end()?;
    Ok(switches)
}

fn decode_registry(bytes: &[u8]) -> Result<Vec<ConnectionState>, SnapError> {
    let mut dec = Dec::new(bytes);
    let count = dec.u32()?;
    let count = dec.check_count(count, 8 + 1 + 4 + 4 + 1 + 32 + 32 + 4)?;
    let mut connections = Vec::with_capacity(count);
    for _ in 0..count {
        let id = ConnectionId::new(dec.u64()?);
        let multicast = dec.flag()?;
        let links = dec.u32_list()?.into_iter().map(LinkId::external).collect();
        let point_count = dec.u32()?;
        let point_count = dec.check_count(point_count, 8)?;
        let mut points = Vec::with_capacity(point_count);
        for _ in 0..point_count {
            let node = NodeId::external(dec.u32()?);
            let link = LinkId::external(dec.u32()?);
            points.push((node, link));
        }
        let priority = Priority::new(dec.u8()?);
        let delay_bound = dec.time()?;
        let guaranteed_delay = dec.time()?;
        let leaf_count = dec.u32()?;
        let leaf_count = dec.check_count(leaf_count, 4 + 32)?;
        let mut per_leaf = Vec::with_capacity(leaf_count);
        for _ in 0..leaf_count {
            let leaf = NodeId::external(dec.u32()?);
            let delay = dec.time()?;
            per_leaf.push((leaf, delay));
        }
        connections.push(ConnectionState {
            id,
            multicast,
            links,
            points,
            priority,
            delay_bound,
            guaranteed_delay,
            per_leaf,
        });
    }
    dec.expect_end()?;
    Ok(connections)
}

fn decode_health(bytes: &[u8]) -> Result<HealthOverlayState, SnapError> {
    let mut dec = Dec::new(bytes);
    let down_links = dec.u32_list()?.into_iter().map(LinkId::external).collect();
    let down_nodes = dec.u32_list()?.into_iter().map(NodeId::external).collect();
    let epoch = dec.u64()?;
    dec.expect_end()?;
    Ok(HealthOverlayState {
        down_links,
        down_nodes,
        epoch,
    })
}

fn decode_counters(bytes: &[u8]) -> Result<EngineStats, SnapError> {
    let mut dec = Dec::new(bytes);
    let counters = EngineStats {
        submitted: dec.u64()?,
        admitted: dec.u64()?,
        rejected: dec.u64()?,
        aborted: dec.u64()?,
        errored: dec.u64()?,
        rerouted: dec.u64()?,
        released: dec.u64()?,
        failed_over: dec.u64()?,
        cache_hits: 0,
        cache_misses: 0,
        mcast_submitted: dec.u64()?,
        mcast_admitted: dec.u64()?,
        mcast_rejected: dec.u64()?,
    };
    dec.expect_end()?;
    Ok(counters)
}
