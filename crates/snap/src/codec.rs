//! Bounds-checked binary primitives for the snapshot format.
//!
//! Same codec discipline as the service wire protocol
//! (`crates/serve/src/wire.rs`): big-endian fixed-width integers, exact
//! `(i128, i128)` rationals re-validated through [`Ratio::new`] on the
//! way in, length-prefixed strings and lists whose counts are checked
//! against the remaining payload *before* any allocation, and a typed
//! error for every way a buffer can lie — decoding never panics.

use rtcac_bitstream::{Rate, Time};
use rtcac_rational::Ratio;

use crate::SnapError;

/// 64-bit FNV-1a over a byte slice — the snapshot's section and
/// whole-file checksum (std-only, deterministic, order-sensitive).
pub fn fnv64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) -> &mut Enc {
        self.buf.push(v);
        self
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn flag(&mut self, v: bool) -> &mut Enc {
        self.u8(u8::from(v))
    }

    /// Appends a big-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Enc {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Enc {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Enc {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `i128`.
    pub fn i128(&mut self, v: i128) -> &mut Enc {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends an exact rational as `(numerator, denominator)`.
    pub fn ratio(&mut self, v: Ratio) -> &mut Enc {
        self.i128(v.numer()).i128(v.denom())
    }

    /// Appends a [`Time`] as its exact rational.
    pub fn time(&mut self, v: Time) -> &mut Enc {
        self.ratio(v.as_ratio())
    }

    /// Appends a [`Rate`] as its exact rational.
    pub fn rate(&mut self, v: Rate) -> &mut Enc {
        self.ratio(v.as_ratio())
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) -> &mut Enc {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
        self
    }

    /// Appends a length-prefixed list of `u32`s.
    pub fn u32_list(&mut self, vs: impl IntoIterator<Item = u32>) -> &mut Enc {
        let start = self.buf.len();
        self.u32(0);
        let mut count: u32 = 0;
        for v in vs {
            self.u32(v);
            count += 1;
        }
        self.buf[start..start + 4].copy_from_slice(&count.to_be_bytes());
        self
    }
}

/// Cursor-based decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Dec<'a> {
        Dec { data, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.at
    }

    /// Fails unless the payload was consumed exactly — trailing bytes
    /// mean a framing bug or a tampered file, not something to ignore.
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::BadPayload("trailing bytes after payload"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.data[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a boolean byte, refusing anything but 0 or 1.
    pub fn flag(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::BadPayload("flag byte is neither 0 nor 1")),
        }
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a big-endian `i128`.
    pub fn i128(&mut self) -> Result<i128, SnapError> {
        Ok(i128::from_be_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads an exact rational, re-validated through [`Ratio::new`] so
    /// a forged zero denominator (or any non-canonical encoding) is a
    /// typed error, not a later arithmetic surprise.
    pub fn ratio(&mut self) -> Result<Ratio, SnapError> {
        let numer = self.i128()?;
        let denom = self.i128()?;
        Ratio::new(numer, denom).map_err(|_| SnapError::BadPayload("invalid rational"))
    }

    /// Reads a [`Time`].
    pub fn time(&mut self) -> Result<Time, SnapError> {
        Ok(Time::new(self.ratio()?))
    }

    /// Reads a [`Rate`].
    pub fn rate(&mut self) -> Result<Rate, SnapError> {
        Ok(Rate::new(self.ratio()?))
    }

    /// Reads a length-prefixed UTF-8 string, validating the length
    /// against the remaining payload before allocating.
    pub fn string(&mut self) -> Result<String, SnapError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(SnapError::Truncated {
                needed: len,
                remaining: self.remaining(),
            });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::BadPayload("invalid UTF-8"))
    }

    /// Validates a decoded element count against the remaining payload
    /// (each element needs at least `min_size` bytes) *before* the
    /// caller allocates — a forged count cannot force a huge `Vec`.
    pub fn check_count(&self, count: u32, min_size: usize) -> Result<usize, SnapError> {
        let count = count as usize;
        if count.saturating_mul(min_size) > self.remaining() {
            return Err(SnapError::Truncated {
                needed: count * min_size,
                remaining: self.remaining(),
            });
        }
        Ok(count)
    }

    /// Reads a length-prefixed list of `u32`s.
    pub fn u32_list(&mut self) -> Result<Vec<u32>, SnapError> {
        let count = self.u32()?;
        let count = self.check_count(count, 4)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.u32()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_rational::ratio;

    #[test]
    fn roundtrip_primitives() {
        let mut enc = Enc::new();
        enc.u8(7)
            .flag(true)
            .u16(513)
            .u32(70_000)
            .u64(1 << 40)
            .i128(-5)
            .ratio(ratio(22, 7))
            .string("hello")
            .u32_list([3, 1, 4]);
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert!(dec.flag().unwrap());
        assert_eq!(dec.u16().unwrap(), 513);
        assert_eq!(dec.u32().unwrap(), 70_000);
        assert_eq!(dec.u64().unwrap(), 1 << 40);
        assert_eq!(dec.i128().unwrap(), -5);
        assert_eq!(dec.ratio().unwrap(), ratio(22, 7));
        assert_eq!(dec.string().unwrap(), "hello");
        assert_eq!(dec.u32_list().unwrap(), vec![3, 1, 4]);
        dec.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_typed() {
        let mut dec = Dec::new(&[1, 2]);
        assert!(matches!(dec.u32(), Err(SnapError::Truncated { .. })));
    }

    #[test]
    fn forged_counts_refused_before_allocation() {
        let mut enc = Enc::new();
        enc.u32(u32::MAX); // list claims 4 billion elements
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes);
        assert!(matches!(dec.u32_list(), Err(SnapError::Truncated { .. })));
    }

    #[test]
    fn zero_denominator_refused() {
        let mut enc = Enc::new();
        enc.i128(1).i128(0);
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.ratio(), Err(SnapError::BadPayload("invalid rational")));
    }

    #[test]
    fn fnv64_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
    }
}
