//! High-level snapshot operations: capture, restore, atomic file I/O,
//! inspect and diff.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use rtcac_engine::{AdmissionEngine, EngineState};
use rtcac_net::Topology;

use crate::format::{self, SectionInfo, SnapMeta, SnapshotDoc, TopologySpec};
use crate::SnapError;

/// Captures a consistent snapshot of a live engine (all shards locked
/// in ascending node order for the cut) tagged with an origin label.
pub fn snapshot_engine(engine: &AdmissionEngine, origin: &str) -> SnapshotDoc {
    SnapshotDoc {
        meta: SnapMeta {
            origin: origin.to_string(),
        },
        topology: TopologySpec::of(engine.topology()),
        state: engine.export_state(),
    }
}

/// Builds a fresh engine from a snapshot. The topology is rebuilt from
/// the snapshot's own topology section, so the file is self-contained.
///
/// # Errors
///
/// Returns [`SnapError::Refused`] (or a payload error) when the
/// snapshot is internally inconsistent or fails the post-rebuild
/// guarantee and orphan audits — in which case no engine is produced.
pub fn restore_engine(doc: &SnapshotDoc) -> Result<AdmissionEngine, SnapError> {
    let topology = doc.topology.build()?;
    Ok(AdmissionEngine::from_state(topology, &doc.state)?)
}

/// As [`restore_engine`], but recording metrics into an explicit
/// observability registry.
pub fn restore_engine_with_registry(
    doc: &SnapshotDoc,
    registry: Arc<rtcac_obs::Registry>,
) -> Result<AdmissionEngine, SnapError> {
    let topology = doc.topology.build()?;
    Ok(AdmissionEngine::from_state_with_registry(
        topology, &doc.state, registry,
    )?)
}

/// Restores a snapshot **into** a running engine in place (the serve
/// warm-restart path). The snapshot's topology must match the engine's;
/// validation runs on a throwaway rebuild first, so on error the live
/// engine is untouched.
///
/// # Errors
///
/// Returns [`SnapError::Refused`] on topology mismatch or any
/// validation failure.
pub fn adopt_into(engine: &AdmissionEngine, doc: &SnapshotDoc) -> Result<(), SnapError> {
    if !doc.topology.matches(engine.topology()) {
        return Err(SnapError::Refused(
            "snapshot topology does not match the serving topology".into(),
        ));
    }
    Ok(engine.adopt_state(&doc.state)?)
}

/// Encodes a snapshot to container bytes.
pub fn encode(doc: &SnapshotDoc) -> Vec<u8> {
    format::encode(doc)
}

/// Decodes and fully verifies container bytes.
///
/// # Errors
///
/// Any [`SnapError`] decode variant; never panics on hostile input.
pub fn decode(bytes: &[u8]) -> Result<SnapshotDoc, SnapError> {
    format::decode(bytes)
}

/// Reads and decodes a snapshot file (size-capped before reading).
///
/// # Errors
///
/// [`SnapError::Io`] on filesystem failure, otherwise decode errors.
pub fn load_file(path: &Path) -> Result<SnapshotDoc, SnapError> {
    decode(&read_capped(path)?)
}

/// Writes a snapshot atomically: encode to a sibling temp file, fsync,
/// then rename over the target and fsync the parent directory (Unix),
/// so the rename itself survives power loss. A crash mid-write leaves
/// either the old snapshot or none — never a torn file. On non-Unix
/// platforms rename durability is best-effort: the file contents are
/// synced, but the directory entry may revert on power loss.
///
/// # Errors
///
/// [`SnapError::Io`] on any filesystem failure. Returns the encoded
/// size in bytes on success.
pub fn save_atomic(doc: &SnapshotDoc, path: &Path) -> Result<u64, SnapError> {
    let bytes = encode(doc);
    let tmp = temp_sibling(path);
    let result = (|| -> Result<(), SnapError> {
        {
            use std::io::Write as _;
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        // The rename is only durable once the new directory entry is on
        // disk; without this a just-written snapshot can silently
        // revert to the previous one after power loss.
        #[cfg(unix)]
        {
            let parent = match path.parent() {
                Some(p) if !p.as_os_str().is_empty() => p,
                _ => Path::new("."),
            };
            fs::File::open(parent)?.sync_all()?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result.map(|()| bytes.len() as u64)
}

/// A human-readable report of a snapshot file's container structure and
/// state summary, without restoring anything.
///
/// # Errors
///
/// I/O and decode errors; a verifiable header with a corrupt payload
/// still reports the header before failing.
pub fn inspect(path: &Path) -> Result<String, SnapError> {
    let bytes = read_capped(path)?;
    let (version, sections) = format::parse_header(&bytes)?;
    let mut out = String::new();
    push(&mut out, format_args!("snapshot {}", path.display()));
    push(
        &mut out,
        format_args!(
            "  container: magic RTSN, version {version}, {} bytes",
            bytes.len()
        ),
    );
    for s in &sections {
        push(
            &mut out,
            format_args!(
                "  section {} ({}): offset {}, {} bytes, fnv64 {:016x}",
                s.id, s.name, s.offset, s.len, s.checksum
            ),
        );
    }
    let doc = format::decode(&bytes)?;
    push(&mut out, format_args!("  origin: {}", doc.meta.origin));
    push(
        &mut out,
        format_args!(
            "  topology: {} node(s), {} link(s)",
            doc.topology.nodes.len(),
            doc.topology.links.len()
        ),
    );
    push(
        &mut out,
        format_args!(
            "  state: {} switch shard(s), {} leg(s), {} connection(s), next id {}, draining {}",
            doc.state.switches.len(),
            doc.state.total_legs(),
            doc.state.connections.len(),
            doc.state.next_id,
            doc.state.draining
        ),
    );
    push(
        &mut out,
        format_args!(
            "  health: {} down link(s), {} down node(s), epoch {}",
            doc.state.health.down_links.len(),
            doc.state.health.down_nodes.len(),
            doc.state.health.epoch
        ),
    );
    push(
        &mut out,
        format_args!(
            "  counters: submitted {}, admitted {}, rejected {}, released {}",
            doc.state.counters.submitted,
            doc.state.counters.admitted,
            doc.state.counters.rejected,
            doc.state.counters.released
        ),
    );
    Ok(out)
}

/// Compares two snapshot files and describes the differences (empty
/// string when byte-identical state).
///
/// # Errors
///
/// I/O and decode errors from either file.
pub fn diff(a_path: &Path, b_path: &Path) -> Result<String, SnapError> {
    let a = load_file(a_path)?;
    let b = load_file(b_path)?;
    let mut out = String::new();
    if a.meta.origin != b.meta.origin {
        push(
            &mut out,
            format_args!("origin: {} -> {}", a.meta.origin, b.meta.origin),
        );
    }
    if a.topology != b.topology {
        push(
            &mut out,
            format_args!(
                "topology: {} node(s)/{} link(s) -> {} node(s)/{} link(s)",
                a.topology.nodes.len(),
                a.topology.links.len(),
                b.topology.nodes.len(),
                b.topology.links.len()
            ),
        );
    }
    diff_state(&mut out, &a.state, &b.state);
    Ok(out)
}

fn diff_state(out: &mut String, a: &EngineState, b: &EngineState) {
    if a.policy != b.policy {
        push(
            out,
            format_args!("policy: {:?} -> {:?}", a.policy, b.policy),
        );
    }
    if a.next_id != b.next_id {
        push(out, format_args!("next id: {} -> {}", a.next_id, b.next_id));
    }
    if a.draining != b.draining {
        push(
            out,
            format_args!("draining: {} -> {}", a.draining, b.draining),
        );
    }
    if a.health != b.health {
        push(
            out,
            format_args!(
                "health: {}/{} down, epoch {} -> {}/{} down, epoch {}",
                a.health.down_links.len(),
                a.health.down_nodes.len(),
                a.health.epoch,
                b.health.down_links.len(),
                b.health.down_nodes.len(),
                b.health.epoch
            ),
        );
    }
    let a_ids: std::collections::BTreeSet<u64> = a.connections.iter().map(|c| c.id.raw()).collect();
    let b_ids: std::collections::BTreeSet<u64> = b.connections.iter().map(|c| c.id.raw()).collect();
    for id in a_ids.difference(&b_ids) {
        push(out, format_args!("connection vc{id}: released"));
    }
    for id in b_ids.difference(&a_ids) {
        push(out, format_args!("connection vc{id}: admitted"));
    }
    for (sa, sb) in a.switches.iter().zip(&b.switches) {
        if sa.node == sb.node && (sa.epoch != sb.epoch || sa.legs.len() != sb.legs.len()) {
            push(
                out,
                format_args!(
                    "switch n{}: epoch {} -> {}, {} -> {} leg(s)",
                    sa.node.index(),
                    sa.epoch,
                    sb.epoch,
                    sa.legs.len(),
                    sb.legs.len()
                ),
            );
        }
    }
    if a.counters != b.counters {
        push(
            out,
            format_args!(
                "counters: submitted {} -> {}, admitted {} -> {}, released {} -> {}",
                a.counters.submitted,
                b.counters.submitted,
                a.counters.admitted,
                b.counters.admitted,
                a.counters.released,
                b.counters.released
            ),
        );
    }
}

/// Parses just the container header of a snapshot file — used by
/// `inspect`-style tooling that must not decode payloads.
///
/// # Errors
///
/// I/O and header/checksum errors.
pub fn sections_of(path: &Path) -> Result<Vec<SectionInfo>, SnapError> {
    format::parse_sections(&read_capped(path)?)
}

/// Round-trip helper: restores a snapshot into a fresh engine and
/// re-captures it, returning the second snapshot's bytes. Equal input
/// and output bytes prove the format is lossless for the given state.
///
/// # Errors
///
/// Restore errors from [`restore_engine`].
pub fn recapture(doc: &SnapshotDoc) -> Result<Vec<u8>, SnapError> {
    let engine = restore_engine(doc)?;
    Ok(encode(&snapshot_engine(&engine, &doc.meta.origin)))
}

fn read_capped(path: &Path) -> Result<Vec<u8>, SnapError> {
    let len = fs::metadata(path)?.len();
    if len > format::MAX_SNAPSHOT {
        return Err(SnapError::Oversized {
            len,
            max: format::MAX_SNAPSHOT,
        });
    }
    Ok(fs::read(path)?)
}

fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "snapshot".into());
    name.push(".tmp");
    path.with_file_name(name)
}

fn push(out: &mut String, args: std::fmt::Arguments<'_>) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "{args}");
}

/// Rebuilds a [`Topology`] from a snapshot without restoring state —
/// what a cold-booting server uses to know what to serve.
///
/// # Errors
///
/// [`SnapError::BadPayload`] on an invalid topology section.
pub fn topology_of(doc: &SnapshotDoc) -> Result<Topology, SnapError> {
    doc.topology.build()
}
