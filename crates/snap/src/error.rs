//! Snapshot error type: every way a snapshot can fail to encode,
//! decode, verify or restore — always a typed error, never a panic.

use core::fmt;

/// Decode, verification and restore failures.
///
/// Restores are all-or-nothing: when any variant is returned, no engine
/// (or no part of a pre-existing engine) has been touched.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapError {
    /// Filesystem failure (message carries the `std::io::Error` text).
    Io(String),
    /// The file does not start with the `RTSN` magic.
    BadMagic,
    /// The format version is newer than this build understands —
    /// forward-refusing, never best-effort decoding.
    UnsupportedVersion {
        /// The version the file claims.
        got: u16,
        /// The newest version this build can read.
        supported: u16,
    },
    /// The payload ended before a field was complete.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// The file is larger than the decoder is willing to read.
    Oversized {
        /// The offending size in bytes.
        len: u64,
        /// The acceptance limit.
        max: u64,
    },
    /// The section directory is malformed (bad id, overlapping or
    /// out-of-bounds extent, duplicate or missing section).
    BadSection(&'static str),
    /// A stored checksum does not match the bytes it covers.
    ChecksumMismatch {
        /// What the checksum covered (`"file"` or a section name).
        over: &'static str,
    },
    /// A field decoded but its value is invalid (context message).
    BadPayload(&'static str),
    /// The decoded snapshot cannot be restored: inconsistent with the
    /// target topology, or it failed the post-rebuild guarantee /
    /// orphaned-reservation audit. Nothing was loaded.
    Refused(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::UnsupportedVersion { got, supported } => write!(
                f,
                "snapshot format version {got} is newer than supported version {supported}"
            ),
            SnapError::Truncated { needed, remaining } => write!(
                f,
                "snapshot truncated: needed {needed} byte(s), {remaining} left"
            ),
            SnapError::Oversized { len, max } => {
                write!(f, "snapshot of {len} byte(s) exceeds the {max}-byte limit")
            }
            SnapError::BadSection(why) => write!(f, "bad section table: {why}"),
            SnapError::ChecksumMismatch { over } => {
                write!(f, "checksum mismatch over {over}")
            }
            SnapError::BadPayload(why) => write!(f, "bad snapshot payload: {why}"),
            SnapError::Refused(why) => write!(f, "snapshot restore refused: {why}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> SnapError {
        SnapError::Io(e.to_string())
    }
}

impl From<rtcac_engine::EngineError> for SnapError {
    fn from(e: rtcac_engine::EngineError) -> SnapError {
        SnapError::Refused(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let cases = [
            SnapError::Io("gone".into()),
            SnapError::BadMagic,
            SnapError::UnsupportedVersion {
                got: 9,
                supported: 1,
            },
            SnapError::Truncated {
                needed: 8,
                remaining: 3,
            },
            SnapError::Oversized {
                len: 1 << 40,
                max: 1 << 28,
            },
            SnapError::BadSection("overlap"),
            SnapError::ChecksumMismatch { over: "registry" },
            SnapError::BadPayload("zero denominator"),
            SnapError::Refused("orphans".into()),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
