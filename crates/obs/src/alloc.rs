//! Process-wide heap accounting counters.
//!
//! The counters live here — in the crate everything already depends on
//! — so any component can *read* live heap figures, while the actual
//! `#[global_allocator]` wrapper that *feeds* them lives in
//! `rtcac-bench` (it needs `unsafe` for the `GlobalAlloc` impl, which
//! this crate forbids). A binary that wants the numbers installs the
//! bench allocator in its `main.rs`; everything else sees zeros, and
//! every recorder below is a single relaxed atomic op, safe on the
//! allocation hot path.

use std::sync::atomic::{AtomicU64, Ordering};

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Records `bytes` newly allocated. Called by the counting allocator on
/// every `alloc`; must not allocate itself.
#[inline]
pub fn note_alloc(bytes: usize) {
    LIVE_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Records `bytes` freed. Called by the counting allocator on every
/// `dealloc`; must not allocate itself.
#[inline]
pub fn note_dealloc(bytes: usize) {
    LIVE_BYTES.fetch_sub(bytes as u64, Ordering::Relaxed);
}

/// Bytes currently allocated and not yet freed, as seen by the counting
/// allocator. Zero when no counting allocator is installed.
pub fn alloc_live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Cumulative number of allocations since process start. Zero when no
/// counting allocator is installed.
pub fn alloc_count() -> u64 {
    TOTAL_ALLOCS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorders_balance() {
        // Other tests in the process never call the recorders (no
        // counting allocator is installed under `cargo test`), so the
        // deltas observed here are exactly ours.
        let live0 = alloc_live_bytes();
        let count0 = alloc_count();
        note_alloc(128);
        note_alloc(64);
        assert_eq!(alloc_live_bytes() - live0, 192);
        assert_eq!(alloc_count() - count0, 2);
        note_dealloc(64);
        note_dealloc(128);
        assert_eq!(alloc_live_bytes(), live0);
    }
}
