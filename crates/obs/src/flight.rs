//! The flight recorder: an always-on, bounded black box dumped on
//! anomaly.
//!
//! A Prometheus scrape tells you what the counters are *now*; when the
//! orphan gauge goes nonzero at 03:12 the question is what the system
//! was doing in the thirty seconds *before*. The [`FlightRecorder`]
//! keeps that answer ready at all times with bounded memory: a ring of
//! recent [`TickDelta`]s (fed by the [`Sampler`](crate::series::Sampler)
//! or explicit calls), and on a trigger it captures the event ring,
//! recent span trees and gauge levels and writes everything to one
//! self-verifying binary file.
//!
//! # Triggers
//!
//! | trigger                         | source                          |
//! |---------------------------------|---------------------------------|
//! | orphan gauge > 0                | per-tick check or engine hook   |
//! | guarantee-audit failure         | engine anomaly hook             |
//! | lock-hold watchdog              | per-tick check or engine hook   |
//! | resident-bytes jump             | per-tick check                  |
//! | panic                           | [`FlightRecorder::install_panic_hook`] |
//! | explicit `DUMP` wire op / CLI   | [`FlightRecorder::force_dump`]  |
//!
//! Every trigger reason is *once-latched* (default: one dump per reason
//! per process, [`FlightConfig::max_dumps_per_reason`]) so a persistent
//! anomaly produces one black box, not a disk full of identical ones;
//! `force_dump` bypasses the latch.
//!
//! # Container (`.rtfr`)
//!
//! Same discipline as the `rtcac-snap` container (`RTSN`), which this
//! crate cannot depend on (snap → engine → obs):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "RTFR"
//! 4       2     format version (u16 BE) — forward-refusing
//! 6       1     section count (5)
//! 7       25×N  directory: id u8, offset u64, len u64, fnv64 u64
//! …       …     payloads (contiguous, directory order)
//! end-8   8     whole-file FNV-1a 64
//! ```
//!
//! Sections: 1 meta, 2 series (the tick ring), 3 events, 4 spans,
//! 5 gauges. A reader refuses unknown versions and any checksum
//! mismatch — a corrupted black box must say so, not half-render.
//!
//! Dumps are written atomically (temp file in the target directory,
//! fsync, rename) so a crash mid-dump never leaves a torn `.rtfr`.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::registry::{MetricId, Registry};
use crate::series::TickDelta;
use crate::trace::{SpanId, SpanRecord, TraceId};
use crate::{EventsSnapshot, HistogramSnapshot, Snapshot, BUCKET_COUNT};

/// The container magic.
pub const MAGIC: [u8; 4] = *b"RTFR";
/// The only format version this build reads and writes.
pub const VERSION: u16 = 1;
/// Decode refuses files larger than this.
pub const MAX_DUMP: u64 = 64 << 20;

const SECTION_IDS: [(u8, &str); 5] = [
    (1, "meta"),
    (2, "series"),
    (3, "events"),
    (4, "spans"),
    (5, "gauges"),
];

/// Everything that can be wrong with a flight-dump file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightError {
    /// The file does not start with `RTFR`.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the file.
        got: u16,
        /// Newest version this build reads.
        supported: u16,
    },
    /// A section or whole-file checksum did not match.
    ChecksumMismatch {
        /// Which checksum failed (`"file"` or a section name).
        over: &'static str,
    },
    /// The file ended before a required field.
    Truncated,
    /// A structurally invalid payload.
    BadPayload(&'static str),
    /// The file exceeds [`MAX_DUMP`].
    Oversized,
}

impl std::fmt::Display for FlightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlightError::BadMagic => write!(f, "not a flight dump (bad magic)"),
            FlightError::UnsupportedVersion { got, supported } => write!(
                f,
                "flight dump version {got} is newer than supported {supported}"
            ),
            FlightError::ChecksumMismatch { over } => {
                write!(f, "flight dump checksum mismatch over {over}")
            }
            FlightError::Truncated => write!(f, "flight dump truncated"),
            FlightError::BadPayload(what) => write!(f, "flight dump invalid: {what}"),
            FlightError::Oversized => write!(f, "flight dump exceeds {MAX_DUMP} bytes"),
        }
    }
}

impl std::error::Error for FlightError {}

// ── private codec (mirrors crates/snap/src/codec.rs discipline) ─────

/// 64-bit FNV-1a — section and whole-file checksum.
fn fnv64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn finish(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) -> &mut Enc {
        self.buf.push(v);
        self
    }

    fn flag(&mut self, v: bool) -> &mut Enc {
        self.u8(u8::from(v))
    }

    fn u16(&mut self, v: u16) -> &mut Enc {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    fn u32(&mut self, v: u32) -> &mut Enc {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    fn u64(&mut self, v: u64) -> &mut Enc {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    fn string(&mut self, v: &str) -> &mut Enc {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
        self
    }
}

struct Dec<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> Dec<'a> {
        Dec { data, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FlightError> {
        let end = self.at.checked_add(n).ok_or(FlightError::Truncated)?;
        if end > self.data.len() {
            return Err(FlightError::Truncated);
        }
        let slice = &self.data[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FlightError> {
        Ok(self.take(1)?[0])
    }

    fn flag(&mut self) -> Result<bool, FlightError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(FlightError::BadPayload("flag must be 0 or 1")),
        }
    }

    fn u16(&mut self) -> Result<u16, FlightError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, FlightError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FlightError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, FlightError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FlightError::BadPayload("string is not UTF-8"))
    }

    /// Validates a declared element count against the bytes actually
    /// remaining (`min_size` per element) before any allocation.
    fn check_count(&self, count: u32, min_size: usize) -> Result<usize, FlightError> {
        let count = count as usize;
        let needed = count.checked_mul(min_size).ok_or(FlightError::Truncated)?;
        if needed > self.data.len() - self.at {
            return Err(FlightError::Truncated);
        }
        Ok(count)
    }

    fn expect_end(&self) -> Result<(), FlightError> {
        if self.at == self.data.len() {
            Ok(())
        } else {
            Err(FlightError::BadPayload("trailing bytes in section"))
        }
    }
}

fn enc_metric_id(enc: &mut Enc, id: &MetricId) {
    enc.string(id.name());
    enc.u8(id.labels().len() as u8);
    for (k, v) in id.labels() {
        enc.string(k).string(v);
    }
}

fn dec_metric_id(dec: &mut Dec<'_>) -> Result<MetricId, FlightError> {
    let name = dec.string()?;
    let label_count = dec.u8()?;
    let mut labels = Vec::with_capacity(label_count as usize);
    for _ in 0..label_count {
        let k = dec.string()?;
        let v = dec.string()?;
        labels.push((k, v));
    }
    Ok(MetricId::from_parts(name, labels))
}

/// Interns a decoded span/attr name, giving it the `&'static str` the
/// in-memory [`SpanRecord`] shape requires. Deduplicated, so the leak
/// is bounded by the number of *distinct* names ever decoded — a
/// handful in practice ("engine.admit", "reserve", …) — and `decode`
/// is only called from short-lived inspection paths anyway.
fn intern(s: String) -> &'static str {
    static POOL: OnceLock<Mutex<std::collections::BTreeSet<&'static str>>> = OnceLock::new();
    let mut pool = POOL
        .get_or_init(|| Mutex::new(std::collections::BTreeSet::new()))
        .lock()
        .expect("intern pool poisoned");
    match pool.get(s.as_str()) {
        Some(&existing) => existing,
        None => {
            let leaked: &'static str = Box::leak(s.into_boxed_str());
            pool.insert(leaked);
            leaked
        }
    }
}

// ── the dump document ───────────────────────────────────────────────

/// One decoded flight dump: why it fired and what the system was doing.
#[derive(Debug, Clone, Default)]
pub struct FlightDump {
    /// The trigger reason (`"orphans"`, `"lock_hold"`, `"panic"`, …).
    pub reason: String,
    /// Free-form trigger detail.
    pub detail: String,
    /// Dump sequence number within the writing process.
    pub seq: u64,
    /// The tick number during which the trigger fired (the last entry
    /// of `ticks` at capture time).
    pub trigger_tick: u64,
    /// Whether this was a forced dump (wire `DUMP` / CLI) rather than
    /// an anomaly trigger.
    pub forced: bool,
    /// The retained window of per-tick deltas, oldest first.
    pub ticks: Vec<TickDelta>,
    /// The event ring at capture time.
    pub events: EventsSnapshot,
    /// Recent span records at capture time.
    pub spans: Vec<SpanRecord>,
    /// Gauge levels at capture time.
    pub gauges: Vec<(MetricId, u64)>,
}

impl FlightDump {
    /// Encodes the dump into its container bytes.
    pub fn encode(&self) -> Vec<u8> {
        let payloads: Vec<(u8, Vec<u8>)> = vec![
            (1, self.encode_meta()),
            (2, self.encode_series()),
            (3, self.encode_events()),
            (4, self.encode_spans()),
            (5, self.encode_gauges()),
        ];
        let mut header = Enc::default();
        for &b in &MAGIC {
            header.u8(b);
        }
        header.u16(VERSION);
        header.u8(payloads.len() as u8);
        let dir_start = 4 + 2 + 1;
        let mut offset = (dir_start + payloads.len() * 25) as u64;
        for (id, payload) in &payloads {
            header
                .u8(*id)
                .u64(offset)
                .u64(payload.len() as u64)
                .u64(fnv64(payload));
            offset += payload.len() as u64;
        }
        let mut bytes = header.finish();
        for (_, payload) in &payloads {
            bytes.extend_from_slice(payload);
        }
        let file_sum = fnv64(&bytes);
        bytes.extend_from_slice(&file_sum.to_be_bytes());
        bytes
    }

    fn encode_meta(&self) -> Vec<u8> {
        let mut enc = Enc::default();
        enc.string(&self.reason)
            .string(&self.detail)
            .u64(self.seq)
            .u64(self.trigger_tick)
            .flag(self.forced);
        enc.finish()
    }

    fn encode_series(&self) -> Vec<u8> {
        let mut enc = Enc::default();
        enc.u32(self.ticks.len() as u32);
        for tick in &self.ticks {
            enc.u64(tick.tick).u64(tick.elapsed_ms);
            enc.u32(tick.counters.len() as u32);
            for (id, v) in &tick.counters {
                enc_metric_id(&mut enc, id);
                enc.u64(*v);
            }
            enc.u32(tick.gauges.len() as u32);
            for (id, v) in &tick.gauges {
                enc_metric_id(&mut enc, id);
                enc.u64(*v);
            }
            enc.u32(tick.histograms.len() as u32);
            for (id, h) in &tick.histograms {
                enc_metric_id(&mut enc, id);
                // Sparse buckets: log2 deltas are almost all zero.
                let nonzero: Vec<(u8, u64)> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(i, &c)| (i as u8, c))
                    .collect();
                enc.u8(nonzero.len() as u8);
                for (i, c) in nonzero {
                    enc.u8(i).u64(c);
                }
                enc.u64(h.sum).u64(h.max);
            }
        }
        enc.finish()
    }

    fn encode_events(&self) -> Vec<u8> {
        let mut enc = Enc::default();
        enc.u64(self.events.recorded)
            .u64(self.events.dropped)
            .u64(self.events.evicted);
        enc.u32(self.events.events.len() as u32);
        for e in &self.events.events {
            enc.u64(e.seq).string(e.name).string(&e.detail);
        }
        enc.finish()
    }

    fn encode_spans(&self) -> Vec<u8> {
        let mut enc = Enc::default();
        enc.u32(self.spans.len() as u32);
        for s in &self.spans {
            enc.u64(s.trace.get()).u64(s.span.get());
            match s.parent {
                Some(p) => enc.flag(true).u64(p.get()),
                None => enc.flag(false),
            };
            enc.string(s.name).u64(s.begin_ns).u64(s.end_ns);
            enc.u8(s.attrs.len() as u8);
            for (k, v) in &s.attrs {
                enc.string(k).string(v);
            }
        }
        enc.finish()
    }

    fn encode_gauges(&self) -> Vec<u8> {
        let mut enc = Enc::default();
        enc.u32(self.gauges.len() as u32);
        for (id, v) in &self.gauges {
            enc_metric_id(&mut enc, id);
            enc.u64(*v);
        }
        enc.finish()
    }

    /// Decodes and fully verifies a flight dump: magic, version,
    /// section directory bounds, per-section checksums, whole-file
    /// checksum, then every payload consumed exactly.
    ///
    /// # Errors
    ///
    /// A [`FlightError`] naming the first thing wrong with the bytes —
    /// a single flipped bit anywhere in the file is refused.
    pub fn decode(bytes: &[u8]) -> Result<FlightDump, FlightError> {
        if bytes.len() as u64 > MAX_DUMP {
            return Err(FlightError::Oversized);
        }
        if bytes.len() < 4 || bytes[..4] != MAGIC {
            return Err(FlightError::BadMagic);
        }
        if bytes.len() < 4 + 2 + 1 + 8 {
            return Err(FlightError::Truncated);
        }
        let mut head = Dec::new(&bytes[4..7]);
        let version = head.u16()?;
        if version != VERSION {
            return Err(FlightError::UnsupportedVersion {
                got: version,
                supported: VERSION,
            });
        }
        let body_end = bytes.len() - 8;
        let stored_sum = u64::from_be_bytes(bytes[body_end..].try_into().unwrap());
        if fnv64(&bytes[..body_end]) != stored_sum {
            return Err(FlightError::ChecksumMismatch { over: "file" });
        }
        let count = head.u8()? as usize;
        if count != SECTION_IDS.len() {
            return Err(FlightError::BadPayload("dump has exactly five sections"));
        }
        let dir_end = 7 + count * 25;
        if dir_end > body_end {
            return Err(FlightError::Truncated);
        }
        let mut dec = Dec::new(&bytes[7..dir_end]);
        let mut payloads = Vec::with_capacity(count);
        let mut expected_offset = dir_end as u64;
        for &(expected_id, name) in &SECTION_IDS {
            let id = dec.u8()?;
            let offset = dec.u64()?;
            let len = dec.u64()?;
            let checksum = dec.u64()?;
            if id != expected_id {
                return Err(FlightError::BadPayload("unknown or out-of-order section"));
            }
            if offset != expected_offset {
                return Err(FlightError::BadPayload("sections must be contiguous"));
            }
            let end = offset
                .checked_add(len)
                .ok_or(FlightError::BadPayload("section extent overflows"))?;
            if end > body_end as u64 {
                return Err(FlightError::BadPayload("section extends past payload"));
            }
            let payload = &bytes[offset as usize..end as usize];
            if fnv64(payload) != checksum {
                return Err(FlightError::ChecksumMismatch { over: name });
            }
            expected_offset = end;
            payloads.push(payload);
        }
        if expected_offset != body_end as u64 {
            return Err(FlightError::BadPayload("payload bytes outside any section"));
        }
        let mut dump = FlightDump::decode_meta(payloads[0])?;
        dump.ticks = FlightDump::decode_series(payloads[1])?;
        dump.events = FlightDump::decode_events(payloads[2])?;
        dump.spans = FlightDump::decode_spans(payloads[3])?;
        dump.gauges = FlightDump::decode_gauges(payloads[4])?;
        Ok(dump)
    }

    fn decode_meta(bytes: &[u8]) -> Result<FlightDump, FlightError> {
        let mut dec = Dec::new(bytes);
        let reason = dec.string()?;
        let detail = dec.string()?;
        let seq = dec.u64()?;
        let trigger_tick = dec.u64()?;
        let forced = dec.flag()?;
        dec.expect_end()?;
        Ok(FlightDump {
            reason,
            detail,
            seq,
            trigger_tick,
            forced,
            ..FlightDump::default()
        })
    }

    fn decode_series(bytes: &[u8]) -> Result<Vec<TickDelta>, FlightError> {
        let mut dec = Dec::new(bytes);
        let tick_count = dec.u32()?;
        let tick_count = dec.check_count(tick_count, 8 + 8 + 4 + 4 + 4)?;
        let mut ticks = Vec::with_capacity(tick_count);
        for _ in 0..tick_count {
            let tick = dec.u64()?;
            let elapsed_ms = dec.u64()?;
            let mut counters = Vec::new();
            let n = dec.u32()?;
            for _ in 0..dec.check_count(n, 4 + 1 + 8)? {
                let id = dec_metric_id(&mut dec)?;
                counters.push((id, dec.u64()?));
            }
            let mut gauges = Vec::new();
            let n = dec.u32()?;
            for _ in 0..dec.check_count(n, 4 + 1 + 8)? {
                let id = dec_metric_id(&mut dec)?;
                gauges.push((id, dec.u64()?));
            }
            let mut histograms = Vec::new();
            let n = dec.u32()?;
            for _ in 0..dec.check_count(n, 4 + 1 + 1 + 8 + 8)? {
                let id = dec_metric_id(&mut dec)?;
                let mut h = HistogramSnapshot::default();
                let nonzero = dec.u8()?;
                for _ in 0..nonzero {
                    let idx = dec.u8()? as usize;
                    if idx >= BUCKET_COUNT {
                        return Err(FlightError::BadPayload("bucket index out of range"));
                    }
                    h.buckets[idx] = dec.u64()?;
                }
                h.count = h.buckets.iter().sum();
                h.sum = dec.u64()?;
                h.max = dec.u64()?;
                histograms.push((id, h));
            }
            ticks.push(TickDelta {
                tick,
                elapsed_ms,
                counters,
                gauges,
                histograms,
            });
        }
        dec.expect_end()?;
        Ok(ticks)
    }

    fn decode_events(bytes: &[u8]) -> Result<EventsSnapshot, FlightError> {
        let mut dec = Dec::new(bytes);
        let mut events = EventsSnapshot {
            recorded: dec.u64()?,
            dropped: dec.u64()?,
            evicted: dec.u64()?,
            ..EventsSnapshot::default()
        };
        let n = dec.u32()?;
        for _ in 0..dec.check_count(n, 8 + 4 + 4)? {
            let seq = dec.u64()?;
            let name = intern(dec.string()?);
            let detail = dec.string()?;
            events.events.push(crate::Event { seq, name, detail });
        }
        dec.expect_end()?;
        Ok(events)
    }

    fn decode_spans(bytes: &[u8]) -> Result<Vec<SpanRecord>, FlightError> {
        let mut dec = Dec::new(bytes);
        let n = dec.u32()?;
        let n = dec.check_count(n, 8 + 8 + 1 + 4 + 8 + 8 + 1)?;
        let mut spans = Vec::with_capacity(n);
        for _ in 0..n {
            let trace = TraceId::new(dec.u64()?);
            let span = SpanId::new(dec.u64()?);
            let parent = if dec.flag()? {
                Some(SpanId::new(dec.u64()?))
            } else {
                None
            };
            let name = intern(dec.string()?);
            let begin_ns = dec.u64()?;
            let end_ns = dec.u64()?;
            if end_ns < begin_ns {
                return Err(FlightError::BadPayload("span ends before it begins"));
            }
            let attr_count = dec.u8()?;
            let mut attrs = Vec::with_capacity(attr_count as usize);
            for _ in 0..attr_count {
                let k = intern(dec.string()?);
                let v = dec.string()?;
                attrs.push((k, v));
            }
            spans.push(SpanRecord {
                trace,
                span,
                parent,
                name,
                begin_ns,
                end_ns,
                attrs,
            });
        }
        dec.expect_end()?;
        Ok(spans)
    }

    fn decode_gauges(bytes: &[u8]) -> Result<Vec<(MetricId, u64)>, FlightError> {
        let mut dec = Dec::new(bytes);
        let n = dec.u32()?;
        let n = dec.check_count(n, 4 + 1 + 8)?;
        let mut gauges = Vec::with_capacity(n);
        for _ in 0..n {
            let id = dec_metric_id(&mut dec)?;
            gauges.push((id, dec.u64()?));
        }
        dec.expect_end()?;
        Ok(gauges)
    }

    /// Renders the dump as a human-readable timeline: the trigger, one
    /// line per retained tick (rates and key gauges), then events and
    /// span trees.
    pub fn render_timeline(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight dump #{} reason={} {}tick {}",
            self.seq,
            self.reason,
            if self.forced { "(forced) " } else { "" },
            self.trigger_tick
        );
        if !self.detail.is_empty() {
            let _ = writeln!(out, "  detail: {}", self.detail);
        }
        let _ = writeln!(out, "timeline ({} ticks):", self.ticks.len());
        for t in &self.ticks {
            let ops = t.counter_total("engine_setups_submitted_total");
            let rejects = t.counter_total("engine_rejections_total");
            let reroutes = t.counter_total("engine_setups_rerouted_total");
            let long_holds = t.counter_total("engine_lock_hold_long_total");
            let orphans = t.gauge("engine_orphaned_reservations").unwrap_or(0);
            let resident = t.gauge("engine_resident_bytes").unwrap_or(0);
            let marker = if t.tick == self.trigger_tick {
                "  << trigger"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  tick {:>6} +{:>5}ms ops={ops} rejects={rejects} reroutes={reroutes} \
                 long_holds={long_holds} orphans={orphans} resident={resident}{marker}",
                t.tick, t.elapsed_ms
            );
        }
        if self.ticks.is_empty() {
            let _ = writeln!(out, "  (no ticks retained — sampler not running?)");
        }
        let _ = writeln!(
            out,
            "events: {} retained ({} recorded, {} dropped, {} evicted)",
            self.events.events.len(),
            self.events.recorded,
            self.events.dropped,
            self.events.evicted
        );
        for e in &self.events.events {
            let _ = writeln!(out, "  [{}] {}: {}", e.seq, e.name, e.detail);
        }
        let _ = writeln!(out, "gauges at capture:");
        for (id, v) in &self.gauges {
            let _ = writeln!(out, "  {id} = {v}");
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "spans ({}):", self.spans.len());
            out.push_str(&crate::render_spans(&self.spans));
        }
        out
    }

    /// Exports the dump's spans as Chrome `trace_event` JSON (load in
    /// `chrome://tracing` or Perfetto).
    pub fn chrome_trace(&self) -> String {
        crate::chrome_trace(&self.spans)
    }
}

// ── the recorder ────────────────────────────────────────────────────

/// Flight-recorder tuning.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Directory dumps are written into (created on first dump).
    pub dir: PathBuf,
    /// How many recent ticks the in-memory ring retains.
    pub capture_ticks: usize,
    /// Once-latch: automatic dumps allowed per distinct trigger reason
    /// (forced dumps are exempt). The default 1 means a persistent
    /// anomaly produces exactly one black box.
    pub max_dumps_per_reason: u64,
    /// Resident-bytes jump trigger: fires when the gauge grows by more
    /// than this factor within one tick…
    pub resident_jump_factor: f64,
    /// …and by at least this many bytes (suppresses startup noise).
    pub resident_jump_floor: u64,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig {
            dir: PathBuf::from("flight"),
            capture_ticks: 32,
            max_dumps_per_reason: 1,
            resident_jump_factor: 1.5,
            resident_jump_floor: 64 << 20,
        }
    }
}

/// Provides recent span records at dump time (wired to the engine's
/// tracer by the host).
pub type SpanProvider = Box<dyn Fn() -> Vec<SpanRecord> + Send + Sync>;

struct RecorderState {
    ticks: std::collections::VecDeque<TickDelta>,
    dumped: BTreeMap<String, u64>,
    last_resident: u64,
    last_orphans: u64,
}

/// The always-on black box. See the [module docs](self) for the trigger
/// matrix and file format.
pub struct FlightRecorder {
    config: FlightConfig,
    registry: Arc<Registry>,
    spans: Mutex<Option<SpanProvider>>,
    state: Mutex<RecorderState>,
    seq: AtomicU64,
    dumps_written: AtomicU64,
    last_path: Mutex<Option<PathBuf>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("dir", &self.config.dir)
            .field("dumps_written", &self.dumps_written.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// A recorder capturing from `registry` into `config.dir`.
    pub fn new(registry: Arc<Registry>, config: FlightConfig) -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder {
            state: Mutex::new(RecorderState {
                ticks: std::collections::VecDeque::with_capacity(config.capture_ticks),
                dumped: BTreeMap::new(),
                last_resident: 0,
                last_orphans: 0,
            }),
            config,
            registry,
            spans: Mutex::new(None),
            seq: AtomicU64::new(0),
            dumps_written: AtomicU64::new(0),
            last_path: Mutex::new(None),
        })
    }

    /// Installs the span provider consulted at dump time.
    pub fn set_span_provider(&self, provider: SpanProvider) {
        *self.spans.lock().expect("span provider poisoned") = Some(provider);
    }

    /// Feeds one tick into the ring and evaluates the per-tick
    /// triggers (orphan gauge, lock-hold watchdog counter, resident
    /// jump). Call from the sampler observer or directly in tests.
    pub fn observe_tick(&self, tick: &TickDelta) {
        let (orphan_edge, long_holds, resident_jump) = {
            let mut state = self.state.lock().expect("recorder state poisoned");
            if state.ticks.len() == self.config.capture_ticks {
                state.ticks.pop_front();
            }
            state.ticks.push_back(tick.clone());
            let orphans = tick.gauge("engine_orphaned_reservations").unwrap_or(0);
            let orphan_edge = orphans > 0 && state.last_orphans == 0;
            state.last_orphans = orphans;
            let long_holds = tick.counter_total("engine_lock_hold_long_total");
            let resident = tick.gauge("engine_resident_bytes").unwrap_or(0);
            let grew = resident.saturating_sub(state.last_resident);
            let resident_jump = state.last_resident > 0
                && grew >= self.config.resident_jump_floor
                && resident as f64 > state.last_resident as f64 * self.config.resident_jump_factor;
            state.last_resident = resident;
            (
                orphan_edge,
                long_holds,
                resident_jump.then_some((grew, resident)),
            )
        };
        if orphan_edge {
            let orphans = tick.gauge("engine_orphaned_reservations").unwrap_or(0);
            self.trigger("orphans", format!("orphan gauge went to {orphans}"));
        }
        if long_holds > 0 {
            self.trigger(
                "lock_hold",
                format!("{long_holds} over-threshold lock holds this tick"),
            );
        }
        if let Some((grew, resident)) = resident_jump {
            self.trigger(
                "resident_jump",
                format!("resident bytes grew {grew} to {resident} in one tick"),
            );
        }
    }

    /// Fires an anomaly trigger. Latched per reason
    /// ([`FlightConfig::max_dumps_per_reason`]); returns the dump path
    /// when one was written, `None` when latched or on I/O failure
    /// (recording must never take the process down).
    pub fn trigger(&self, reason: &str, detail: impl Into<String>) -> Option<PathBuf> {
        {
            let mut state = self.state.lock().expect("recorder state poisoned");
            let count = state.dumped.entry(reason.to_owned()).or_insert(0);
            if *count >= self.config.max_dumps_per_reason {
                return None;
            }
            *count += 1;
        }
        self.write_dump(reason, detail.into(), false).ok()
    }

    /// Writes a dump unconditionally (the `DUMP` wire op and CLI path);
    /// bypasses the once-latch.
    ///
    /// # Errors
    ///
    /// The underlying `std::io::Error` when the dump cannot be written.
    pub fn force_dump(&self, reason: &str, detail: impl Into<String>) -> std::io::Result<PathBuf> {
        self.write_dump(reason, detail.into(), true)
    }

    /// Number of dumps written so far.
    pub fn dumps_written(&self) -> u64 {
        self.dumps_written.load(Ordering::Relaxed)
    }

    /// Path of the most recent dump, if any.
    pub fn last_dump_path(&self) -> Option<PathBuf> {
        self.last_path.lock().expect("last path poisoned").clone()
    }

    /// Captures the current in-memory document without writing it.
    pub fn capture(&self, reason: &str, detail: String, forced: bool) -> FlightDump {
        let snap: Snapshot = self.registry.snapshot();
        let state = self.state.lock().expect("recorder state poisoned");
        let ticks: Vec<TickDelta> = state.ticks.iter().cloned().collect();
        let trigger_tick = ticks.last().map_or(0, |t| t.tick);
        drop(state);
        let spans = self
            .spans
            .lock()
            .expect("span provider poisoned")
            .as_ref()
            .map_or_else(Vec::new, |p| p());
        FlightDump {
            reason: reason.to_owned(),
            detail,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            trigger_tick,
            forced,
            ticks,
            events: snap.events,
            spans,
            gauges: snap.gauges,
        }
    }

    fn write_dump(&self, reason: &str, detail: String, forced: bool) -> std::io::Result<PathBuf> {
        let dump = self.capture(reason, detail, forced);
        let bytes = dump.encode();
        std::fs::create_dir_all(&self.config.dir)?;
        // Filesystem-safe reason slug.
        let slug: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let final_path = self
            .config
            .dir
            .join(format!("flight-{:04}-{slug}.rtfr", dump.seq));
        let tmp_path = self
            .config
            .dir
            .join(format!(".flight-{:04}-{slug}.tmp", dump.seq));
        {
            let mut file = std::fs::File::create(&tmp_path)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp_path, &final_path)?;
        if let Ok(dir) = std::fs::File::open(&self.config.dir) {
            let _ = dir.sync_all();
        }
        self.dumps_written.fetch_add(1, Ordering::Relaxed);
        *self.last_path.lock().expect("last path poisoned") = Some(final_path.clone());
        self.registry
            .events()
            .record("flight_dump", format!("{reason}: {}", final_path.display()));
        Ok(final_path)
    }

    /// Installs a panic hook that dumps (reason `"panic"`) before
    /// delegating to the previous hook. Keeps a weak reference, so the
    /// hook never extends the recorder's lifetime.
    pub fn install_panic_hook(recorder: &Arc<FlightRecorder>) {
        let weak = Arc::downgrade(recorder);
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(recorder) = weak.upgrade() {
                let detail = info
                    .location()
                    .map_or_else(|| "panic".to_owned(), |l| l.to_string());
                let _ = recorder.trigger("panic", detail);
            }
            previous(info);
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::TimeSeries;

    fn registry_with_activity() -> Arc<Registry> {
        let r = Arc::new(Registry::new());
        r.counter("engine_setups_submitted_total").add(100);
        r.counter_with("engine_rejections_total", &[("reason", "qos")])
            .add(3);
        r.gauge("engine_resident_bytes").set(1 << 20);
        r.histogram("engine_reserve_ns").record(1234);
        r.events().record("setup", "conn 1 admitted");
        r
    }

    fn tick_from(r: &Registry, ts: &mut TimeSeries) -> TickDelta {
        ts.observe(&r.snapshot(), 1000).clone()
    }

    #[test]
    fn dump_round_trips_bit_exact() {
        let r = registry_with_activity();
        let mut ts = TimeSeries::new(8);
        let recorder = FlightRecorder::new(
            Arc::clone(&r),
            FlightConfig {
                dir: std::env::temp_dir().join("rtfr-test-unused"),
                ..FlightConfig::default()
            },
        );
        recorder.observe_tick(&tick_from(&r, &mut ts));
        r.counter("engine_setups_submitted_total").add(7);
        recorder.observe_tick(&tick_from(&r, &mut ts));
        recorder.set_span_provider(Box::new(|| {
            vec![SpanRecord {
                trace: TraceId::new(9),
                span: SpanId::new(1),
                parent: None,
                name: "engine.admit",
                begin_ns: 10,
                end_ns: 90,
                attrs: vec![("outcome", "admitted".to_owned())],
            }]
        }));
        let dump = recorder.capture("test", "round trip".to_owned(), true);
        let bytes = dump.encode();
        let decoded = FlightDump::decode(&bytes).expect("decodes");
        assert_eq!(decoded.reason, "test");
        assert_eq!(decoded.detail, "round trip");
        assert!(decoded.forced);
        assert_eq!(decoded.ticks.len(), 2);
        assert_eq!(
            decoded.ticks[1].counter_total("engine_setups_submitted_total"),
            7
        );
        assert_eq!(decoded.spans.len(), 1);
        assert_eq!(decoded.spans[0].name, "engine.admit");
        assert_eq!(decoded.spans[0].attrs[0].1, "admitted");
        assert_eq!(decoded.events.events.len(), 1);
        assert_eq!(decoded.gauges, dump.gauges);
        // Re-encoding the decoded document is byte-identical.
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn every_flipped_bit_is_refused() {
        let r = registry_with_activity();
        let recorder = FlightRecorder::new(Arc::clone(&r), FlightConfig::default());
        let mut ts = TimeSeries::new(4);
        recorder.observe_tick(&tick_from(&r, &mut ts));
        let bytes = recorder.capture("x", String::new(), true).encode();
        assert!(FlightDump::decode(&bytes).is_ok());
        // Flip one bit at a spread of offsets covering header,
        // directory, payloads and trailer.
        for offset in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[offset] ^= 0x10;
            assert!(
                FlightDump::decode(&bad).is_err(),
                "bit flip at {offset} was accepted"
            );
        }
        // Truncations are refused too.
        for cut in [0, 3, 6, bytes.len() / 2, bytes.len() - 1] {
            assert!(FlightDump::decode(&bytes[..cut]).is_err());
        }
        // Future versions are refused, not guessed at.
        let mut future = bytes.clone();
        future[5] = 0xFF;
        // (fix the file checksum so only the version differs)
        let body_end = future.len() - 8;
        let sum = fnv64(&future[..body_end]);
        future[body_end..].copy_from_slice(&sum.to_be_bytes());
        assert!(matches!(
            FlightDump::decode(&future),
            Err(FlightError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn triggers_latch_per_reason_and_dump_to_disk() {
        let dir = std::env::temp_dir().join(format!("rtfr-latch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = registry_with_activity();
        let recorder = FlightRecorder::new(
            Arc::clone(&r),
            FlightConfig {
                dir: dir.clone(),
                ..FlightConfig::default()
            },
        );
        let mut ts = TimeSeries::new(4);
        recorder.observe_tick(&tick_from(&r, &mut ts));
        // First trigger dumps, repeat of the same reason is latched.
        let first = recorder.trigger("orphans", "gauge=2");
        assert!(first.is_some());
        assert!(recorder.trigger("orphans", "gauge=2 again").is_none());
        // A different reason still dumps once.
        assert!(recorder.trigger("lock_hold", "1 long hold").is_some());
        assert!(recorder.trigger("lock_hold", "again").is_none());
        // Forced dumps bypass the latch.
        assert!(recorder.force_dump("orphans", "manual").is_ok());
        assert_eq!(recorder.dumps_written(), 3);
        let path = first.unwrap();
        let decoded = FlightDump::decode(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(decoded.reason, "orphans");
        let timeline = decoded.render_timeline();
        assert!(timeline.contains("reason=orphans"));
        assert!(timeline.contains("<< trigger"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tick_triggers_fire_from_metrics() {
        let dir = std::env::temp_dir().join(format!("rtfr-tick-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = Arc::new(Registry::new());
        let orphans = r.gauge("engine_orphaned_reservations");
        let long = r.counter("engine_lock_hold_long_total");
        let recorder = FlightRecorder::new(
            Arc::clone(&r),
            FlightConfig {
                dir: dir.clone(),
                ..FlightConfig::default()
            },
        );
        let mut ts = TimeSeries::new(8);
        recorder.observe_tick(&tick_from(&r, &mut ts));
        assert_eq!(recorder.dumps_written(), 0, "clean ticks never dump");
        // Orphan gauge going nonzero fires once.
        orphans.set(3);
        recorder.observe_tick(&tick_from(&r, &mut ts));
        assert_eq!(recorder.dumps_written(), 1);
        orphans.set(4);
        recorder.observe_tick(&tick_from(&r, &mut ts));
        assert_eq!(recorder.dumps_written(), 1, "latched");
        // Watchdog counter increments fire the lock_hold reason.
        long.inc();
        recorder.observe_tick(&tick_from(&r, &mut ts));
        assert_eq!(recorder.dumps_written(), 2);
        let dump = FlightDump::decode(&std::fs::read(recorder.last_dump_path().unwrap()).unwrap())
            .unwrap();
        assert_eq!(dump.reason, "lock_hold");
        // The timeline names the trigger tick.
        assert!(dump
            .render_timeline()
            .contains(&format!("tick {}", dump.trigger_tick)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resident_jump_trigger_needs_factor_and_floor() {
        let r = Arc::new(Registry::new());
        let mem = r.gauge("engine_resident_bytes");
        let recorder = FlightRecorder::new(
            Arc::clone(&r),
            FlightConfig {
                dir: std::env::temp_dir().join(format!("rtfr-jump-{}", std::process::id())),
                resident_jump_factor: 1.5,
                resident_jump_floor: 1 << 20,
                ..FlightConfig::default()
            },
        );
        let mut ts = TimeSeries::new(8);
        mem.set(10 << 20);
        recorder.observe_tick(&tick_from(&r, &mut ts));
        // +10% — no trigger.
        mem.set(11 << 20);
        recorder.observe_tick(&tick_from(&r, &mut ts));
        assert_eq!(recorder.dumps_written(), 0);
        // 3x jump above the floor — trigger.
        mem.set(33 << 20);
        recorder.observe_tick(&tick_from(&r, &mut ts));
        assert_eq!(recorder.dumps_written(), 1);
        let _ = std::fs::remove_dir_all(
            std::env::temp_dir().join(format!("rtfr-jump-{}", std::process::id())),
        );
    }
}
