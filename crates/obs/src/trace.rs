//! Causal tracing: trace/span contexts, a lock-sharded span ring with
//! deterministic sampling, and Chrome `trace_event` export.
//!
//! A [`Tracer`] hands out one [`TraceCtx`] per admission attempt. The
//! context buffers its spans locally (a single worker owns one
//! admission, so no synchronization is needed while the trace is
//! open) and flushes the whole trace into the sharded ring at
//! [`TraceCtx::finish`] — but only when the trace is sampled or ended
//! in a rejection, which makes `SampleEvery(n)` deterministic and
//! rejections always visible without any cross-thread coordination.
//!
//! The disabled form follows the same noop discipline as
//! [`Counter`](crate::Counter): a [`Tracer::noop`] is a `None` behind
//! one branch, so an instrumented hot path that runs without a
//! subscriber pays a single predictable-false test per call site and
//! never reads the clock.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::expo::json_string;
use crate::{Histogram, Registry};

/// Identifies one admission attempt end to end. Display form `t<n>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// Wraps a raw trace number.
    pub fn new(raw: u64) -> TraceId {
        TraceId(raw)
    }

    /// The raw trace number.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifies one span within the tracer's lifetime. Display form
/// `s<n>`. Id `0` is the noop span returned by a disabled context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The id a disabled context hands out; ending it is a no-op.
    pub const NONE: SpanId = SpanId(0);

    /// Wraps a raw span number.
    pub fn new(raw: u64) -> SpanId {
        SpanId(raw)
    }

    /// The raw span number.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Which traces are retained in the ring. Rejected admissions are
/// *always* retained regardless of the policy — the trace you need is
/// the one that refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sampling {
    /// Keep every trace.
    Always,
    /// Keep every n-th trace (deterministic: trace sequence number
    /// modulo `n`), plus every rejection.
    SampleEvery(u64),
    /// Keep only rejections — the cheapest *live* setting. Each
    /// rejection pays the full flush (attributes, provenance event,
    /// ring insert), so its cost is proportional to the reject rate.
    RejectsOnly,
    /// Tracing hard-off: nothing ever reaches the ring, not even
    /// rejections. Without a registry link, [`Tracer::start`] hands
    /// out a disabled context, so an installed-but-off tracer costs
    /// the same single branch per site as [`Tracer::noop`] — this is
    /// the "sampling off" arm of the A/B throughput bench.
    Never,
}

impl Sampling {
    /// Whether the trace with sequence number `seq` is sampled
    /// (rejections are retained independently of this, except under
    /// [`Sampling::Never`]).
    fn samples(self, seq: u64) -> bool {
        match self {
            Sampling::Always => true,
            Sampling::SampleEvery(n) => n != 0 && seq.is_multiple_of(n),
            Sampling::RejectsOnly | Sampling::Never => false,
        }
    }

    /// Whether a rejection forces an unsampled trace to flush.
    fn retains_rejects(self) -> bool {
        !matches!(self, Sampling::Never)
    }
}

/// One closed span: a named interval of a trace with causal parentage
/// and key=value attributes. Timestamps are nanoseconds since the
/// owning tracer's epoch, so every span of one tracer shares a
/// timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// The causally enclosing span, `None` for a trace root.
    pub parent: Option<SpanId>,
    /// The operation name (e.g. `engine.admit`, `price`, `reserve`).
    pub name: &'static str,
    /// Begin timestamp, ns since the tracer epoch.
    pub begin_ns: u64,
    /// End timestamp, ns since the tracer epoch (`>= begin_ns`).
    pub end_ns: u64,
    /// Key=value attributes attached while the span was open.
    pub attrs: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// The span's duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.begin_ns
    }
}

/// The lock-sharded bounded span store. A whole trace flushes into a
/// single shard (chosen by trace id), so one trace's spans are never
/// interleaved with another's within a shard; a contended shard drops
/// the flush rather than blocking the admission path.
#[derive(Debug)]
struct SpanRing {
    shards: Vec<Mutex<VecDeque<SpanRecord>>>,
    per_shard: usize,
    recorded: AtomicU64,
    dropped: AtomicU64,
    evicted: AtomicU64,
}

impl SpanRing {
    fn new(shards: usize, per_shard: usize) -> SpanRing {
        let shards = shards.max(1);
        SpanRing {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            per_shard: per_shard.max(1),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    fn flush(&self, trace: TraceId, spans: Vec<SpanRecord>) {
        if spans.is_empty() {
            return;
        }
        self.recorded
            .fetch_add(spans.len() as u64, Ordering::Relaxed);
        let shard = &self.shards[(trace.get() as usize) % self.shards.len()];
        match shard.try_lock() {
            Ok(mut queue) => {
                for span in spans {
                    if queue.len() == self.per_shard {
                        queue.pop_front();
                        self.evicted.fetch_add(1, Ordering::Relaxed);
                    }
                    queue.push_back(span);
                }
            }
            Err(_) => {
                self.dropped
                    .fetch_add(spans.len() as u64, Ordering::Relaxed);
            }
        }
    }

    fn snapshot(&self) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = Vec::new();
        for shard in &self.shards {
            match shard.lock() {
                Ok(queue) => spans.extend(queue.iter().cloned()),
                Err(poisoned) => spans.extend(poisoned.into_inner().iter().cloned()),
            }
        }
        spans.sort_by_key(|s| (s.trace, s.begin_ns, s.span));
        spans
    }
}

#[derive(Debug)]
struct TracerCore {
    epoch: Instant,
    sampling: Sampling,
    next_trace: AtomicU64,
    ring: SpanRing,
    /// When set, every ended span's duration also lands in the
    /// registry histogram `trace_span_ns{span="<name>"}` — span
    /// timings feed the same aggregates as explicit histograms.
    registry: Option<Arc<Registry>>,
    durations: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl TracerCore {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn duration_histogram(&self, name: &'static str) -> Option<Histogram> {
        let registry = self.registry.as_ref()?;
        let mut cache = match self.durations.lock() {
            Ok(cache) => cache,
            Err(poisoned) => poisoned.into_inner(),
        };
        Some(
            cache
                .entry(name)
                .or_insert_with(|| registry.histogram_with("trace_span_ns", &[("span", name)]))
                .clone(),
        )
    }
}

/// The subscriber handle instrumented code holds. Cloning shares the
/// underlying ring; the [`noop`](Tracer::noop) form costs one branch
/// per instrumentation site and is the `Default`.
#[derive(Debug, Clone, Default)]
pub struct Tracer(Option<Arc<TracerCore>>);

/// Default ring geometry: 8 shards × 2048 spans.
const DEFAULT_SHARDS: usize = 8;
const DEFAULT_PER_SHARD: usize = 2048;

impl Tracer {
    /// A disabled tracer: every operation is a no-op behind one branch.
    pub fn noop() -> Tracer {
        Tracer(None)
    }

    /// A live tracer with the default ring geometry.
    pub fn new(sampling: Sampling) -> Tracer {
        Tracer::with_capacity(sampling, DEFAULT_SHARDS, DEFAULT_PER_SHARD)
    }

    /// A live tracer with an explicit ring geometry (`shards` mutex
    /// shards of `per_shard` retained spans each).
    pub fn with_capacity(sampling: Sampling, shards: usize, per_shard: usize) -> Tracer {
        Tracer(Some(Arc::new(TracerCore {
            epoch: Instant::now(),
            sampling,
            next_trace: AtomicU64::new(0),
            ring: SpanRing::new(shards, per_shard),
            registry: None,
            durations: Mutex::new(BTreeMap::new()),
        })))
    }

    /// A live tracer that additionally records every ended span's
    /// duration into `registry` as `trace_span_ns{span="<name>"}`.
    pub fn with_registry(sampling: Sampling, registry: Arc<Registry>) -> Tracer {
        Tracer(Some(Arc::new(TracerCore {
            epoch: Instant::now(),
            sampling,
            next_trace: AtomicU64::new(0),
            ring: SpanRing::new(DEFAULT_SHARDS, DEFAULT_PER_SHARD),
            registry: Some(registry),
            durations: Mutex::new(BTreeMap::new()),
        })))
    }

    /// Whether a subscriber is installed.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a new trace whose root span is named `name`. On a noop
    /// tracer this returns a disabled context without reading the
    /// clock.
    pub fn start(&self, name: &'static str) -> TraceCtx {
        let Some(core) = &self.0 else {
            return TraceCtx(None);
        };
        if core.sampling == Sampling::Never && core.registry.is_none() {
            // Hard-off: no trace from this tracer can ever be seen, so
            // don't even mint an id — the context is disabled and every
            // operation on it is the same one-branch noop as a
            // [`Tracer::noop`] context.
            return TraceCtx(None);
        }
        let seq = core.next_trace.fetch_add(1, Ordering::Relaxed);
        let trace = TraceId::new(seq + 1);
        let sampled = core.sampling.samples(seq);
        // An unsampled context only flushes if the admission ends in a
        // rejection, and that flush carries the root span plus the
        // reject-path events — child spans would be thrown away, so it
        // skips their bookkeeping entirely unless a registry link
        // wants every span's duration.
        let record_spans = sampled || core.registry.is_some();
        let mut ctx = TraceCtx(Some(CtxInner {
            core: Arc::clone(core),
            trace,
            sampled,
            record_spans,
            next_span: 0,
            done: if record_spans {
                Vec::with_capacity(8)
            } else {
                Vec::new()
            },
            open: Vec::with_capacity(4),
        }));
        ctx.begin(name);
        ctx
    }

    /// Spans ever flushed toward the ring (retained, evicted, or
    /// dropped).
    pub fn recorded(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.ring.recorded.load(Ordering::Relaxed))
    }

    /// Spans lost because their shard was contended at flush time.
    pub fn dropped(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.ring.dropped.load(Ordering::Relaxed))
    }

    /// Spans displaced by newer ones in a full shard.
    pub fn evicted(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.ring.evicted.load(Ordering::Relaxed))
    }

    /// The retained spans, ordered by (trace, begin, span).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.0.as_ref().map_or_else(Vec::new, |c| c.ring.snapshot())
    }
}

#[derive(Debug)]
struct OpenSpan {
    span: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    begin_ns: u64,
    attrs: Vec<(&'static str, String)>,
}

/// Span-id partitioning: each trace owns the id block
/// `trace_id << SPAN_BLOCK_BITS ..`, so contexts mint span ids from a
/// plain per-context counter — no shared atomic on the begin/end hot
/// path. Trace ids start at 1, so no block collides with
/// [`SpanId::NONE`] (id 0); a trace overflowing its 2^20-id block
/// would need a million spans, far beyond what the ring retains.
const SPAN_BLOCK_BITS: u32 = 20;

#[derive(Debug)]
struct CtxInner {
    core: Arc<TracerCore>,
    trace: TraceId,
    sampled: bool,
    /// Whether child spans are worth buffering: the trace is sampled
    /// (it will flush) or a registry link records every span's
    /// duration. When false, [`TraceCtx::begin`] hands out
    /// [`SpanId::NONE`] for children — only the root span, attributes,
    /// and events survive into a forced reject flush.
    record_spans: bool,
    next_span: u64,
    done: Vec<SpanRecord>,
    open: Vec<OpenSpan>,
}

impl CtxInner {
    fn mint_span(&mut self) -> SpanId {
        let span = SpanId::new((self.trace.get() << SPAN_BLOCK_BITS) | self.next_span);
        self.next_span += 1;
        span
    }

    fn close_top(&mut self, end_ns: u64) {
        let Some(top) = self.open.pop() else { return };
        if let Some(histogram) = self.core.duration_histogram(top.name) {
            histogram.record(end_ns.saturating_sub(top.begin_ns));
        }
        self.done.push(SpanRecord {
            trace: self.trace,
            span: top.span,
            parent: top.parent,
            name: top.name,
            begin_ns: top.begin_ns,
            end_ns,
            attrs: top.attrs,
        });
    }
}

/// One in-flight trace: the per-admission context instrumented code
/// threads along. Spans form a stack — [`begin`](TraceCtx::begin)
/// opens a child of the innermost open span, [`end`](TraceCtx::end)
/// closes back down to (and including) the named span. Dropping the
/// context finishes it as non-rejected.
#[derive(Debug, Default)]
pub struct TraceCtx(Option<CtxInner>);

impl TraceCtx {
    /// A disabled context (what a noop tracer's `start` returns).
    pub fn noop() -> TraceCtx {
        TraceCtx(None)
    }

    /// Whether this context belongs to a live tracer.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Whether this trace is already known to flush (deterministic
    /// sampling chose it). A live-but-unsampled context still buffers
    /// spans — a rejection at the end forces the flush — so callers
    /// should gate *expensive* annotations (formatted attributes,
    /// per-hop event strings) on this rather than on
    /// [`is_live`](TraceCtx::is_live), and attach reject-only detail
    /// on the rejection path itself.
    pub fn is_sampled(&self) -> bool {
        self.0.as_ref().is_some_and(|inner| inner.sampled)
    }

    /// Whether this trace can still reach the ring: it is sampled, or
    /// its policy retains rejections and a rejection at finish would
    /// force the flush. Reject-path detail (provenance events,
    /// re-attached attributes) should be gated on this rather than on
    /// [`is_live`](TraceCtx::is_live) — a context for which this is
    /// false can never surface it.
    pub fn can_flush(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|inner| inner.sampled || inner.core.sampling.retains_rejects())
    }

    /// The trace id, when live.
    pub fn trace(&self) -> Option<TraceId> {
        self.0.as_ref().map(|inner| inner.trace)
    }

    /// Opens a child span of the innermost open span. Returns
    /// [`SpanId::NONE`] on a disabled context, and for non-root spans
    /// of an unsampled context with no registry link — such a span
    /// could never be seen, so its bookkeeping is skipped (ending a
    /// [`SpanId::NONE`] is a no-op).
    pub fn begin(&mut self, name: &'static str) -> SpanId {
        let Some(inner) = &mut self.0 else {
            return SpanId::NONE;
        };
        if !inner.record_spans && !inner.open.is_empty() {
            return SpanId::NONE;
        }
        let span = inner.mint_span();
        let parent = inner.open.last().map(|s| s.span);
        let begin_ns = inner.core.now_ns();
        inner.open.push(OpenSpan {
            span,
            parent,
            name,
            begin_ns,
            attrs: Vec::new(),
        });
        span
    }

    /// Closes `span`, plus any spans opened inside it that are still
    /// open. Unknown (or [`SpanId::NONE`]) ids are ignored.
    pub fn end(&mut self, span: SpanId) {
        let Some(inner) = &mut self.0 else { return };
        let Some(position) = inner.open.iter().rposition(|s| s.span == span) else {
            return;
        };
        let end_ns = inner.core.now_ns();
        while inner.open.len() > position {
            inner.close_top(end_ns);
        }
    }

    /// Attaches a key=value attribute to the innermost open span.
    pub fn attr(&mut self, key: &'static str, value: impl Into<String>) {
        let Some(inner) = &mut self.0 else { return };
        if let Some(top) = inner.open.last_mut() {
            top.attrs.push((key, value.into()));
        }
    }

    /// Records an instantaneous event: a zero-length child span of the
    /// innermost open span carrying `detail` as its sole attribute.
    pub fn event(&mut self, name: &'static str, detail: impl Into<String>) {
        let Some(inner) = &mut self.0 else { return };
        let span = inner.mint_span();
        let parent = inner.open.last().map(|s| s.span);
        let now = inner.core.now_ns();
        inner.done.push(SpanRecord {
            trace: inner.trace,
            span,
            parent,
            name,
            begin_ns: now,
            end_ns: now,
            attrs: vec![("detail", detail.into())],
        });
    }

    /// Closes every open span and flushes the trace to the ring iff it
    /// is sampled or `reject` is set (rejections are always retained).
    pub fn finish(mut self, reject: bool) {
        self.finish_inner(reject);
    }

    fn finish_inner(&mut self, reject: bool) {
        let Some(mut inner) = self.0.take() else {
            return;
        };
        let force = reject && inner.core.sampling.retains_rejects();
        if !inner.sampled && !force && inner.core.registry.is_none() {
            // Nothing can flush and no registry wants durations: skip
            // the close bookkeeping (and its clock read) entirely.
            return;
        }
        let end_ns = inner.core.now_ns();
        while !inner.open.is_empty() {
            inner.close_top(end_ns);
        }
        if inner.sampled || force {
            let spans = std::mem::take(&mut inner.done);
            inner.core.ring.flush(inner.trace, spans);
        }
    }
}

impl Drop for TraceCtx {
    fn drop(&mut self) {
        self.finish_inner(false);
    }
}

/// Renders spans as Chrome `trace_event` JSON (the array-of-complete-
/// events form), loadable in `chrome://tracing` and Perfetto.
/// Timestamps convert to microseconds; each trace maps to one `tid`,
/// so traces stack as separate tracks.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (k, span) in spans.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let ts = span.begin_ns as f64 / 1000.0;
        let dur = span.duration_ns() as f64 / 1000.0;
        out.push_str(&format!(
            "{{\"name\":{},\"cat\":\"rtcac\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\
             \"pid\":1,\"tid\":{},\"args\":{{\"trace\":{},\"span\":{}",
            json_string(span.name),
            span.trace.get(),
            json_string(&span.trace.to_string()),
            json_string(&span.span.to_string()),
        ));
        if let Some(parent) = span.parent {
            out.push_str(&format!(",\"parent\":{}", json_string(&parent.to_string())));
        }
        for (key, value) in &span.attrs {
            out.push_str(&format!(",{}:{}", json_string(key), json_string(value)));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Renders spans as an indented human-readable tree, one block per
/// trace, children nested under their parents in causal order.
pub fn render_spans(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    let mut index = 0;
    while index < spans.len() {
        let trace = spans[index].trace;
        let end = spans[index..]
            .iter()
            .position(|s| s.trace != trace)
            .map_or(spans.len(), |offset| index + offset);
        let group = &spans[index..end];
        out.push_str(&format!("trace {trace} ({} spans)\n", group.len()));
        for root in group
            .iter()
            .filter(|s| s.parent.is_none() || !group.iter().any(|p| Some(p.span) == s.parent))
        {
            render_one(root, group, 1, &mut out);
        }
        index = end;
    }
    out
}

fn render_one(span: &SpanRecord, group: &[SpanRecord], depth: usize, out: &mut String) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!(
        "{} {:.1}us..{:.1}us",
        span.name,
        span.begin_ns as f64 / 1000.0,
        span.end_ns as f64 / 1000.0
    ));
    for (key, value) in &span.attrs {
        out.push_str(&format!(" {key}={value}"));
    }
    out.push('\n');
    for child in group.iter().filter(|s| s.parent == Some(span.span)) {
        render_one(child, group, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_tracer_is_inert() {
        let tracer = Tracer::noop();
        assert!(!tracer.is_live());
        let mut ctx = tracer.start("root");
        assert!(!ctx.is_live());
        assert_eq!(ctx.begin("child"), SpanId::NONE);
        ctx.attr("k", "v");
        ctx.event("e", "d");
        ctx.finish(true);
        assert_eq!(tracer.snapshot().len(), 0);
        assert_eq!(tracer.recorded(), 0);
    }

    #[test]
    fn spans_nest_and_flush_in_causal_order() {
        let tracer = Tracer::new(Sampling::Always);
        let mut ctx = tracer.start("root");
        ctx.attr("conn", "vc1");
        let price = ctx.begin("price");
        ctx.end(price);
        let reserve = ctx.begin("reserve");
        ctx.event("hop", "node 1 admitted");
        ctx.end(reserve);
        ctx.finish(false);

        let spans = tracer.snapshot();
        assert_eq!(spans.len(), 4);
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        assert_eq!(root.parent, None);
        assert_eq!(root.attrs, vec![("conn", "vc1".to_string())]);
        let hop = spans.iter().find(|s| s.name == "hop").unwrap();
        let reserve = spans.iter().find(|s| s.name == "reserve").unwrap();
        assert_eq!(hop.parent, Some(reserve.span));
        assert_eq!(reserve.parent, Some(root.span));
        for span in &spans {
            assert!(span.end_ns >= span.begin_ns);
        }
        assert!(root.end_ns >= reserve.end_ns);
    }

    #[test]
    fn sample_every_n_is_deterministic_and_rejects_always_flush() {
        let tracer = Tracer::new(Sampling::SampleEvery(3));
        for k in 0..9 {
            let ctx = tracer.start("root");
            ctx.finish(false);
            let _ = k;
        }
        // Traces 0, 3, 6 of the nine are sampled.
        assert_eq!(tracer.snapshot().len(), 3);

        let rejects = Tracer::new(Sampling::RejectsOnly);
        rejects.start("admitted").finish(false);
        rejects.start("rejected").finish(true);
        let spans = rejects.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "rejected");
    }

    #[test]
    fn never_sampling_is_hard_off() {
        let tracer = Tracer::new(Sampling::Never);
        assert!(tracer.is_live());
        let ctx = tracer.start("root");
        assert!(!ctx.is_live());
        assert!(!ctx.can_flush());
        ctx.finish(true); // even a rejection records nothing
        assert_eq!(tracer.recorded(), 0);
        assert_eq!(tracer.snapshot().len(), 0);

        // A registry link still measures durations without retaining
        // any spans in the ring.
        let registry = Arc::new(Registry::new());
        let linked = Tracer::with_registry(Sampling::Never, Arc::clone(&registry));
        let mut ctx = linked.start("root");
        assert!(ctx.is_live());
        assert!(!ctx.can_flush());
        let child = ctx.begin("price");
        ctx.end(child);
        ctx.finish(true);
        assert_eq!(linked.recorded(), 0);
        let snapshot = registry.snapshot();
        let price = snapshot.histogram_with("trace_span_ns", &[("span", "price")]);
        assert_eq!(price.map(|h| h.count), Some(1));
    }

    #[test]
    fn unbalanced_finish_closes_open_spans() {
        let tracer = Tracer::new(Sampling::Always);
        let mut ctx = tracer.start("root");
        let outer = ctx.begin("outer");
        ctx.begin("inner");
        ctx.end(outer); // closes inner too
        drop(ctx); // drop finishes the root
        let spans = tracer.snapshot();
        assert_eq!(spans.len(), 3);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.span));
    }

    #[test]
    fn eviction_keeps_ring_bounded() {
        let tracer = Tracer::with_capacity(Sampling::Always, 1, 4);
        for _ in 0..10 {
            tracer.start("root").finish(false);
        }
        assert_eq!(tracer.snapshot().len(), 4);
        assert_eq!(tracer.recorded(), 10);
        assert_eq!(tracer.evicted(), 6);
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn registry_link_feeds_span_histograms() {
        let registry = Arc::new(Registry::new());
        let tracer = Tracer::with_registry(Sampling::RejectsOnly, Arc::clone(&registry));
        let mut ctx = tracer.start("root");
        let child = ctx.begin("price");
        ctx.end(child);
        ctx.finish(false); // not retained — but durations still recorded
        let snapshot = registry.snapshot();
        let price = snapshot.histogram_with("trace_span_ns", &[("span", "price")]);
        assert_eq!(price.map(|h| h.count), Some(1));
        let root = snapshot.histogram_with("trace_span_ns", &[("span", "root")]);
        assert_eq!(root.map(|h| h.count), Some(1));
    }

    #[test]
    fn chrome_export_shape() {
        let tracer = Tracer::new(Sampling::Always);
        let mut ctx = tracer.start("root");
        ctx.attr("conn", "vc\"1\"");
        ctx.event("reject.provenance", "hop 1 refused");
        ctx.finish(true);
        let json = chrome_trace(&tracer.snapshot());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"reject.provenance\""));
        assert!(json.contains("\"conn\":\"vc\\\"1\\\"\""));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn render_groups_by_trace_and_indents_children() {
        let tracer = Tracer::new(Sampling::Always);
        let mut ctx = tracer.start("root");
        let child = ctx.begin("price");
        ctx.end(child);
        ctx.finish(false);
        tracer.start("other").finish(false);
        let text = render_spans(&tracer.snapshot());
        assert!(text.contains("trace t1 (2 spans)"));
        assert!(text.contains("\n  root "));
        assert!(text.contains("\n    price "));
        assert!(text.contains("trace t2 (1 spans)"));
    }
}
