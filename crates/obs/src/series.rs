//! Windowed time-series: a fixed-size ring of per-tick snapshot deltas.
//!
//! Every observability surface before this module was point-in-time: a
//! scrape tells you what the counters *are*, not what the system was
//! doing over the last 30 seconds. [`TimeSeries`] closes that gap with
//! bounded memory: each call to [`TimeSeries::observe`] diffs the new
//! [`Snapshot`] against the previous one and retains only the *delta*
//! (counter increments, histogram bucket increments, gauge point
//! values) in a ring of at most `capacity` ticks. From the ring it
//! answers rate questions (`ops/s`, rejects/s) and sliding-window
//! quantiles (`p99` over the window, not since process start).
//!
//! Feed it locally (a [`Sampler`] thread snapshotting a registry every
//! second, or an explicit `observe` call in tests) or remotely
//! ([`Snapshot::from_prometheus`] over scraped `/metrics` text — how
//! `rtcac top` and `rtcac load --soak` build their windows).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::histogram::HistogramSnapshot;
use crate::registry::{MetricId, Registry};
use crate::Snapshot;

/// Default ring capacity: 120 ticks ≈ two minutes at the default 1s
/// interval.
pub const DEFAULT_TICKS: usize = 120;

/// The delta between two consecutive snapshots of the same registry.
#[derive(Debug, Clone, Default)]
pub struct TickDelta {
    /// Monotonic tick sequence number (0 for the first observation).
    pub tick: u64,
    /// Wall-clock time this tick covers, in milliseconds.
    pub elapsed_ms: u64,
    /// Counter increments during the tick; zero deltas are omitted.
    pub counters: Vec<(MetricId, u64)>,
    /// Gauge point values at the end of the tick (gauges are levels,
    /// not flows — a delta would be meaningless for e.g. resident
    /// bytes).
    pub gauges: Vec<(MetricId, u64)>,
    /// Histogram observations recorded during the tick; empty deltas
    /// are omitted.
    pub histograms: Vec<(MetricId, HistogramSnapshot)>,
}

impl TickDelta {
    /// Sum of this tick's increments of counter `name` across all label
    /// sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(id, _)| id.name() == name)
            .map(|&(_, v)| v)
            .sum()
    }

    /// The unlabelled gauge `name` at the end of this tick.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(id, _)| id.name() == name && id.labels().is_empty())
            .map(|&(_, v)| v)
    }
}

fn lookup<T>(sorted: &[(MetricId, T)], id: &MetricId) -> Option<usize> {
    sorted.binary_search_by(|(k, _)| k.cmp(id)).ok()
}

/// A bounded window of [`TickDelta`]s plus the snapshot they are
/// relative to.
#[derive(Debug)]
pub struct TimeSeries {
    capacity: usize,
    ticks: VecDeque<TickDelta>,
    last: Option<Snapshot>,
    next_tick: u64,
}

impl Default for TimeSeries {
    fn default() -> TimeSeries {
        TimeSeries::new(DEFAULT_TICKS)
    }
}

impl TimeSeries {
    /// A series retaining at most `capacity` ticks (min 1).
    pub fn new(capacity: usize) -> TimeSeries {
        TimeSeries {
            capacity: capacity.max(1),
            ticks: VecDeque::new(),
            last: None,
            next_tick: 0,
        }
    }

    /// Ingests a snapshot taken `elapsed_ms` after the previous one and
    /// returns the resulting tick. The first observation establishes
    /// the baseline and yields an empty tick (rates need two points).
    ///
    /// A counter or bucket that went *backwards* (server restart
    /// between remote scrapes) contributes a zero delta for that tick;
    /// the new, lower snapshot becomes the next baseline, so the
    /// following tick is accurate again.
    pub fn observe(&mut self, snap: &Snapshot, elapsed_ms: u64) -> &TickDelta {
        let mut delta = TickDelta {
            tick: self.next_tick,
            elapsed_ms,
            gauges: snap.gauges.clone(),
            ..TickDelta::default()
        };
        if let Some(last) = &self.last {
            for (id, now) in &snap.counters {
                let then = lookup(&last.counters, id).map_or(0, |i| last.counters[i].1);
                let d = now.saturating_sub(then);
                if d > 0 {
                    delta.counters.push((id.clone(), d));
                }
            }
            for (id, now) in &snap.histograms {
                let d = match lookup(&last.histograms, id) {
                    Some(i) => now.delta(&last.histograms[i].1),
                    None => now.clone(),
                };
                if d.count > 0 {
                    delta.histograms.push((id.clone(), d));
                }
            }
        }
        self.next_tick += 1;
        self.last = Some(snap.clone());
        if self.ticks.len() == self.capacity {
            self.ticks.pop_front();
        }
        self.ticks.push_back(delta);
        self.ticks.back().expect("just pushed")
    }

    /// Number of retained ticks.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// Whether no tick has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained ticks, oldest first.
    pub fn ticks(&self) -> impl Iterator<Item = &TickDelta> {
        self.ticks.iter()
    }

    /// The most recent tick.
    pub fn latest(&self) -> Option<&TickDelta> {
        self.ticks.back()
    }

    /// Wall-clock span of the retained window in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.ticks.iter().map(|t| t.elapsed_ms).sum()
    }

    /// Total increments of counter `name` (across label sets) over the
    /// window.
    pub fn window_count(&self, name: &str) -> u64 {
        self.ticks.iter().map(|t| t.counter_total(name)).sum()
    }

    /// Average per-second rate of counter `name` over the whole window.
    pub fn rate(&self, name: &str) -> f64 {
        per_second(self.window_count(name), self.window_ms())
    }

    /// Per-second rate of counter `name` over just the latest tick —
    /// what a live dashboard shows as "now".
    pub fn rate_last(&self, name: &str) -> f64 {
        match self.latest() {
            Some(t) => per_second(t.counter_total(name), t.elapsed_ms),
            None => 0.0,
        }
    }

    /// All observations of histogram `name` (across label sets) during
    /// the window, merged into one distribution.
    pub fn window_histogram(&self, name: &str) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for tick in &self.ticks {
            for (id, h) in &tick.histograms {
                if id.name() == name {
                    merged.merge(h);
                }
            }
        }
        merged
    }

    /// Sliding-window quantile of histogram `name`: the `q`-quantile of
    /// observations recorded during the window, not since process
    /// start.
    pub fn window_quantile(&self, name: &str, q: f64) -> u64 {
        self.window_histogram(name).quantile(q)
    }

    /// The unlabelled gauge `name` as of the latest tick.
    pub fn last_gauge(&self, name: &str) -> Option<u64> {
        self.latest().and_then(|t| t.gauge(name))
    }
}

fn per_second(count: u64, elapsed_ms: u64) -> f64 {
    if elapsed_ms == 0 {
        0.0
    } else {
        count as f64 * 1000.0 / elapsed_ms as f64
    }
}

/// A background thread snapshotting a [`Registry`] into a
/// [`TimeSeries`] at a fixed interval.
///
/// The sampler can be *paused* ([`Sampler::set_active`]) without being
/// torn down: the thread keeps its cadence but skips the snapshot work,
/// which is what the A/B overhead bench uses to compare
/// sampler-on/sampler-off under otherwise identical process conditions.
/// Dropping the sampler stops and joins the thread.
pub struct Sampler {
    shared: Arc<SamplerShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

struct SamplerShared {
    stop: AtomicBool,
    active: AtomicBool,
    series: Mutex<TimeSeries>,
}

/// Observer invoked after every sampled tick with the series (already
/// containing the new tick) and the raw snapshot that produced it; this
/// is how the flight recorder taps the sampler.
pub type TickObserver = Box<dyn Fn(&TimeSeries, &Snapshot) + Send>;

impl Sampler {
    /// Spawns a sampler ticking every `interval` into a series of
    /// `capacity` ticks.
    pub fn spawn(registry: Arc<Registry>, interval: Duration, capacity: usize) -> Sampler {
        Sampler::spawn_with_observer(registry, interval, capacity, None)
    }

    /// Spawns a sampler that additionally calls `observer` after every
    /// tick (while holding the series lock — keep it quick).
    pub fn spawn_with_observer(
        registry: Arc<Registry>,
        interval: Duration,
        capacity: usize,
        observer: Option<TickObserver>,
    ) -> Sampler {
        let shared = Arc::new(SamplerShared {
            stop: AtomicBool::new(false),
            active: AtomicBool::new(true),
            series: Mutex::new(TimeSeries::new(capacity)),
        });
        let thread_shared = Arc::clone(&shared);
        let interval = interval.max(Duration::from_millis(10));
        let handle = std::thread::Builder::new()
            .name("rtcac-sampler".into())
            .spawn(move || {
                let mut last = Instant::now();
                while !thread_shared.stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if thread_shared.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if !thread_shared.active.load(Ordering::Relaxed) {
                        // Paused: keep cadence, drop the baseline so a
                        // resume doesn't attribute the whole pause to
                        // one tick.
                        last = Instant::now();
                        continue;
                    }
                    let snap = registry.snapshot();
                    let now = Instant::now();
                    let elapsed_ms =
                        u64::try_from(now.duration_since(last).as_millis()).unwrap_or(u64::MAX);
                    last = now;
                    let mut series = thread_shared.series.lock().expect("series poisoned");
                    series.observe(&snap, elapsed_ms);
                    if let Some(obs) = &observer {
                        obs(&series, &snap);
                    }
                }
            })
            .expect("spawn sampler thread");
        Sampler {
            shared,
            handle: Some(handle),
        }
    }

    /// Pauses (`false`) or resumes (`true`) sampling without stopping
    /// the thread.
    pub fn set_active(&self, active: bool) {
        self.shared.active.store(active, Ordering::Relaxed);
    }

    /// Runs `f` with the current series under its lock.
    pub fn with_series<R>(&self, f: impl FnOnce(&TimeSeries) -> R) -> R {
        f(&self.shared.series.lock().expect("series poisoned"))
    }

    /// Stops and joins the sampler thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("active", &self.shared.active.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_rates_and_window_quantiles() {
        let r = Registry::new();
        let ops = r.counter("engine_setups_admitted_total");
        let lat = r.histogram("engine_reserve_ns");
        let mem = r.gauge("engine_resident_bytes");
        let mut ts = TimeSeries::new(3);

        mem.set(100);
        ts.observe(&r.snapshot(), 0); // baseline
        assert_eq!(ts.rate("engine_setups_admitted_total"), 0.0);

        ops.add(50);
        for v in [1000u64, 2000, 3000] {
            lat.record(v);
        }
        mem.set(200);
        ts.observe(&r.snapshot(), 1000);
        assert_eq!(ts.window_count("engine_setups_admitted_total"), 50);
        assert!((ts.rate_last("engine_setups_admitted_total") - 50.0).abs() < 1e-9);
        assert_eq!(ts.last_gauge("engine_resident_bytes"), Some(200));
        assert_eq!(ts.window_histogram("engine_reserve_ns").count, 3);

        // Second active tick: the window merges both.
        ops.add(10);
        lat.record(4000);
        ts.observe(&r.snapshot(), 1000);
        assert_eq!(ts.window_count("engine_setups_admitted_total"), 60);
        assert!((ts.rate("engine_setups_admitted_total") - 30.0).abs() < 1e-9);
        assert!((ts.rate_last("engine_setups_admitted_total") - 10.0).abs() < 1e-9);
        let w = ts.window_histogram("engine_reserve_ns");
        assert_eq!(w.count, 4);
        assert!(w.quantile(1.0) >= 4000);

        // Ring eviction: capacity 3, so the baseline tick falls out and
        // the window now covers only the last three observations.
        ops.add(2);
        ts.observe(&r.snapshot(), 1000);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.window_count("engine_setups_admitted_total"), 62);
        assert_eq!(ts.window_ms(), 3000);
    }

    #[test]
    fn restart_regression_yields_zero_not_garbage() {
        let mut ts = TimeSeries::new(8);
        let r1 = Registry::new();
        r1.counter("x_total").add(100);
        ts.observe(&r1.snapshot(), 1000);
        // "Restarted server": same series, lower value.
        let r2 = Registry::new();
        r2.counter("x_total").add(5);
        let tick = ts.observe(&r2.snapshot(), 1000);
        assert_eq!(tick.counter_total("x_total"), 0);
        // Next tick is accurate against the new baseline.
        r2.counter("x_total").add(7);
        let tick = ts.observe(&r2.snapshot(), 1000);
        assert_eq!(tick.counter_total("x_total"), 7);
    }

    #[test]
    fn labelled_counters_aggregate_per_window() {
        let r = Registry::new();
        let mut ts = TimeSeries::new(4);
        ts.observe(&r.snapshot(), 0);
        r.counter_with("engine_rejections_total", &[("reason", "qos")])
            .add(3);
        r.counter_with("engine_rejections_total", &[("reason", "switch")])
            .add(4);
        ts.observe(&r.snapshot(), 500);
        assert_eq!(ts.window_count("engine_rejections_total"), 7);
        assert!((ts.rate("engine_rejections_total") - 14.0).abs() < 1e-9);
    }

    #[test]
    fn sampler_ticks_and_pauses() {
        let r = Arc::new(Registry::new());
        let c = r.counter("sampled_total");
        let sampler = Sampler::spawn(Arc::clone(&r), Duration::from_millis(10), 16);
        let deadline = Instant::now() + Duration::from_secs(5);
        // Let the baseline tick land first, otherwise the increment is
        // absorbed into it and no delta is ever visible.
        while sampler.with_series(|ts| ts.is_empty()) {
            assert!(Instant::now() < deadline, "sampler never ticked");
            std::thread::sleep(Duration::from_millis(5));
        }
        c.add(5);
        loop {
            let done = sampler.with_series(|ts| ts.window_count("sampled_total") >= 5);
            if done {
                break;
            }
            assert!(Instant::now() < deadline, "sampler never observed counter");
            std::thread::sleep(Duration::from_millis(5));
        }
        sampler.set_active(false);
        std::thread::sleep(Duration::from_millis(30));
        let frozen = sampler.with_series(|ts| ts.len());
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(sampler.with_series(|ts| ts.len()), frozen);
        sampler.stop();
    }

    #[test]
    fn remote_round_trip_feeds_series() {
        // The `rtcac top` path: scrape text, parse, observe.
        let r = Registry::new();
        let mut ts = TimeSeries::new(8);
        ts.observe(&Snapshot::from_prometheus(&r.snapshot().to_prometheus()), 0);
        r.counter("serve_setups_admitted_total").add(20);
        r.histogram("engine_reserve_ns").record(1500);
        let text = r.snapshot().to_prometheus();
        ts.observe(&Snapshot::from_prometheus(&text), 2000);
        assert!((ts.rate("serve_setups_admitted_total") - 10.0).abs() < 1e-9);
        assert_eq!(ts.window_histogram("engine_reserve_ns").count, 1);
    }
}
