//! The metric registry and its counter/gauge handles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::histogram::{Histogram, HistogramCore};
use crate::ring::EventRing;
use crate::Snapshot;

/// A metric's identity: a name plus an ordered label set
/// (`engine_shard_lock_wait_ns{shard="3"}`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricId {
    /// An unlabelled metric id.
    pub fn new(name: impl Into<String>) -> MetricId {
        MetricId {
            name: name.into(),
            labels: Vec::new(),
        }
    }

    /// A labelled metric id; labels are sorted by key for a canonical
    /// identity.
    pub fn with_labels(name: impl Into<String>, labels: &[(&str, &str)]) -> MetricId {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        labels.sort();
        MetricId {
            name: name.into(),
            labels,
        }
    }

    /// An id assembled from already-owned parts (labels re-sorted to
    /// the canonical order); used by the Prometheus-text parser.
    pub(crate) fn from_parts(name: String, mut labels: Vec<(String, String)>) -> MetricId {
        labels.sort();
        MetricId { name, labels }
    }

    /// Removes and returns the value of label `key`, if present.
    pub(crate) fn take_label(&mut self, key: &str) -> Option<String> {
        let pos = self.labels.iter().position(|(k, _)| k == key)?;
        Some(self.labels.remove(pos).1)
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sorted label set.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }
}

impl std::fmt::Display for MetricId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}=\"{v}\"")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// A monotonically increasing counter handle (no-op when obtained
/// without a registry). Cloning shares the underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that ignores every update.
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Whether updates actually land somewhere.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value gauge handle with a monotonic-max helper (no-op when
/// obtained without a registry).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A handle that ignores every update.
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Whether updates actually land somewhere.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Sets the gauge.
    pub fn set(&self, value: u64) {
        if let Some(g) = &self.0 {
            g.store(value, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `value` if larger (high-water mark).
    pub fn record_max(&self, value: u64) {
        if let Some(g) = &self.0 {
            g.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// A last-seen trace-id slot attached to a counter series: when the
/// counter is bumped on an interesting path (a rejection), the trace id
/// of the setup that bumped it is stored alongside, so an operator can
/// jump from "this counter spiked" straight to the span tree / `rtcac
/// why` provenance of a *concrete* recent instance. Zero means "no
/// exemplar yet" (trace ids are never zero). No-op without a registry.
#[derive(Debug, Clone, Default)]
pub struct Exemplar(Option<Arc<AtomicU64>>);

impl Exemplar {
    /// A handle that ignores every record.
    pub fn noop() -> Exemplar {
        Exemplar(None)
    }

    /// Whether records actually land somewhere.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Records the trace id of the most recent instance.
    pub fn record(&self, trace: crate::TraceId) {
        if let Some(slot) = &self.0 {
            slot.store(trace.get(), Ordering::Relaxed);
        }
    }

    /// Records the trace id of `ctx`, when it carries one — the
    /// one-line form for engine rejection sites.
    pub fn record_from(&self, ctx: &crate::TraceCtx) {
        if self.0.is_some() {
            if let Some(trace) = ctx.trace() {
                self.record(trace);
            }
        }
    }

    /// The most recent trace id (`None` when nothing was recorded or
    /// the handle is a no-op).
    pub fn get(&self) -> Option<crate::TraceId> {
        match &self.0 {
            Some(slot) => match slot.load(Ordering::Relaxed) {
                0 => None,
                raw => Some(crate::TraceId::new(raw)),
            },
            None => None,
        }
    }
}

/// A registry of named metrics plus an event ring.
///
/// Handle acquisition (`counter`/`gauge`/`histogram`) takes a write
/// lock once and returns a shared atomic; updates through the handle
/// never touch the registry again. Acquire handles at construction
/// time, not per operation, on hot paths.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<MetricId, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<MetricId, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<MetricId, Arc<HistogramCore>>>,
    exemplars: RwLock<BTreeMap<MetricId, Arc<AtomicU64>>>,
    events: EventRing,
}

impl Registry {
    /// An empty registry with the default event-ring geometry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// An empty registry whose event ring has `shards` shards of
    /// `per_shard` events each.
    pub fn with_event_capacity(shards: usize, per_shard: usize) -> Registry {
        Registry {
            events: EventRing::new(shards, per_shard),
            ..Registry::default()
        }
    }

    /// The unlabelled counter `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_id(MetricId::new(name))
    }

    /// The labelled counter `name{labels}`, created on first use.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.counter_id(MetricId::with_labels(name, labels))
    }

    fn counter_id(&self, id: MetricId) -> Counter {
        let mut map = self.counters.write().expect("counter map poisoned");
        Counter(Some(Arc::clone(map.entry(id).or_default())))
    }

    /// The unlabelled gauge `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_id(MetricId::new(name))
    }

    /// The labelled gauge `name{labels}`, created on first use.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.gauge_id(MetricId::with_labels(name, labels))
    }

    fn gauge_id(&self, id: MetricId) -> Gauge {
        let mut map = self.gauges.write().expect("gauge map poisoned");
        Gauge(Some(Arc::clone(map.entry(id).or_default())))
    }

    /// The unlabelled histogram `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_id(MetricId::new(name))
    }

    /// The labelled histogram `name{labels}`, created on first use.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_id(MetricId::with_labels(name, labels))
    }

    fn histogram_id(&self, id: MetricId) -> Histogram {
        let mut map = self.histograms.write().expect("histogram map poisoned");
        Histogram(Some(Arc::clone(
            map.entry(id)
                .or_insert_with(|| Arc::new(HistogramCore::new())),
        )))
    }

    /// The exemplar slot of the series `name{labels}`, created on
    /// first use. The id should match an existing counter's id, so the
    /// exposition can pair them up.
    pub fn exemplar_with(&self, name: &str, labels: &[(&str, &str)]) -> Exemplar {
        let id = MetricId::with_labels(name, labels);
        let mut map = self.exemplars.write().expect("exemplar map poisoned");
        Exemplar(Some(Arc::clone(map.entry(id).or_default())))
    }

    /// The event ring.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// A point-in-time view of every metric and the event ring.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .expect("counter map poisoned")
            .iter()
            .map(|(id, c)| (id.clone(), c.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("gauge map poisoned")
            .iter()
            .map(|(id, g)| (id.clone(), g.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("histogram map poisoned")
            .iter()
            .map(|(id, h)| (id.clone(), h.snapshot()))
            .collect();
        let exemplars = self
            .exemplars
            .read()
            .expect("exemplar map poisoned")
            .iter()
            .filter_map(|(id, e)| match e.load(Ordering::Relaxed) {
                0 => None,
                raw => Some((id.clone(), raw)),
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            exemplars,
            events: self.events.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_registry_state() {
        let r = Registry::new();
        let a = r.counter("setups_total");
        let b = r.counter("setups_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter("setups_total"), Some(3));
    }

    #[test]
    fn labels_separate_series() {
        let r = Registry::new();
        r.counter_with("lock_wait_total", &[("shard", "1")]).inc();
        r.counter_with("lock_wait_total", &[("shard", "2")]).add(5);
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.counter_total("lock_wait_total"), 6);
        // Label order does not matter for identity.
        let x = MetricId::with_labels("m", &[("b", "2"), ("a", "1")]);
        let y = MetricId::with_labels("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(x, y);
        assert_eq!(x.to_string(), "m{a=\"1\",b=\"2\"}");
    }

    #[test]
    fn gauge_set_and_max() {
        let r = Registry::new();
        let g = r.gauge("queue_depth");
        g.set(4);
        g.record_max(9);
        g.record_max(2);
        assert_eq!(g.get(), 9);
        let noop = Gauge::noop();
        noop.set(7);
        assert_eq!(noop.get(), 0);
        assert!(!noop.is_live());
    }
}
