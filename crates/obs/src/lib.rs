//! `rtcac-obs` — std-only observability for the rtcac workspace.
//!
//! The registry is deliberately tiny and dependency-free (the growth
//! environment runs with an unreachable crates.io registry, see
//! ROADMAP.md): everything is built from `std::sync` atomics and
//! mutexes.
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s and [`Histogram`]s,
//!   all backed by `AtomicU64`; handle acquisition takes a lock once,
//!   after which every update is a lock-free atomic op.
//! * [`Histogram`] — log2-bucketed value/latency distribution with
//!   p50/p90/p99/max readout from a [`HistogramSnapshot`].
//! * [`Span`] — an RAII guard recording its lifetime (in nanoseconds)
//!   into a histogram; [`Span::enter`] resolves the histogram from the
//!   global registry, [`Span::timed`] uses a pre-resolved handle.
//! * [`EventRing`] — a bounded, mutex-sharded event buffer that counts
//!   drops under contention instead of ever blocking a hot path.
//! * [`Snapshot`] — a point-in-time view of everything, rendered as
//!   Prometheus text ([`Snapshot::to_prometheus`]) or JSON
//!   ([`Snapshot::to_json`]).
//! * [`Tracer`] / [`TraceCtx`] — causal tracing: per-admission
//!   trace/span contexts with deterministic sampling
//!   ([`Sampling`]), flushed into a lock-sharded span ring and
//!   exported as Chrome `trace_event` JSON ([`chrome_trace`]) or an
//!   indented text tree ([`render_spans`]).
//!
//! # The no-op default
//!
//! Instrumented code paths obtain handles that are either *live*
//! (pointing at registry atomics) or *no-op* (`Option::None` inside):
//! when no registry is installed every `inc`/`record` is a single
//! branch on a `None` and no clock is read, so instrumentation can stay
//! compiled into hot paths at near-zero cost. Install a process-global
//! registry with [`install`]; components may also accept an explicit
//! registry (e.g. `AdmissionEngine::with_registry` in `rtcac-engine`)
//! so tests and benches can observe in isolation.
//!
//! ```
//! use std::sync::Arc;
//! use rtcac_obs::Registry;
//!
//! let registry = Arc::new(Registry::new());
//! let admitted = registry.counter("engine_setups_admitted_total");
//! let latency = registry.histogram("engine_reserve_ns");
//! admitted.inc();
//! latency.record(750);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("engine_setups_admitted_total"), Some(1));
//! assert!(snap.to_prometheus().contains("engine_reserve_ns_bucket"));
//! assert!(snap.to_json().starts_with('{'));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod expo;
pub mod flight;
mod histogram;
mod registry;
mod ring;
pub mod series;
mod span;
mod trace;

pub use alloc::{alloc_count, alloc_live_bytes, note_alloc, note_dealloc};
pub use expo::{EventsSnapshot, Snapshot};
pub use flight::{FlightConfig, FlightDump, FlightError, FlightRecorder};
pub use histogram::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use registry::{Counter, Exemplar, Gauge, MetricId, Registry};
pub use ring::{Event, EventRing};
pub use series::{Sampler, TickDelta, TimeSeries};
pub use span::Span;
pub use trace::{
    chrome_trace, render_spans, Sampling, SpanId, SpanRecord, TraceCtx, TraceId, Tracer,
};

use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// Installs the process-global registry. Returns `false` (leaving the
/// existing registry in place) if one was already installed.
pub fn install(registry: Arc<Registry>) -> bool {
    GLOBAL.set(registry).is_ok()
}

/// The installed global registry, if any.
pub fn global() -> Option<&'static Arc<Registry>> {
    GLOBAL.get()
}

/// A counter from the global registry, or a no-op handle if no registry
/// is installed.
pub fn counter(name: &str) -> Counter {
    global().map_or_else(Counter::noop, |r| r.counter(name))
}

/// A gauge from the global registry, or a no-op handle.
pub fn gauge(name: &str) -> Gauge {
    global().map_or_else(Gauge::noop, |r| r.gauge(name))
}

/// A histogram from the global registry, or a no-op handle.
pub fn histogram(name: &str) -> Histogram {
    global().map_or_else(Histogram::noop, |r| r.histogram(name))
}

/// Records an event into the global registry's ring (dropped silently
/// when no registry is installed).
pub fn record_event(name: &'static str, detail: impl Into<String>) {
    if let Some(r) = global() {
        r.events().record(name, detail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global OnceLock is process-wide, so keep all global-path
    // assertions in one test (test binaries run tests concurrently).
    #[test]
    fn global_install_and_noop_fallback() {
        // Before install the helpers return no-op handles that accept
        // updates without panicking.
        let c = counter("pre_install_total");
        c.inc();
        assert_eq!(c.get(), 0);
        let h = histogram("pre_install_ns");
        h.record(5);
        assert!(h.snapshot().count == 0);
        record_event("pre", "nothing listens");

        let registry = Arc::new(Registry::new());
        assert!(install(Arc::clone(&registry)));
        assert!(
            !install(Arc::new(Registry::new())),
            "second install wins nothing"
        );

        counter("post_install_total").inc();
        record_event("post", "now recorded");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("post_install_total"), Some(1));
        assert!(snap.events.events.iter().any(|e| e.name == "post"));
    }
}
