//! A bounded, mutex-sharded event buffer that never blocks a hot path.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (records across shards interleave; sort
    /// by `seq` for the true order).
    pub seq: u64,
    /// Static event name (e.g. `"engine.abort"`).
    pub name: &'static str,
    /// Free-form detail text.
    pub detail: String,
}

/// A bounded ring of recent events, sharded over several mutexes.
///
/// [`EventRing::record`] round-robins over the shards and uses
/// `try_lock`: if the chosen shard is contended the event is counted in
/// [`EventRing::dropped`] and the caller continues immediately — a hot
/// path is never made to wait for observability. A full shard evicts
/// its oldest event (counted in [`EventRing::evicted`]).
#[derive(Debug)]
pub struct EventRing {
    shards: Vec<Mutex<VecDeque<Event>>>,
    per_shard: usize,
    cursor: AtomicUsize,
    seq: AtomicU64,
    dropped: AtomicU64,
    evicted: AtomicU64,
}

impl Default for EventRing {
    fn default() -> EventRing {
        EventRing::new(8, 128)
    }
}

impl EventRing {
    /// A ring of `shards` mutex shards holding `per_shard` events each
    /// (both floored at 1).
    pub fn new(shards: usize, per_shard: usize) -> EventRing {
        EventRing {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            per_shard: per_shard.max(1),
            cursor: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Total capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.per_shard
    }

    /// Records an event, never blocking: a contended shard drops the
    /// event and bumps the drop counter instead.
    pub fn record(&self, name: &'static str, detail: impl Into<String>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let at = self.cursor.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        match self.shards[at].try_lock() {
            Ok(mut shard) => {
                if shard.len() >= self.per_shard {
                    shard.pop_front();
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
                shard.push_back(Event {
                    seq,
                    name,
                    detail: detail.into(),
                });
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Events whose shard was contended at record time.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events overwritten by newer ones in a full shard.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Total record attempts.
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// The retained events sorted by sequence number, plus the drop and
    /// eviction counts.
    pub fn snapshot(&self) -> crate::EventsSnapshot {
        let mut events: Vec<Event> = Vec::new();
        for shard in &self.shards {
            // A snapshot is a cold path; blocking here is fine.
            events.extend(shard.lock().expect("event shard poisoned").iter().cloned());
        }
        events.sort_by_key(|e| e.seq);
        crate::EventsSnapshot {
            events,
            recorded: self.recorded(),
            dropped: self.dropped(),
            evicted: self.evicted(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_across_shards() {
        let ring = EventRing::new(4, 8);
        for i in 0..10 {
            ring.record("tick", format!("n={i}"));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.events.len(), 10);
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn full_shard_evicts_oldest() {
        let ring = EventRing::new(1, 4);
        for i in 0..10 {
            ring.record("e", i.to_string());
        }
        let snap = ring.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.evicted, 6);
        assert_eq!(snap.events.first().unwrap().seq, 6);
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn contended_shard_counts_drops_instead_of_blocking() {
        let ring = EventRing::new(1, 8);
        // Hold the only shard's lock, then record: the record must
        // return immediately and count a drop.
        let guard = ring.shards[0].lock().unwrap();
        ring.record("blocked", "");
        drop(guard);
        assert_eq!(ring.dropped(), 1);
        ring.record("free", "");
        assert_eq!(ring.snapshot().events.len(), 1);
    }
}
