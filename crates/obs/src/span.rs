//! RAII trace spans recording their duration into a histogram.

use std::time::Instant;

use crate::Histogram;

/// A trace span: created with a start time, records its elapsed
/// nanoseconds into a histogram when dropped.
///
/// When the backing histogram is a no-op (no registry installed) the
/// span neither reads the clock nor records anything — construction is
/// a single branch.
///
/// ```
/// use std::sync::Arc;
/// use rtcac_obs::{Registry, Span};
///
/// let registry = Arc::new(Registry::new());
/// let reserve = registry.histogram("reserve_ns");
/// {
///     let _span = Span::timed(&reserve);
///     // ... timed work ...
/// }
/// assert_eq!(registry.snapshot().histogram("reserve_ns").unwrap().count, 1);
/// ```
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span(Option<(Instant, Histogram)>);

impl Span {
    /// A span recording into the named histogram of the **global**
    /// registry (a no-op span when none is installed).
    pub fn enter(name: &str) -> Span {
        Span::timed(&crate::histogram(name))
    }

    /// A span recording into a pre-resolved histogram handle — the
    /// hot-path form: no registry lookup, and no clock read when the
    /// handle is a no-op.
    pub fn timed(histogram: &Histogram) -> Span {
        if histogram.is_live() {
            Span(Some((Instant::now(), histogram.clone())))
        } else {
            Span(None)
        }
    }

    /// A span that records nothing.
    pub fn noop() -> Span {
        Span(None)
    }

    /// Whether this span will record on drop.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((start, histogram)) = self.0.take() {
            histogram.record_duration(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn span_records_on_drop() {
        let r = Registry::new();
        let h = r.histogram("op_ns");
        {
            let span = Span::timed(&h);
            assert!(span.is_live());
        }
        Span::timed(&h).finish();
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
    }

    #[test]
    fn noop_span_is_inert() {
        let span = Span::timed(&Histogram::noop());
        assert!(!span.is_live());
        drop(span);
        assert!(!Span::noop().is_live());
    }
}
