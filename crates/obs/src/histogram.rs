//! Log2-bucketed value distributions backed by atomics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i`
/// (1..=64) holds values with bit length `i`, i.e. `2^(i-1) ..= 2^i-1`.
pub const BUCKET_COUNT: usize = 65;

/// The bucket a value falls into: its bit length.
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `index` can hold.
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        1..=63 => (1u64 << index) - 1,
        _ => u64::MAX,
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // Saturating accumulation: a long-running process recording
        // huge values must clamp at u64::MAX, not wrap to a small lie.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            });
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        // The count is derived from the bucket reads themselves, never
        // from a separate counter, so a snapshot taken while writers
        // are recording is still internally consistent:
        // `count == buckets.iter().sum()` by construction.
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A handle to a log2-bucketed distribution; cheap to clone, lock-free
/// to record into, and a no-op when obtained without a registry.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// A handle that ignores every record.
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// Whether records actually land somewhere.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.record(value);
        }
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        if self.0.is_some() {
            self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// A point-in-time view (empty for a no-op handle).
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            Some(core) => core.snapshot(),
            None => HistogramSnapshot::default(),
        }
    }
}

/// A consistent view of a histogram: per-bucket counts, total count
/// (always equal to the bucket sum), value sum, and observed maximum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per log2 bucket (`BUCKET_COUNT` entries).
    pub buckets: Vec<u64>,
    /// Total observations — derived from `buckets`, so it is exact
    /// relative to them even under concurrent writes.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An estimate of the `q`-quantile (0.0 ..= 1.0): linear
    /// interpolation within the log2 bucket holding the
    /// rank-`ceil(q*count)` observation, clamped by the true observed
    /// maximum. Bare bucket edges would make every quantile a power of
    /// two minus one — a p99 of 8388607 whether the real tail is 4.2ms
    /// or 8.3ms — so the position of the rank *inside* the winning
    /// bucket scales linearly across the bucket's value range instead.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = seen;
            seen += c;
            if seen >= rank {
                let lo = if i == 0 {
                    0
                } else {
                    bucket_upper_bound(i - 1) + 1
                };
                let hi = bucket_upper_bound(i).min(self.max);
                if lo >= hi {
                    return hi;
                }
                // Rank position inside this bucket, 1..=c; pos == c
                // lands exactly on the (clamped) upper edge.
                let pos = rank - before;
                let span = (hi - lo) as u128;
                return lo + (span * u128::from(pos) / u128::from(c)) as u64;
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The observations recorded since `earlier` was taken of the same
    /// histogram: per-bucket saturating differences, with the count
    /// re-derived from the difference buckets. The true maximum of just
    /// the new observations is unrecoverable from cumulative state, so
    /// `max` carries the running maximum (an upper bound for the
    /// window), which quantiles keep using as their clamp.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
            .map(|(&now, &then)| now.saturating_sub(then))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Folds another snapshot of the same-shaped histogram into this
    /// one: bucket-wise sums (used to merge per-tick deltas into one
    /// sliding-window distribution).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, &theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(theirs);
        }
        self.count = self.buckets.iter().sum();
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value lands in a bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 255, 256, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn quantiles_track_distribution() {
        let core = HistogramCore::new();
        for v in 1..=100u64 {
            core.record(v);
        }
        let snap = core.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.max, 100);
        // Interpolated within bucket [32..=63]: the true median of
        // 1..=100 is 50, and linear interpolation lands on it exactly
        // (rank 50 is position 19 of 32 inside the bucket).
        assert_eq!(snap.p50(), 50);
        // Rank 99 interpolates inside [64..=100] (clamped by max).
        assert!(snap.p99() >= 95 && snap.p99() <= 100, "{}", snap.p99());
        assert!((snap.mean() - 50.5).abs() < 1e-9);
    }

    // The satellite fidelity case: with bare bucket edges every
    // quantile is a power of two minus one, so a 1.5x latency shift
    // reads as either "no change" or "2x". Interpolated quantiles must
    // track the true values closely enough that bench trajectories see
    // sub-2x regressions.
    #[test]
    fn quantiles_interpolate_within_wide_buckets() {
        let uniform = |lo: u64, hi: u64| {
            let core = HistogramCore::new();
            for k in 0..1000u64 {
                core.record(lo + k * ((hi - lo) / 1000));
            }
            core.snapshot()
        };
        // ~[1ms, 8ms] in nanosecond-scale values, spanning 4 buckets.
        let base = uniform(1_000_000, 8_000_000);
        let p50 = base.p50();
        let p99 = base.p99();
        // True median ~4.5e6; the estimate must be within ~15%, not the
        // bucket edge 8388607.
        assert!(p50 > 3_800_000 && p50 < 5_200_000, "p50={p50}");
        assert!(p99 > p50 && p99 <= base.max, "p99={p99}");
        // A 1.5x shift must read as roughly 1.5x, not 1x or 2x.
        let shifted = uniform(1_500_000, 12_000_000);
        let ratio = shifted.p50() as f64 / p50 as f64;
        assert!(
            (1.25..=1.75).contains(&ratio),
            "1.5x shift read as {ratio:.2}x"
        );
    }

    #[test]
    fn delta_and_merge_recover_windows() {
        let core = HistogramCore::new();
        for v in [10u64, 20, 30] {
            core.record(v);
        }
        let first = core.snapshot();
        for v in [1000u64, 2000] {
            core.record(v);
        }
        let second = core.snapshot();
        let delta = second.delta(&first);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 3000);
        let mut merged = first.clone();
        merged.merge(&delta);
        assert_eq!(merged.count, second.count);
        assert_eq!(merged.sum, second.sum);
        assert_eq!(merged.buckets, second.buckets);
    }

    #[test]
    fn noop_handle_is_inert() {
        let h = Histogram::noop();
        h.record(123);
        h.record_duration(Duration::from_secs(1));
        assert!(!h.is_live());
        assert_eq!(h.snapshot().count, 0);
        assert_eq!(h.snapshot().quantile(0.5), 0);
    }
}
