//! Log2-bucketed value distributions backed by atomics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i`
/// (1..=64) holds values with bit length `i`, i.e. `2^(i-1) ..= 2^i-1`.
pub const BUCKET_COUNT: usize = 65;

/// The bucket a value falls into: its bit length.
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `index` can hold.
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        1..=63 => (1u64 << index) - 1,
        _ => u64::MAX,
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // Saturating accumulation: a long-running process recording
        // huge values must clamp at u64::MAX, not wrap to a small lie.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            });
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        // The count is derived from the bucket reads themselves, never
        // from a separate counter, so a snapshot taken while writers
        // are recording is still internally consistent:
        // `count == buckets.iter().sum()` by construction.
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A handle to a log2-bucketed distribution; cheap to clone, lock-free
/// to record into, and a no-op when obtained without a registry.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// A handle that ignores every record.
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// Whether records actually land somewhere.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.record(value);
        }
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        if self.0.is_some() {
            self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// A point-in-time view (empty for a no-op handle).
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            Some(core) => core.snapshot(),
            None => HistogramSnapshot::default(),
        }
    }
}

/// A consistent view of a histogram: per-bucket counts, total count
/// (always equal to the bucket sum), value sum, and observed maximum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per log2 bucket (`BUCKET_COUNT` entries).
    pub buckets: Vec<u64>,
    /// Total observations — derived from `buckets`, so it is exact
    /// relative to them even under concurrent writes.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An upper bound on the `q`-quantile (0.0 ..= 1.0): the upper edge
    /// of the bucket holding the rank-`ceil(q*count)` observation,
    /// clamped by the true observed maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value lands in a bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 255, 256, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn quantiles_track_distribution() {
        let core = HistogramCore::new();
        for v in 1..=100u64 {
            core.record(v);
        }
        let snap = core.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.max, 100);
        // The median of 1..=100 is ~50; its bucket [33..=64] caps at 63.
        assert!(snap.p50() >= 50 && snap.p50() <= 63, "{}", snap.p50());
        assert_eq!(snap.p99(), 100); // clamped by the true max
        assert!((snap.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn noop_handle_is_inert() {
        let h = Histogram::noop();
        h.record(123);
        h.record_duration(Duration::from_secs(1));
        assert!(!h.is_live());
        assert_eq!(h.snapshot().count, 0);
        assert_eq!(h.snapshot().quantile(0.5), 0);
    }
}
