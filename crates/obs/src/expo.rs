//! Exposition: Prometheus text format and JSON rendering of snapshots.

use std::fmt::Write as _;

use crate::histogram::{bucket_upper_bound, HistogramSnapshot};
use crate::registry::MetricId;
use crate::ring::Event;

/// The event-ring portion of a snapshot.
#[derive(Debug, Clone, Default)]
pub struct EventsSnapshot {
    /// Retained events in sequence order.
    pub events: Vec<Event>,
    /// Every record ever submitted to the ring (retained, dropped,
    /// or evicted) — the denominator that makes loss visible.
    pub recorded: u64,
    /// Records lost to shard contention.
    pub dropped: u64,
    /// Records overwritten in full shards.
    pub evicted: u64,
}

/// A point-in-time view of a [`Registry`](crate::Registry).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values, sorted by metric id.
    pub counters: Vec<(MetricId, u64)>,
    /// Gauge values, sorted by metric id.
    pub gauges: Vec<(MetricId, u64)>,
    /// Histogram snapshots, sorted by metric id.
    pub histograms: Vec<(MetricId, HistogramSnapshot)>,
    /// Exemplars: the raw trace id most recently recorded alongside a
    /// counter series (rejection reasons), sorted by metric id.
    pub exemplars: Vec<(MetricId, u64)>,
    /// The event ring.
    pub events: EventsSnapshot,
}

fn labels_match(id: &MetricId, labels: &[(&str, &str)]) -> bool {
    id.labels().len() == labels.len()
        && labels
            .iter()
            .all(|&(k, v)| id.labels().iter().any(|(ik, iv)| ik == k && iv == v))
}

impl Snapshot {
    /// The value of the unlabelled counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(id, _)| id.name() == name && id.labels().is_empty())
            .map(|&(_, v)| v)
    }

    /// The value of the counter `name` with exactly these labels
    /// (order-insensitive), if present.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters
            .iter()
            .find(|(id, _)| id.name() == name && labels_match(id, labels))
            .map(|&(_, v)| v)
    }

    /// The sum of counter `name` across all label sets (0 if absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(id, _)| id.name() == name)
            .map(|&(_, v)| v)
            .sum()
    }

    /// The value of the unlabelled gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(id, _)| id.name() == name && id.labels().is_empty())
            .map(|&(_, v)| v)
    }

    /// The snapshot of the unlabelled histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(id, _)| id.name() == name && id.labels().is_empty())
            .map(|(_, h)| h)
    }

    /// The snapshot of the histogram `name` with exactly these labels
    /// (order-insensitive), if present.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(id, _)| id.name() == name && labels_match(id, labels))
            .map(|(_, h)| h)
    }

    /// The value of the gauge `name` with exactly these labels
    /// (order-insensitive), if present.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(id, _)| id.name() == name && labels_match(id, labels))
            .map(|&(_, v)| v)
    }

    /// Every histogram named `name` regardless of labels.
    pub fn histograms_named<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = (&'a MetricId, &'a HistogramSnapshot)> + 'a {
        self.histograms
            .iter()
            .filter(move |(id, _)| id.name() == name)
            .map(|(id, h)| (id, h))
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Histograms emit cumulative `_bucket{le="..."}` series at the
    /// log2 bucket edges that hold observations (plus `+Inf`), with
    /// `_sum`, `_count` and a `_max` gauge. Metric names are sanitized
    /// to the Prometheus charset.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        // Entries are sorted by id, so label sets of one family are
        // consecutive: emit each family's TYPE line exactly once.
        let mut last_family = String::new();
        let mut family = |out: &mut String, name: &str, kind: &str| {
            if name != last_family {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_family = name.to_owned();
            }
        };
        for (id, value) in &self.counters {
            let name = prom_name(id.name());
            family(&mut out, &name, "counter");
            let _ = writeln!(out, "{name}{} {value}", prom_labels(id.labels(), None));
        }
        for (id, value) in &self.gauges {
            let name = prom_name(id.name());
            family(&mut out, &name, "gauge");
            let _ = writeln!(out, "{name}{} {value}", prom_labels(id.labels(), None));
        }
        for (id, h) in &self.histograms {
            let name = prom_name(id.name());
            family(&mut out, &name, "histogram");
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                let le = bucket_upper_bound(i);
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    prom_labels(id.labels(), Some(&le.to_string()))
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{} {}",
                prom_labels(id.labels(), Some("+Inf")),
                h.count
            );
            let labels = prom_labels(id.labels(), None);
            let _ = writeln!(out, "{name}_sum{labels} {}", h.sum);
            let _ = writeln!(out, "{name}_count{labels} {}", h.count);
        }
        // The `_max` companions form separate gauge families; keep each
        // family's series consecutive.
        for (id, h) in &self.histograms {
            let name = prom_name(id.name());
            family(&mut out, &format!("{name}_max"), "gauge");
            let _ = writeln!(
                out,
                "{name}_max{} {}",
                prom_labels(id.labels(), None),
                h.max
            );
        }
        let _ = writeln!(out, "# TYPE obs_events_recorded counter");
        let _ = writeln!(out, "obs_events_recorded {}", self.events.recorded);
        let _ = writeln!(out, "# TYPE obs_events_dropped counter");
        let _ = writeln!(out, "obs_events_dropped {}", self.events.dropped);
        let _ = writeln!(out, "# TYPE obs_events_evicted counter");
        let _ = writeln!(out, "obs_events_evicted {}", self.events.evicted);
        // Exemplars ride along as comment lines (the 0.0.4 text format
        // has no exemplar syntax; comments are ignored by scrapers but
        // visible to `rtcac stats` readers and our own parser).
        for (id, raw) in &self.exemplars {
            let name = prom_name(id.name());
            let _ = writeln!(
                out,
                "# exemplar {name}{} trace=t{raw}",
                prom_labels(id.labels(), None)
            );
        }
        out
    }

    /// Renders the snapshot as a single JSON object with `counters`,
    /// `gauges`, `histograms` (count/sum/max/p50/p90/p99 plus the
    /// non-empty `[upper_bound, count]` buckets) and `events`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        for (i, (id, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(&id.to_string()));
        }
        out.push_str("},\"gauges\":{");
        for (i, (id, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(&id.to_string()));
        }
        out.push_str("},\"histograms\":{");
        for (i, (id, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                json_string(&id.to_string()),
                h.count,
                h.sum,
                h.max,
                h.p50(),
                h.p90(),
                h.p99()
            );
            let mut first = true;
            for (b, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{},{c}]", bucket_upper_bound(b));
            }
            out.push_str("]}");
        }
        out.push_str("},\"exemplars\":{");
        for (i, (id, raw)) in self.exemplars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:\"t{raw}\"", json_string(&id.to_string()));
        }
        let _ = write!(
            out,
            "}},\"events\":{{\"recorded\":{},\"dropped\":{},\"evicted\":{},\"entries\":[",
            self.events.recorded, self.events.dropped, self.events.evicted
        );
        for (i, e) in self.events.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"name\":{},\"detail\":{}}}",
                e.seq,
                json_string(e.name),
                json_string(&e.detail)
            );
        }
        out.push_str("]}}");
        out
    }

    /// Parses a snapshot back out of our own Prometheus text exposition
    /// (the inverse of [`to_prometheus`](Snapshot::to_prometheus)).
    ///
    /// This is what lets `rtcac top` and `--soak` status lines build a
    /// windowed time-series from a *remote* server: scrape `/metrics`,
    /// reconstruct the raw log2 buckets from the cumulative
    /// `_bucket{le=...}` series (the JSON endpoint only carries
    /// pre-computed cumulative quantiles, useless for windows), and
    /// feed the result to `TimeSeries::observe`.
    ///
    /// Lenient by design: unknown or malformed lines are skipped, so a
    /// scrape of a newer/older server still yields every series both
    /// sides understand. Event ring *entries* are not representable in
    /// the text format; only the recorded/dropped/evicted totals round
    /// trip.
    pub fn from_prometheus(text: &str) -> Snapshot {
        use std::collections::BTreeMap;
        let mut kinds: BTreeMap<&str, &str> = BTreeMap::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                if let (Some(name), Some(kind)) = (it.next(), it.next()) {
                    kinds.insert(name, kind);
                }
            }
        }
        let mut counters: BTreeMap<MetricId, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<MetricId, u64> = BTreeMap::new();
        let mut hists: BTreeMap<MetricId, HistogramSnapshot> = BTreeMap::new();
        let mut prev_cumulative: BTreeMap<MetricId, u64> = BTreeMap::new();
        let mut exemplars: BTreeMap<MetricId, u64> = BTreeMap::new();
        let mut events = EventsSnapshot::default();
        let hist_base = |kinds: &BTreeMap<&str, &str>, name: &str, suffix: &str| {
            name.strip_suffix(suffix)
                .filter(|base| kinds.get(base) == Some(&"histogram"))
                .map(str::to_owned)
        };
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# exemplar ") {
                if let Some((series, trace)) = rest.rsplit_once(" trace=t") {
                    if let (Some(id), Ok(raw)) = (parse_series(series), trace.parse::<u64>()) {
                        exemplars.insert(id, raw);
                    }
                }
                continue;
            }
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let Some((series, value)) = line.rsplit_once(' ') else {
                continue;
            };
            let Ok(value) = value.parse::<u64>() else {
                // Histogram +Inf bucket lines land here too (the count
                // is re-derived from the finite buckets).
                continue;
            };
            let Some(mut id) = parse_series(series) else {
                continue;
            };
            match id.name() {
                "obs_events_recorded" => events.recorded = value,
                "obs_events_dropped" => events.dropped = value,
                "obs_events_evicted" => events.evicted = value,
                name => {
                    if let Some(base) = hist_base(&kinds, name, "_bucket") {
                        let Some(le) = id.take_label("le").and_then(|le| le.parse::<u64>().ok())
                        else {
                            continue;
                        };
                        let id = MetricId::from_parts(base, id.labels().to_vec());
                        let h = hists.entry(id.clone()).or_default();
                        // `bucket_index` inverts `bucket_upper_bound`:
                        // the edge 2^i - 1 has bit length i.
                        let idx = crate::histogram::bucket_index(le);
                        let prev = prev_cumulative.entry(id).or_insert(0);
                        h.buckets[idx] = value.saturating_sub(*prev);
                        *prev = value;
                    } else if let Some(base) = hist_base(&kinds, name, "_sum") {
                        let id = MetricId::from_parts(base, id.labels().to_vec());
                        hists.entry(id).or_default().sum = value;
                    } else if let Some(base) = hist_base(&kinds, name, "_max") {
                        let id = MetricId::from_parts(base, id.labels().to_vec());
                        hists.entry(id).or_default().max = value;
                    } else if hist_base(&kinds, name, "_count").is_some() {
                        // Derived from the buckets below.
                    } else {
                        match kinds.get(name).copied() {
                            Some("gauge") => {
                                gauges.insert(id, value);
                            }
                            // Untyped lines default to counters: rates
                            // over a wrongly-typed series are garbage
                            // either way, but dropping them would hide
                            // the series entirely.
                            _ => {
                                counters.insert(id, value);
                            }
                        }
                    }
                }
            }
        }
        for h in hists.values_mut() {
            h.count = h.buckets.iter().sum();
        }
        Snapshot {
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms: hists.into_iter().collect(),
            exemplars: exemplars.into_iter().collect(),
            events,
        }
    }
}

/// Parses `name{k="v",...}` (as rendered by `to_prometheus`) into a
/// [`MetricId`]; label values may contain escaped `\"` and `\\`.
fn parse_series(series: &str) -> Option<MetricId> {
    let series = series.trim();
    let Some((name, rest)) = series.split_once('{') else {
        return valid_name(series).then(|| MetricId::new(series));
    };
    let body = rest.strip_suffix('}')?;
    if !valid_name(name) {
        return None;
    }
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    while chars.peek().is_some() {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return None;
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => value.push(chars.next()?),
                '"' => {
                    closed = true;
                    break;
                }
                c => value.push(c),
            }
        }
        if !closed || key.is_empty() {
            return None;
        }
        labels.push((key, value));
        match chars.next() {
            Some(',') | None => {}
            Some(_) => return None,
        }
    }
    Some(MetricId::from_parts(name.to_owned(), labels))
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// Sanitizes a metric name to the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders a label set, optionally merged with an `le` bucket label.
fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{}=\"{}\"",
            prom_name(k),
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// JSON string literal with escaping.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("setups_admitted_total").add(3);
        r.counter_with("lock_wait_total", &[("shard", "2")]).inc();
        r.gauge("queue_depth").set(7);
        let h = r.histogram("reserve_ns");
        h.record(0);
        h.record(900);
        h.record(1100);
        r.events().record("abort", "switch 3 said \"no\"");
        r.snapshot()
    }

    #[test]
    fn prometheus_format_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE setups_admitted_total counter"));
        assert!(text.contains("setups_admitted_total 3"));
        assert!(text.contains("lock_wait_total{shard=\"2\"} 1"));
        assert!(text.contains("queue_depth 7"));
        assert!(text.contains("# TYPE reserve_ns histogram"));
        assert!(text.contains("reserve_ns_bucket{le=\"0\"} 1"));
        assert!(text.contains("reserve_ns_bucket{le=\"1023\"} 2"));
        assert!(text.contains("reserve_ns_bucket{le=\"2047\"} 3"));
        assert!(text.contains("reserve_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("reserve_ns_sum 2000"));
        assert!(text.contains("reserve_ns_count 3"));
        assert!(text.contains("reserve_ns_max 1100"));
        assert!(text.contains("obs_events_dropped 0"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"setups_admitted_total\":3"));
        assert!(json.contains("\"lock_wait_total{shard=\\\"2\\\"}\":1"));
        assert!(json.contains("\"count\":3"));
        assert!(json.contains("switch 3 said \\\"no\\\""));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn type_lines_are_unique_per_family() {
        let r = Registry::new();
        r.counter_with("checks_total", &[("outcome", "a")]).inc();
        r.counter_with("checks_total", &[("outcome", "b")]).inc();
        r.histogram_with("wait_ns", &[("shard", "0")]).record(5);
        r.histogram_with("wait_ns", &[("shard", "1")]).record(9);
        let text = r.snapshot().to_prometheus();
        assert_eq!(text.matches("# TYPE checks_total counter").count(), 1);
        assert_eq!(text.matches("# TYPE wait_ns histogram").count(), 1);
        assert_eq!(text.matches("# TYPE wait_ns_max gauge").count(), 1);
    }

    #[test]
    fn dotted_names_are_sanitized_for_prometheus() {
        let r = Registry::new();
        r.counter("engine.setups.total").inc();
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("engine_setups_total 1"));
    }

    #[test]
    fn recorded_counts_survive_drops_and_evictions() {
        let r = Registry::with_event_capacity(1, 2);
        for i in 0..5 {
            r.events().record("tick", format!("n={i}"));
        }
        let snap = r.snapshot();
        assert_eq!(snap.events.recorded, 5);
        assert_eq!(snap.events.evicted, 3);
        assert_eq!(snap.events.events.len(), 2);
        let text = snap.to_prometheus();
        assert!(text.contains("obs_events_recorded 5"));
        assert!(text.contains("obs_events_evicted 3"));
        assert!(snap.to_json().contains("\"recorded\":5"));
    }

    // The remote-series path (`rtcac top`, soak status) depends on the
    // text exposition being losslessly invertible for counters, gauges,
    // raw histogram buckets, and exemplars.
    #[test]
    fn prometheus_text_round_trips() {
        let r = Registry::new();
        r.counter("setups_admitted_total").add(41);
        r.counter_with("engine_rejections_total", &[("reason", "qos")])
            .add(7);
        r.gauge("engine_resident_bytes").set(123_456);
        r.gauge_with("engine_shard_lock_wait_ns", &[("shard", "3")])
            .set(99);
        let h = r.histogram("engine_reserve_ns");
        for v in [0u64, 3, 900, 4096, 1_000_000] {
            h.record(v);
        }
        r.exemplar_with("engine_rejections_total", &[("reason", "qos")])
            .record(crate::TraceId::new(515));
        r.events().record("tick", "x");
        let snap = r.snapshot();
        let parsed = Snapshot::from_prometheus(&snap.to_prometheus());
        assert_eq!(parsed.counters, snap.counters);
        assert_eq!(parsed.gauges, snap.gauges);
        assert_eq!(parsed.exemplars, snap.exemplars);
        assert_eq!(parsed.histograms.len(), 1);
        let (id, ph) = &parsed.histograms[0];
        let oh = snap.histogram("engine_reserve_ns").unwrap();
        assert_eq!(id.name(), "engine_reserve_ns");
        assert_eq!(ph.buckets, oh.buckets);
        assert_eq!(ph.count, oh.count);
        assert_eq!(ph.sum, oh.sum);
        assert_eq!(ph.max, oh.max);
        assert_eq!(ph.p99(), oh.p99());
        assert_eq!(parsed.events.recorded, 1);
        // Escaped label values survive the trip.
        let r2 = Registry::new();
        r2.counter_with("odd_total", &[("msg", "say \"hi\\bye\"")])
            .inc();
        let p2 = Snapshot::from_prometheus(&r2.snapshot().to_prometheus());
        assert_eq!(p2.counters, r2.snapshot().counters);
        // Garbage lines are skipped, not fatal.
        let p3 = Snapshot::from_prometheus("not a metric\n{=\"\"} 3\nx 1\n");
        assert_eq!(p3.counters.len(), 1);
        assert_eq!(p3.counter("x"), Some(1));
    }

    // Scrape-side mean — rate(sum)/rate(count) — must agree exactly
    // with `HistogramSnapshot::mean`, so round-trip the values through
    // the rendered Prometheus text.
    #[test]
    fn prometheus_sum_round_trips_against_mean() {
        let r = Registry::new();
        let h = r.histogram("roundtrip_ns");
        for v in [3u64, 17, 250, 999, 4096] {
            h.record(v);
        }
        let snap = r.snapshot();
        let text = snap.to_prometheus();
        let value_of = |series: &str| -> u64 {
            text.lines()
                .find(|l| l.starts_with(series))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("series {series} missing from exposition"))
        };
        let sum = value_of("roundtrip_ns_sum");
        let count = value_of("roundtrip_ns_count");
        assert_eq!(sum, 3 + 17 + 250 + 999 + 4096);
        assert_eq!(count, 5);
        let scraped_mean = sum as f64 / count as f64;
        let direct_mean = snap.histogram("roundtrip_ns").unwrap().mean();
        assert!((scraped_mean - direct_mean).abs() < f64::EPSILON);
    }
}
