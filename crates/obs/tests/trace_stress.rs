//! Concurrent trace-ring stress: many threads flushing nested traces
//! into one shared [`Tracer`] must never interleave spans across
//! traces, lose bookkeeping counts, or corrupt parentage — the ring's
//! loss modes are *counted* (dropped on shard contention, evicted on
//! overflow), never silent.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;

use rtcac_obs::{Sampling, Tracer};

const THREADS: usize = 8;
const TRACES_PER_THREAD: usize = 200;
const SPANS_PER_TRACE: u64 = 4; // root + price + reserve + one event

#[test]
fn concurrent_flushes_stay_consistent() {
    let tracer = Tracer::new(Sampling::Always);
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let tracer = tracer.clone();
            thread::spawn(move || {
                for k in 0..TRACES_PER_THREAD {
                    let mut ctx = tracer.start("engine.admit");
                    ctx.attr("k", k.to_string());
                    let price = ctx.begin("price");
                    ctx.end(price);
                    let reserve = ctx.begin("reserve");
                    ctx.event("hop", "node admitted");
                    ctx.end(reserve);
                    ctx.finish(k % 7 == 0);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    // Every trace flushed (Sampling::Always), and every flush is
    // accounted for: recorded covers retained + evicted + dropped.
    let total = (THREADS * TRACES_PER_THREAD) as u64 * SPANS_PER_TRACE;
    assert_eq!(tracer.recorded(), total);
    let spans = tracer.snapshot();
    assert_eq!(
        spans.len() as u64 + tracer.evicted() + tracer.dropped(),
        total,
        "retained + evicted + dropped must cover every flushed span"
    );

    // Whole-trace flush: a retained trace is either complete or was
    // partially evicted — but spans of different traces never share
    // ids, and parentage always stays within the owning trace.
    let mut by_trace: BTreeMap<_, Vec<_>> = BTreeMap::new();
    for span in &spans {
        assert!(span.end_ns >= span.begin_ns);
        by_trace.entry(span.trace).or_default().push(span);
    }
    for group in by_trace.values() {
        let ids: Vec<_> = group.iter().map(|s| s.span).collect();
        for span in group {
            if let Some(parent) = span.parent {
                // An evicted parent is allowed; a parent from another
                // trace never is.
                if !ids.contains(&parent) {
                    assert!(
                        spans.iter().all(|other| other.span != parent),
                        "span {} parents into a different trace",
                        span.span
                    );
                }
            }
        }
    }

    // Span ids are globally unique even though contexts mint them
    // without shared coordination.
    let mut all_ids: Vec<_> = spans.iter().map(|s| s.span).collect();
    all_ids.sort();
    all_ids.dedup();
    assert_eq!(all_ids.len(), spans.len(), "span ids must never collide");
}

#[test]
fn shared_tracer_under_threads_samples_deterministically() {
    // With SampleEvery(4), exactly one quarter of the traces flush —
    // regardless of which thread opened which trace.
    let tracer = Arc::new(Tracer::new(Sampling::SampleEvery(4)));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let tracer = Arc::clone(&tracer);
            thread::spawn(move || {
                for _ in 0..100 {
                    tracer.start("root").finish(false);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(tracer.recorded(), 100, "400 traces / sample-every-4");
}
