//! Edge-case tests for the log2 histogram: bucket boundaries, counter
//! saturation, and snapshot consistency under concurrent writers.

use std::sync::Arc;
use std::thread;

use rtcac_obs::{bucket_index, bucket_upper_bound, Registry, BUCKET_COUNT};

#[test]
fn every_bucket_boundary_maps_to_its_own_bucket() {
    // For each bucket i >= 1, its lower edge 2^(i-1) and upper edge
    // 2^i - 1 must both land in bucket i, and the value one below the
    // lower edge must land in bucket i - 1.
    assert_eq!(bucket_index(0), 0);
    for i in 1..=63usize {
        let lower = 1u64 << (i - 1);
        let upper = bucket_upper_bound(i);
        assert_eq!(bucket_index(lower), i, "lower edge of bucket {i}");
        assert_eq!(bucket_index(upper), i, "upper edge of bucket {i}");
        assert_eq!(bucket_index(lower - 1), i - 1, "below bucket {i}");
    }
    assert_eq!(bucket_index(1u64 << 63), 64);
    assert_eq!(bucket_index(u64::MAX), 64);
    assert_eq!(bucket_upper_bound(64), u64::MAX);
    assert_eq!(bucket_upper_bound(BUCKET_COUNT + 10), u64::MAX);
}

#[test]
fn extreme_values_are_recorded_without_overflow() {
    let r = Registry::new();
    let h = r.histogram("extremes_ns");
    h.record(0);
    h.record(u64::MAX);
    h.record(u64::MAX);
    let snap = h.snapshot();
    assert_eq!(snap.count, 3);
    assert_eq!(snap.buckets[0], 1);
    assert_eq!(snap.buckets[64], 2);
    // The sum saturates instead of wrapping: 0 + MAX + MAX == MAX.
    assert_eq!(snap.sum, u64::MAX);
    assert_eq!(snap.max, u64::MAX);
    assert_eq!(snap.quantile(1.0), u64::MAX);
}

#[test]
fn snapshot_under_concurrent_writes_is_internally_consistent() {
    let r = Arc::new(Registry::new());
    let h = r.histogram("contended_ns");
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 20_000;

    thread::scope(|s| {
        for w in 0..WRITERS {
            let h = h.clone();
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    // Spread across several buckets.
                    h.record((w as u64 + 1) * (i % 1024));
                }
            });
        }
        // Snapshot repeatedly while the writers run: the count must
        // always equal the bucket sum (it is derived from the same
        // reads), and must never exceed the eventual total.
        for _ in 0..200 {
            let snap = h.snapshot();
            let bucket_sum: u64 = snap.buckets.iter().sum();
            assert_eq!(snap.count, bucket_sum);
            assert!(snap.count <= WRITERS as u64 * PER_WRITER);
            assert!(snap.max <= 4 * 1023);
        }
    });

    let final_snap = h.snapshot();
    assert_eq!(final_snap.count, WRITERS as u64 * PER_WRITER);
    assert_eq!(final_snap.count, final_snap.buckets.iter().sum::<u64>());
}
