//! # rtcac — hard real-time connection admission control for ATM networks
//!
//! A full reproduction of *"Connection Admission Control for Hard
//! Real-Time Communication in ATM Networks"* (Zheng, Yokotani,
//! Ichihashi, Nemoto; MERL TR-96-21 / ICDCS 1997) as a Rust workspace.
//!
//! This facade crate re-exports the public API of every subsystem:
//!
//! - [`bitstream`] — the bit-stream traffic model, the stream
//!   manipulation algebra (delay, multiplex, demultiplex, filter) and
//!   the worst-case queueing delay bound (Algorithms 2.1, 3.1–3.4, 4.1);
//! - [`net`] — topology substrate: nodes, links, routes, and builders
//!   for the paper's star-ring RTnet;
//! - [`cac`] — per-switch admission control state and the six-step
//!   CAC check of §4.3;
//! - [`signaling`] — distributed SETUP/REJECT/CONNECTED connection
//!   establishment with hard/soft CDV accumulation;
//! - [`engine`] — a concurrent sharded admission engine: a worker pool
//!   serving setups with a two-phase reserve/commit protocol and
//!   epoch-keyed delay-bound memoization;
//! - [`sim`] — a cell-level slotted ATM simulator used to validate the
//!   analytic bounds empirically;
//! - [`fault`] — fault injection and failure recovery: seeded
//!   link/node fault plans and a chaos harness that churns the engine
//!   while asserting no reservation is orphaned and no guarantee is
//!   violated;
//! - [`rtnet`] — the RTnet evaluation of §5: cyclic transmission
//!   classes and the experiment drivers behind Figures 10–13;
//! - [`serve`] — the resident admission service: a TCP server speaking
//!   a length-prefixed binary protocol (SETUP / RELEASE / QUERY /
//!   DRAIN / STATS), a blocking client sharing the same codec, and an
//!   open-loop load generator;
//! - [`obs`] — std-only observability: counters, log2 histograms,
//!   trace spans, a bounded event ring, and Prometheus/JSON
//!   exposition, wired through the engine, signaling, and simulator;
//! - [`snap`] — versioned snapshots and warm restart of admission
//!   state;
//! - [`storm`] — the adversarial workload engine: time-varying
//!   impairment profiles, self-similar background traffic, topology
//!   generators, and the differential scenario fuzzer behind
//!   `rtcac storm`.
//!
//! See the repository `README.md` for a tour and `EXPERIMENTS.md` for
//! paper-vs-measured results.
//!
//! # Quickstart
//!
//! ```
//! use rtcac::bitstream::{BitStream, Rate, Time, TrafficContract, VbrParams};
//! use rtcac::rational::ratio;
//!
//! // Model a bursty hard real-time source…
//! let contract = TrafficContract::vbr(VbrParams::new(
//!     Rate::new(ratio(1, 4)),
//!     Rate::new(ratio(1, 20)),
//!     8,
//! )?);
//! // …derive its worst-case arrival after 16 cell times of jitter…
//! let arrival = contract.worst_case_stream().delay(Time::from_integer(16));
//! // …and bound the FIFO queueing delay of six such connections
//! // multiplexed at an output port, at the highest priority.
//! let aggregate = BitStream::multiplex_all(std::iter::repeat(&arrival).take(6));
//! let bound = aggregate.delay_bound(&BitStream::zero())?;
//! assert!(bound > Time::ZERO);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rtcac_bitstream as bitstream;
pub use rtcac_cac as cac;
pub use rtcac_engine as engine;
pub use rtcac_fault as fault;
pub use rtcac_net as net;
pub use rtcac_obs as obs;
pub use rtcac_rational as rational;
pub use rtcac_rtnet as rtnet;
pub use rtcac_serve as serve;
pub use rtcac_signaling as signaling;
pub use rtcac_sim as sim;
pub use rtcac_snap as snap;
pub use rtcac_storm as storm;
